//! Umbrella crate for the GDSII-Guard reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the repository-level
//! `examples/` and `tests/` can exercise the full stack. Downstream users
//! should depend on the individual crates (most importantly
//! [`gdsii_guard`]) rather than on this umbrella.

pub use defenses;
pub use gdsii;
pub use gdsii_guard;
pub use geom;
pub use layout;
pub use netlist;
pub use place;
pub use power;
pub use route;
pub use secmetrics;
pub use sta;
pub use tech;
