//! Exploitable-region extraction and the ERsites / ERtracks security
//! metrics (Definition 2.2 of the paper).

use std::collections::HashMap;

use geom::{Dbu, GcellPos, Interval, SitePos};
use layout::Layout;
use netlist::CellId;
use route::RoutingState;
use sta::TimingReport;
use tech::{Technology, SITE_H, SITE_W};

use crate::distance::exploitable_distances;

/// Minimum contiguous-site count for a free-space component to count as an
/// exploitable region. Taken from the A2 Trojan footprint as in the paper
/// (`Thresh_ER = 20`).
pub const THRESH_ER: u32 = 20;

/// One exploitable region: a connected component of exploitable sites whose
/// weight reaches the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Total number of sites in the region.
    pub sites: u64,
    /// The maximal free runs composing the region, as `(row, cols)` pairs
    /// sorted by row.
    pub rows: Vec<(u32, Interval)>,
}

impl Region {
    /// Longest single-row run in the region, in sites (bounds which cell
    /// widths a Trojan can place here).
    pub fn widest_run(&self) -> u32 {
        self.rows.iter().map(|(_, iv)| iv.len()).max().unwrap_or(0)
    }
}

/// Full security analysis of one layout.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    /// Exploitable regions (weight ≥ threshold), largest first.
    pub regions: Vec<Region>,
    /// Free Placement Sites metric: total sites over all regions.
    pub er_sites: u64,
    /// Free Routing Tracks metric: unused tracks across all metal layers
    /// over the exploitable regions (area-prorated per gcell).
    pub er_tracks: f64,
    /// Per-critical-cell exploitable distances used for the mask.
    pub distances: Vec<(CellId, Dbu)>,
}

/// Disjoint-set over vertex indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Merges a sorted interval list in place.
fn merge_intervals(mut ivs: Vec<Interval>) -> Vec<Interval> {
    ivs.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        if let Some(last) = out.last_mut() {
            if iv.lo <= last.hi {
                last.hi = last.hi.max(iv.hi);
                continue;
            }
        }
        out.push(iv);
    }
    out
}

/// Extracts the exploitable regions of a layout and computes ERsites and
/// ERtracks.
///
/// A site is *exploitable* when it is free (empty or filler) **and** lies
/// within the exploitable distance of at least one security-critical cell.
/// Vertically adjacent free runs sharing a column merge into components;
/// components of at least `thresh` sites are the exploitable regions.
pub fn analyze_regions(
    layout: &Layout,
    routing: &RoutingState,
    timing: &TimingReport,
    tech: &Technology,
    thresh: u32,
) -> RegionAnalysis {
    let distances = exploitable_distances(layout, timing, tech);
    let fp = layout.floorplan();
    let occ = layout.occupancy();

    // Per-critical-cell centers in DBU.
    let centers: Vec<(geom::Point, Dbu)> = distances
        .iter()
        .filter(|(_, d)| *d > 0)
        .map(|&(c, d)| (layout.cell_center(c, tech), d))
        .collect();

    // Vertices: exploitable runs clipped to the distance mask, per row.
    let mut vertices: Vec<(u32, Interval)> = Vec::new();
    let mut row_start: Vec<usize> = Vec::with_capacity(fp.rows() as usize + 1);
    for row in 0..fp.rows() {
        row_start.push(vertices.len());
        let row_y = row as Dbu * SITE_H + SITE_H / 2;
        let mut mask: Vec<Interval> = Vec::new();
        for &(p, d) in &centers {
            if (p.y - row_y).abs() > d {
                continue;
            }
            let lo = ((p.x - d) / SITE_W).max(0) as u32;
            let hi = (((p.x + d) / SITE_W) + 1).min(fp.cols() as Dbu) as u32;
            if lo < hi {
                mask.push(Interval::new(lo, hi));
            }
        }
        if mask.is_empty() {
            continue;
        }
        let mask = merge_intervals(mask);
        for run in occ.exploitable_runs(row) {
            for m in &mask {
                if let Some(clip) = run.intersection(m) {
                    if !clip.is_empty() {
                        vertices.push((row, clip));
                    }
                }
            }
        }
    }
    row_start.push(vertices.len());

    // Union vertically touching vertices of adjacent rows.
    let mut dsu = Dsu::new(vertices.len());
    for row in 1..fp.rows() {
        let (a0, a1) = (row_start[row as usize - 1], row_start[row as usize]);
        let (b0, b1) = (row_start[row as usize], row_start[row as usize + 1]);
        let mut i = a0;
        let mut j = b0;
        while i < a1 && j < b1 {
            let (_, ia) = vertices[i];
            let (_, ib) = vertices[j];
            if ia.overlaps(&ib) {
                dsu.union(i as u32, j as u32);
            }
            if ia.hi <= ib.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
    }

    // Group into components and filter by weight.
    let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
    for i in 0..vertices.len() {
        groups.entry(dsu.find(i as u32)).or_default().push(i);
    }
    let mut regions: Vec<Region> = Vec::new();
    for (_, members) in groups {
        let sites: u64 = members.iter().map(|&i| vertices[i].1.len() as u64).sum();
        if sites >= thresh as u64 {
            let mut rows: Vec<(u32, Interval)> = members.iter().map(|&i| vertices[i]).collect();
            rows.sort_unstable();
            regions.push(Region { sites, rows });
        }
    }
    regions.sort_by_key(|r| (std::cmp::Reverse(r.sites), r.rows.first().copied()));
    let er_sites: u64 = regions.iter().map(|r| r.sites).sum();

    // ERtracks: free tracks over the region area, prorated per gcell.
    let grid = routing.grid();
    let gcell_sites = (route::GCELL_W_SITES * route::GCELL_H_ROWS) as f64;
    let mut sites_in_gcell: std::collections::BTreeMap<GcellPos, u64> = Default::default();
    for r in &regions {
        for &(row, iv) in &r.rows {
            let mut col = iv.lo;
            while col < iv.hi {
                let g = grid.gcell_of_site(SitePos::new(row, col));
                let next_boundary = ((col / route::GCELL_W_SITES) + 1) * route::GCELL_W_SITES;
                let end = iv.hi.min(next_boundary);
                *sites_in_gcell.entry(g).or_insert(0) += (end - col) as u64;
                col = end;
            }
        }
    }
    let er_tracks: f64 = sites_in_gcell
        .iter()
        .map(|(g, &s)| grid.free_tracks_all_layers(*g) * (s as f64 / gcell_sites).min(1.0))
        .sum();

    RegionAnalysis {
        regions,
        er_sites,
        er_tracks,
        distances,
    }
}

/// The paper's security objective:
/// `Security(L_opt) = α · ERsites(L_opt)/ERsites(L_base)
///                  + (1−α) · ERtracks(L_opt)/ERtracks(L_base)`.
///
/// Lower is better; the baseline scores 1.0 against itself. Zero-valued
/// baseline metrics contribute their `α` share only if the optimized layout
/// is also nonzero there (a fully clean baseline cannot be improved).
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn security_score(opt: &RegionAnalysis, base: &RegionAnalysis, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let ratio = |o: f64, b: f64| -> f64 {
        if b <= 0.0 {
            if o <= 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            o / b
        }
    };
    alpha * ratio(opt.er_sites as f64, base.er_sites as f64)
        + (1.0 - alpha) * ratio(opt.er_tracks, base.er_tracks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn analyzed(
        period_factor: f64,
        util: f64,
    ) -> (Technology, Layout, RoutingState, RegionAnalysis) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = period_factor;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, util);
        place::global_place(&mut layout, &tech, 17);
        place::refine_wirelength(&mut layout, &tech, 2, 17);
        let routing = route::route_design(&layout, &tech);
        let timing = sta::analyze(&layout, &routing, &tech);
        let analysis = analyze_regions(&layout, &routing, &timing, &tech, THRESH_ER);
        (tech, layout, routing, analysis)
    }

    #[test]
    fn baseline_layout_is_exploitable() {
        let (_, _, _, a) = analyzed(1.4, 0.6);
        assert!(a.er_sites >= THRESH_ER as u64);
        assert!(a.er_tracks > 0.0);
        assert!(!a.regions.is_empty());
        // Regions are sorted largest-first and all meet the threshold.
        for w in a.regions.windows(2) {
            assert!(w[0].sites >= w[1].sites);
        }
        assert!(a.regions.iter().all(|r| r.sites >= THRESH_ER as u64));
    }

    #[test]
    fn region_row_runs_are_actually_free() {
        let (_, layout, _, a) = analyzed(1.4, 0.6);
        for region in &a.regions {
            for &(row, iv) in &region.rows {
                for col in iv.lo..iv.hi {
                    assert!(layout
                        .occupancy()
                        .state(SitePos::new(row, col))
                        .is_exploitable());
                }
            }
        }
    }

    #[test]
    fn higher_utilization_reduces_er_sites() {
        let (_, _, _, loose) = analyzed(1.4, 0.55);
        let (_, _, _, dense) = analyzed(1.4, 0.80);
        assert!(
            dense.er_sites < loose.er_sites,
            "dense {} vs loose {}",
            dense.er_sites,
            loose.er_sites
        );
    }

    #[test]
    fn security_score_of_baseline_is_one() {
        let (_, _, _, a) = analyzed(1.4, 0.6);
        let s = security_score(&a, &a, 0.5);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn security_score_handles_clean_layout() {
        let (_, _, _, base) = analyzed(1.4, 0.6);
        let clean = RegionAnalysis {
            regions: vec![],
            er_sites: 0,
            er_tracks: 0.0,
            distances: vec![],
        };
        assert_eq!(security_score(&clean, &base, 0.5), 0.0);
        assert_eq!(security_score(&clean, &clean, 0.5), 0.0);
    }

    #[test]
    fn threshold_filters_small_fragments() {
        let (_, layout, routing, _) = analyzed(1.4, 0.6);
        let timing = sta::analyze(&layout, &routing, &Technology::nangate45_like());
        let tech = Technology::nangate45_like();
        let strict = analyze_regions(&layout, &routing, &timing, &tech, 1_000);
        let lax = analyze_regions(&layout, &routing, &timing, &tech, 4);
        assert!(strict.er_sites <= lax.er_sites);
        assert!(lax.regions.iter().all(|r| r.sites >= 4));
    }

    #[test]
    fn merge_intervals_collapses_overlaps() {
        let merged = merge_intervals(vec![
            Interval::new(5, 9),
            Interval::new(0, 3),
            Interval::new(8, 12),
            Interval::new(3, 4),
        ]);
        assert_eq!(merged, vec![Interval::new(0, 4), Interval::new(5, 12)]);
    }
}
