//! Exploitable-region extraction and the ERsites / ERtracks security
//! metrics (Definition 2.2 of the paper).

use geom::{Dbu, GcellPos, Interval, SitePos};
use layout::Layout;
use netlist::CellId;
use route::RoutingState;
use sta::TimingReport;
use tech::{Technology, SITE_H, SITE_W};

use crate::distance::exploitable_distances;

/// Minimum contiguous-site count for a free-space component to count as an
/// exploitable region. Taken from the A2 Trojan footprint as in the paper
/// (`Thresh_ER = 20`).
pub const THRESH_ER: u32 = 20;

/// One exploitable region: a connected component of exploitable sites whose
/// weight reaches the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Total number of sites in the region.
    pub sites: u64,
    /// The maximal free runs composing the region, as `(row, cols)` pairs
    /// sorted by row.
    pub rows: Vec<(u32, Interval)>,
}

impl Region {
    /// Longest single-row run in the region, in sites (bounds which cell
    /// widths a Trojan can place here).
    pub fn widest_run(&self) -> u32 {
        self.rows.iter().map(|(_, iv)| iv.len()).max().unwrap_or(0)
    }
}

/// Full security analysis of one layout.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    /// Exploitable regions (weight ≥ threshold), largest first.
    pub regions: Vec<Region>,
    /// Free Placement Sites metric: total sites over all regions.
    pub er_sites: u64,
    /// Free Routing Tracks metric: unused tracks across all metal layers
    /// over the exploitable regions (area-prorated per gcell).
    pub er_tracks: f64,
    /// Per-critical-cell exploitable distances used for the mask.
    pub distances: Vec<(CellId, Dbu)>,
}

/// Disjoint-set over vertex indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Merges the sorted intervals of `src` into `out` (cleared first).
fn merge_sorted_into(src: &[Interval], out: &mut Vec<Interval>) {
    out.clear();
    for &iv in src {
        if let Some(last) = out.last_mut() {
            if iv.lo <= last.hi {
                last.hi = last.hi.max(iv.hi);
                continue;
            }
        }
        out.push(iv);
    }
}

/// Extracts the exploitable regions of a layout and computes ERsites and
/// ERtracks.
///
/// A site is *exploitable* when it is free (empty or filler) **and** lies
/// within the exploitable distance of at least one security-critical cell.
/// Vertically adjacent free runs sharing a column merge into components;
/// components of at least `thresh` sites are the exploitable regions.
pub fn analyze_regions(
    layout: &Layout,
    routing: &RoutingState,
    timing: &TimingReport,
    tech: &Technology,
    thresh: u32,
) -> RegionAnalysis {
    let distances = exploitable_distances(layout, timing, tech);
    let fp = layout.floorplan();
    let occ = layout.occupancy();

    // Per-critical-cell centers in DBU.
    let centers: Vec<(geom::Point, Dbu)> = distances
        .iter()
        .filter(|(_, d)| *d > 0)
        .map(|&(c, d)| (layout.cell_center(c, tech), d))
        .collect();

    // Vertices: exploitable runs clipped to the distance mask, per row.
    //
    // A center's site-column interval `[lo, hi)` does not depend on the
    // row — only its *activity* does, and `|p.y - row_y| <= d` with
    // `row_y = row * SITE_H + SITE_H / 2` makes each center active on one
    // contiguous band of rows. Sweeping band entry/exit events therefore
    // replaces the per-row rescan of every center, and the merged mask is
    // rebuilt (into reused buffers) only on rows where membership
    // changes — the dominant cost of this pass on dense critical sets.
    // The rebuilt mask is what the rescan would have produced, so the
    // vertex list is unchanged.
    let rows = fp.rows() as usize;
    let half = SITE_H / 2;
    let mut starts: Vec<Vec<u32>> = vec![Vec::new(); rows + 1];
    let mut ends: Vec<Vec<u32>> = vec![Vec::new(); rows + 1];
    let mut spans: Vec<Interval> = Vec::with_capacity(centers.len());
    for (ci, &(p, d)) in centers.iter().enumerate() {
        let lo = ((p.x - d) / SITE_W).max(0) as u32;
        let hi = (((p.x + d) / SITE_W) + 1).min(fp.cols() as Dbu) as u32;
        spans.push(Interval::new(lo, hi));
        if lo >= hi {
            continue;
        }
        // Active rows: ceil/floor bounds of p.y - d <= row_y <= p.y + d.
        let r0 = (p.y - d - half + SITE_H - 1).div_euclid(SITE_H).max(0);
        let r1 = (p.y + d - half).div_euclid(SITE_H).min(rows as Dbu - 1);
        if r0 > r1 {
            continue;
        }
        starts[r0 as usize].push(ci as u32);
        ends[r1 as usize + 1].push(ci as u32);
    }
    let mut vertices: Vec<(u32, Interval)> = Vec::new();
    let mut row_start: Vec<usize> = Vec::with_capacity(rows + 1);
    let mut active = vec![false; centers.len()];
    let mut raw: Vec<Interval> = Vec::new();
    let mut mask: Vec<Interval> = Vec::new();
    let mut runs: Vec<Interval> = Vec::new();
    for row in 0..fp.rows() {
        row_start.push(vertices.len());
        let r = row as usize;
        if !starts[r].is_empty() || !ends[r].is_empty() {
            for &ci in &ends[r] {
                active[ci as usize] = false;
            }
            for &ci in &starts[r] {
                active[ci as usize] = true;
            }
            raw.clear();
            raw.extend(
                active
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a)
                    .map(|(ci, _)| spans[ci]),
            );
            raw.sort_unstable();
            merge_sorted_into(&raw, &mut mask);
        }
        if mask.is_empty() {
            continue;
        }
        occ.exploitable_runs_into(row, &mut runs);
        // Runs and mask are both sorted and disjoint, so a two-pointer
        // merge visits each clipped pair once; the emitted clips match
        // the nested run-by-mask scan in value and in order.
        let (mut i, mut j) = (0, 0);
        while i < runs.len() && j < mask.len() {
            if let Some(clip) = runs[i].intersection(&mask[j]) {
                if !clip.is_empty() {
                    vertices.push((row, clip));
                }
            }
            if runs[i].hi <= mask[j].hi {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    row_start.push(vertices.len());

    // Union vertically touching vertices of adjacent rows.
    let mut dsu = Dsu::new(vertices.len());
    for row in 1..fp.rows() {
        let (a0, a1) = (row_start[row as usize - 1], row_start[row as usize]);
        let (b0, b1) = (row_start[row as usize], row_start[row as usize + 1]);
        let mut i = a0;
        let mut j = b0;
        while i < a1 && j < b1 {
            let (_, ia) = vertices[i];
            let (_, ib) = vertices[j];
            if ia.overlaps(&ib) {
                dsu.union(i as u32, j as u32);
            }
            if ia.hi <= ib.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
    }

    // Group into components and filter by weight. Vertices were emitted
    // in (row, interval) order, so bucketing indices by DSU root keeps
    // each component's member list sorted as it is built — no hash map,
    // no per-component collect-and-sort.
    let n = vertices.len();
    let mut root = vec![0u32; n];
    let mut root_sites = vec![0u64; n];
    for (i, r) in root.iter_mut().enumerate() {
        *r = dsu.find(i as u32);
        root_sites[*r as usize] += vertices[i].1.len() as u64;
    }
    let mut regions: Vec<Region> = Vec::new();
    let mut slot = vec![u32::MAX; n];
    for (i, &r) in root.iter().enumerate() {
        if root_sites[r as usize] < thresh as u64 {
            continue;
        }
        if slot[r as usize] == u32::MAX {
            slot[r as usize] = regions.len() as u32;
            regions.push(Region {
                sites: root_sites[r as usize],
                rows: Vec::new(),
            });
        }
        regions[slot[r as usize] as usize].rows.push(vertices[i]);
    }
    regions.sort_by_key(|r| (std::cmp::Reverse(r.sites), r.rows.first().copied()));
    let er_sites: u64 = regions.iter().map(|r| r.sites).sum();

    // ERtracks: free tracks over the region area, prorated per gcell.
    let grid = routing.grid();
    let gcell_sites = (route::GCELL_W_SITES * route::GCELL_H_ROWS) as f64;
    let mut sites_in_gcell: std::collections::BTreeMap<GcellPos, u64> = Default::default();
    for r in &regions {
        for &(row, iv) in &r.rows {
            let mut col = iv.lo;
            while col < iv.hi {
                let g = grid.gcell_of_site(SitePos::new(row, col));
                let next_boundary = ((col / route::GCELL_W_SITES) + 1) * route::GCELL_W_SITES;
                let end = iv.hi.min(next_boundary);
                *sites_in_gcell.entry(g).or_insert(0) += (end - col) as u64;
                col = end;
            }
        }
    }
    let er_tracks: f64 = sites_in_gcell
        .iter()
        .map(|(g, &s)| grid.free_tracks_all_layers(*g) * (s as f64 / gcell_sites).min(1.0))
        .sum();

    RegionAnalysis {
        regions,
        er_sites,
        er_tracks,
        distances,
    }
}

/// The paper's security objective:
/// `Security(L_opt) = α · ERsites(L_opt)/ERsites(L_base)
///                  + (1−α) · ERtracks(L_opt)/ERtracks(L_base)`.
///
/// Lower is better; the baseline scores 1.0 against itself. Zero-valued
/// baseline metrics contribute their `α` share only if the optimized layout
/// is also nonzero there (a fully clean baseline cannot be improved).
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn security_score(opt: &RegionAnalysis, base: &RegionAnalysis, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let ratio = |o: f64, b: f64| -> f64 {
        if b <= 0.0 {
            if o <= 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            o / b
        }
    };
    alpha * ratio(opt.er_sites as f64, base.er_sites as f64)
        + (1.0 - alpha) * ratio(opt.er_tracks, base.er_tracks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn analyzed(
        period_factor: f64,
        util: f64,
    ) -> (Technology, Layout, RoutingState, RegionAnalysis) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = period_factor;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, util);
        place::global_place(&mut layout, &tech, 17);
        place::refine_wirelength(&mut layout, &tech, 2, 17);
        let routing = route::route_design(&layout, &tech);
        let timing = sta::analyze(&layout, &routing, &tech);
        let analysis = analyze_regions(&layout, &routing, &timing, &tech, THRESH_ER);
        (tech, layout, routing, analysis)
    }

    #[test]
    fn baseline_layout_is_exploitable() {
        let (_, _, _, a) = analyzed(1.4, 0.6);
        assert!(a.er_sites >= THRESH_ER as u64);
        assert!(a.er_tracks > 0.0);
        assert!(!a.regions.is_empty());
        // Regions are sorted largest-first and all meet the threshold.
        for w in a.regions.windows(2) {
            assert!(w[0].sites >= w[1].sites);
        }
        assert!(a.regions.iter().all(|r| r.sites >= THRESH_ER as u64));
    }

    #[test]
    fn region_row_runs_are_actually_free() {
        let (_, layout, _, a) = analyzed(1.4, 0.6);
        for region in &a.regions {
            for &(row, iv) in &region.rows {
                for col in iv.lo..iv.hi {
                    assert!(layout
                        .occupancy()
                        .state(SitePos::new(row, col))
                        .is_exploitable());
                }
            }
        }
    }

    #[test]
    fn higher_utilization_reduces_er_sites() {
        let (_, _, _, loose) = analyzed(1.4, 0.55);
        let (_, _, _, dense) = analyzed(1.4, 0.80);
        assert!(
            dense.er_sites < loose.er_sites,
            "dense {} vs loose {}",
            dense.er_sites,
            loose.er_sites
        );
    }

    #[test]
    fn security_score_of_baseline_is_one() {
        let (_, _, _, a) = analyzed(1.4, 0.6);
        let s = security_score(&a, &a, 0.5);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn security_score_handles_clean_layout() {
        let (_, _, _, base) = analyzed(1.4, 0.6);
        let clean = RegionAnalysis {
            regions: vec![],
            er_sites: 0,
            er_tracks: 0.0,
            distances: vec![],
        };
        assert_eq!(security_score(&clean, &base, 0.5), 0.0);
        assert_eq!(security_score(&clean, &clean, 0.5), 0.0);
    }

    #[test]
    fn threshold_filters_small_fragments() {
        let (_, layout, routing, _) = analyzed(1.4, 0.6);
        let timing = sta::analyze(&layout, &routing, &Technology::nangate45_like());
        let tech = Technology::nangate45_like();
        let strict = analyze_regions(&layout, &routing, &timing, &tech, 1_000);
        let lax = analyze_regions(&layout, &routing, &timing, &tech, 4);
        assert!(strict.er_sites <= lax.er_sites);
        assert!(lax.regions.iter().all(|r| r.sites >= 4));
    }

    /// The per-row center rescan that the event sweep replaced, kept as
    /// the oracle for the sweep's vertex set: every row's mask is rebuilt
    /// from scratch by testing each center against the row.
    fn rescan_vertices(
        layout: &Layout,
        timing: &TimingReport,
        tech: &Technology,
    ) -> Vec<(u32, Interval)> {
        let distances = exploitable_distances(layout, timing, tech);
        let fp = layout.floorplan();
        let occ = layout.occupancy();
        let centers: Vec<(geom::Point, Dbu)> = distances
            .iter()
            .filter(|(_, d)| *d > 0)
            .map(|&(c, d)| (layout.cell_center(c, tech), d))
            .collect();
        let mut vertices = Vec::new();
        for row in 0..fp.rows() {
            let row_y = row as Dbu * SITE_H + SITE_H / 2;
            let mut mask: Vec<Interval> = Vec::new();
            for &(p, d) in &centers {
                if (p.y - row_y).abs() > d {
                    continue;
                }
                let lo = ((p.x - d) / SITE_W).max(0) as u32;
                let hi = (((p.x + d) / SITE_W) + 1).min(fp.cols() as Dbu) as u32;
                if lo < hi {
                    mask.push(Interval::new(lo, hi));
                }
            }
            if mask.is_empty() {
                continue;
            }
            mask.sort_unstable();
            let mut merged = Vec::new();
            merge_sorted_into(&mask, &mut merged);
            for run in occ.exploitable_runs(row) {
                for m in &merged {
                    if let Some(clip) = run.intersection(m) {
                        if !clip.is_empty() {
                            vertices.push((row, clip));
                        }
                    }
                }
            }
        }
        vertices
    }

    #[test]
    fn sweep_mask_matches_per_row_rescan() {
        for (pf, util) in [(1.4, 0.6), (0.9, 0.8), (1.1, 0.4)] {
            let (tech, layout, routing, a) = analyzed(pf, util);
            let timing = sta::analyze(&layout, &routing, &tech);
            let oracle = rescan_vertices(&layout, &timing, &tech);
            let mut from_regions: Vec<(u32, Interval)> = a
                .regions
                .iter()
                .flat_map(|r| r.rows.iter().copied())
                .collect();
            from_regions.sort_unstable();
            // Region rows are the threshold-surviving subset of the vertex
            // set, so every one must appear verbatim in the oracle scan.
            let mut oracle_sorted = oracle.clone();
            oracle_sorted.sort_unstable();
            for v in &from_regions {
                assert!(
                    oracle_sorted.binary_search(v).is_ok(),
                    "sweep produced a vertex the rescan never saw: {v:?}"
                );
            }
            // And the total exploitable weight must match exactly: the
            // sweep found neither more nor fewer exploitable sites.
            let lax = analyze_regions(&layout, &routing, &timing, &tech, 1);
            let oracle_sites: u64 = oracle.iter().map(|(_, iv)| iv.len() as u64).sum();
            assert_eq!(lax.er_sites, oracle_sites);
        }
    }

    #[test]
    fn merge_intervals_collapses_overlaps() {
        let mut ivs = vec![
            Interval::new(5, 9),
            Interval::new(0, 3),
            Interval::new(8, 12),
            Interval::new(3, 4),
        ];
        ivs.sort_unstable();
        let mut merged = Vec::new();
        merge_sorted_into(&ivs, &mut merged);
        assert_eq!(merged, vec![Interval::new(0, 4), Interval::new(5, 12)]);
    }
}
