//! Security metrics for fabrication-time Trojan insertion, following
//! Knechtel et al. (ISPD'22) as adopted by GDSII-Guard §II-A, plus an
//! A2-style Trojan-insertion attack simulator used to validate them.
//!
//! The pipeline is: per-critical-cell **exploitable distance** from timing
//! slack ([`distance`]), **exploitable region** extraction over the free
//! sites within those distances ([`regions`]), the two sub-metrics
//! `ERsites` / `ERtracks`, the normalized `Security(L)` score, and the
//! attack simulator ([`attack`]).
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//! use secmetrics::{analyze_regions, THRESH_ER};
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! let routing = route::route_design(&layout, &tech);
//! let timing = sta::analyze(&layout, &routing, &tech);
//! let regions = analyze_regions(&layout, &routing, &timing, &tech, THRESH_ER);
//! assert!(regions.er_sites > 0, "a 60%-utilized baseline is exploitable");
//! ```

pub mod attack;
pub mod distance;
pub mod regions;
pub mod report;

pub use attack::{simulate_attack, AttackOutcome, TrojanSpec};
pub use distance::{exploitable_distance_dbu, exploitable_distances};
pub use regions::{analyze_regions, security_score, Region, RegionAnalysis, THRESH_ER};
pub use report::{region_report, render_report, RegionReportLine};
