//! Human-readable security reporting: per-region detail a signoff engineer
//! (or the paper's Fig. 1 caption) would want — region sizes, their
//! distance to the nearest critical asset, and which Trojans of the
//! standard battery would fit where.

use layout::Layout;
use tech::Technology;

use crate::attack::{simulate_attack, TrojanSpec};
use crate::regions::RegionAnalysis;

/// One line of the per-region report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReportLine {
    /// Index into [`RegionAnalysis::regions`].
    pub index: usize,
    /// Total free sites.
    pub sites: u64,
    /// Longest single run (bounds the widest placeable Trojan gate).
    pub widest_run: u32,
    /// Rows spanned.
    pub row_span: u32,
    /// Chebyshev distance (µm) from the region's closest run to the
    /// nearest critical cell.
    pub dist_to_asset_um: f64,
}

/// Builds the per-region report, sorted like the analysis (largest first).
pub fn region_report(
    analysis: &RegionAnalysis,
    layout: &Layout,
    tech: &Technology,
) -> Vec<RegionReportLine> {
    let fp = layout.floorplan();
    let assets: Vec<geom::Point> = layout
        .design()
        .critical_cells
        .iter()
        .filter(|&&c| layout.cell_pos(c).is_some())
        .map(|&c| layout.cell_center(c, tech))
        .collect();
    analysis
        .regions
        .iter()
        .enumerate()
        .map(|(index, r)| {
            let rows: Vec<u32> = r.rows.iter().map(|&(row, _)| row).collect();
            let row_span = rows.iter().max().unwrap_or(&0) - rows.iter().min().unwrap_or(&0) + 1;
            let mut best = f64::INFINITY;
            for &(row, iv) in &r.rows {
                let p = fp.site_center(geom::SitePos::new(row, (iv.lo + iv.hi) / 2));
                for a in &assets {
                    let d = geom::dbu_to_um(p.chebyshev(*a));
                    best = best.min(d);
                }
            }
            RegionReportLine {
                index,
                sites: r.sites,
                widest_run: r.widest_run(),
                row_span,
                dist_to_asset_um: best,
            }
        })
        .collect()
}

/// Renders a compact text report: the region table plus the battery
/// verdicts — what a `ggd analyze` user reads.
pub fn render_report(analysis: &RegionAnalysis, layout: &Layout, tech: &Technology) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let lines = region_report(analysis, layout, tech);
    let _ = writeln!(
        out,
        "{} exploitable regions, {} sites, {:.0} free tracks",
        analysis.regions.len(),
        analysis.er_sites,
        analysis.er_tracks
    );
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>8} {:>6} {:>10}",
        "#", "sites", "widest", "rows", "dist(µm)"
    );
    for l in lines.iter().take(10) {
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>8} {:>6} {:>10.1}",
            l.index, l.sites, l.widest_run, l.row_span, l.dist_to_asset_um
        );
    }
    if lines.len() > 10 {
        let _ = writeln!(out, "  … and {} more", lines.len() - 10);
    }
    for spec in TrojanSpec::battery() {
        let o = simulate_attack(analysis, tech, &spec);
        let _ = writeln!(
            out,
            "battery {:<22} {}",
            spec.name,
            if o.success { "INSERTABLE" } else { "defeated" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn analyzed() -> (Technology, Layout, RegionAnalysis) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        let routing = route::route_design(&layout, &tech);
        let timing = sta::analyze(&layout, &routing, &tech);
        let analysis = crate::analyze_regions(&layout, &routing, &timing, &tech, crate::THRESH_ER);
        (tech, layout, analysis)
    }

    #[test]
    fn report_covers_every_region() {
        let (tech, layout, analysis) = analyzed();
        let lines = region_report(&analysis, &layout, &tech);
        assert_eq!(lines.len(), analysis.regions.len());
        for (l, r) in lines.iter().zip(&analysis.regions) {
            assert_eq!(l.sites, r.sites);
            assert!(l.widest_run > 0);
            assert!(l.row_span >= 1);
            assert!(l.dist_to_asset_um.is_finite());
        }
    }

    #[test]
    fn rendered_report_is_complete_prose() {
        let (tech, layout, analysis) = analyzed();
        let text = render_report(&analysis, &layout, &tech);
        assert!(text.contains("exploitable regions"));
        assert!(text.contains("battery a2-analog"));
        assert!(text.lines().count() >= 4);
    }
}
