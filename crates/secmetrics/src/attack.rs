//! A2-style Trojan insertion simulator.
//!
//! The paper's threat model (§II-B): the attacker starts from the tapeout
//! GDSII, may add cells and wires in open spaces, and cannot move or resize
//! existing components. This module attempts exactly that insertion against
//! an analyzed layout: pack the Trojan's gates into one exploitable region
//! (first-fit over its free runs) and claim routing tracks over the region
//! for the trigger/payload wiring. It closes the loop on the ER metrics:
//! layouts with no qualifying region defeat the insertion.

use geom::Interval;
use tech::Technology;

use crate::regions::{Region, RegionAnalysis};

/// A Trojan to insert: a bag of library gates plus routing demand.
#[derive(Debug, Clone, PartialEq)]
pub struct TrojanSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Library kind names of the Trojan gates (trigger + payload).
    pub gates: Vec<&'static str>,
    /// Free routing tracks the Trojan needs over the region for its
    /// internal wiring and victim taps.
    pub min_free_tracks: f64,
}

impl TrojanSpec {
    /// The minimal A2-flavoured analog trigger: a charge-pump stage feeding
    /// a payload inverter pair.
    pub fn a2_analog() -> Self {
        Self {
            name: "a2-analog",
            gates: vec!["NAND2_X1", "INV_X1", "INV_X1"],
            min_free_tracks: 4.0,
        }
    }

    /// A counter-based digital trigger with a small payload mux.
    pub fn a2_digital() -> Self {
        Self {
            name: "a2-digital",
            gates: vec![
                "DFF_X1", "DFF_X1", "DFF_X1", "NAND2_X1", "NAND2_X1", "NOR2_X1", "INV_X1",
                "XOR2_X1", "MUX2_X1",
            ],
            min_free_tracks: 10.0,
        }
    }

    /// A privilege-escalation payload with a wider comparator trigger.
    pub fn privilege_escalation() -> Self {
        Self {
            name: "privilege-escalation",
            gates: vec![
                "DFF_X1", "DFF_X1", "DFF_X1", "DFF_X1", "XOR2_X1", "XOR2_X1", "XOR2_X1", "XOR2_X1",
                "NAND2_X1", "NAND2_X1", "NAND3_X1", "NOR2_X1", "AOI21_X1", "MUX2_X1", "MUX2_X1",
                "INV_X1",
            ],
            min_free_tracks: 18.0,
        }
    }

    /// The standard escalating attack battery used by the evaluation.
    pub fn battery() -> Vec<TrojanSpec> {
        vec![
            Self::a2_analog(),
            Self::a2_digital(),
            Self::privilege_escalation(),
        ]
    }

    /// Gate widths in sites, descending (first-fit-decreasing packing).
    fn widths_desc(&self, tech: &Technology) -> Vec<u32> {
        let mut w: Vec<u32> = self
            .gates
            .iter()
            .map(|g| {
                tech.library
                    .kind(
                        tech.library
                            .kind_by_name(g)
                            .unwrap_or_else(|| panic!("unknown gate {g}")),
                    )
                    .width_sites
            })
            .collect();
        w.sort_unstable_by_key(|x| std::cmp::Reverse(*x));
        w
    }

    /// Total footprint in sites.
    pub fn total_sites(&self, tech: &Technology) -> u64 {
        self.widths_desc(tech).iter().map(|&w| w as u64).sum()
    }
}

/// Result of one insertion attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Whether every gate was packed and the routing demand was met.
    pub success: bool,
    /// Index of the region used (into `RegionAnalysis::regions`).
    pub region_index: Option<usize>,
    /// Number of gates that found a slot in the best region tried.
    pub gates_placed: usize,
}

/// First-fit-decreasing packing of gate widths into the free runs of one
/// region. Returns how many gates fit.
fn pack_into_region(region: &Region, widths: &[u32]) -> usize {
    let mut runs: Vec<Interval> = region.rows.iter().map(|&(_, iv)| iv).collect();
    let mut placed = 0;
    'gates: for &w in widths {
        for run in runs.iter_mut() {
            if run.len() >= w {
                run.lo += w;
                placed += 1;
                continue 'gates;
            }
        }
        break;
    }
    placed
}

/// Attempts to insert `spec` into the analyzed layout.
///
/// Tries regions largest-first; succeeds on the first region that packs all
/// gates and offers enough free routing tracks (ERtracks prorated by the
/// region's share of all exploitable sites).
pub fn simulate_attack(
    analysis: &RegionAnalysis,
    tech: &Technology,
    spec: &TrojanSpec,
) -> AttackOutcome {
    let widths = spec.widths_desc(tech);
    let mut best_placed = 0;
    for (i, region) in analysis.regions.iter().enumerate() {
        if region.sites < spec.total_sites(tech) {
            continue; // regions are sorted; smaller ones cannot fit either
        }
        let placed = pack_into_region(region, &widths);
        best_placed = best_placed.max(placed);
        if placed < widths.len() {
            continue;
        }
        // Routing demand: this region's share of the free tracks.
        let share = if analysis.er_sites > 0 {
            region.sites as f64 / analysis.er_sites as f64
        } else {
            0.0
        };
        let tracks_here = analysis.er_tracks * share;
        if tracks_here >= spec.min_free_tracks {
            return AttackOutcome {
                success: true,
                region_index: Some(i),
                gates_placed: placed,
            };
        }
    }
    AttackOutcome {
        success: false,
        region_index: None,
        gates_placed: best_placed,
    }
}

/// Fraction of the attack battery that succeeds against the analysis.
pub fn battery_success_rate(analysis: &RegionAnalysis, tech: &Technology) -> f64 {
    let battery = TrojanSpec::battery();
    let wins = battery
        .iter()
        .filter(|s| simulate_attack(analysis, tech, s).success)
        .count();
    wins as f64 / battery.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionAnalysis;

    fn region(rows: &[(u32, u32, u32)]) -> Region {
        let rows: Vec<(u32, Interval)> = rows
            .iter()
            .map(|&(r, lo, hi)| (r, Interval::new(lo, hi)))
            .collect();
        Region {
            sites: rows.iter().map(|(_, iv)| iv.len() as u64).sum(),
            rows,
        }
    }

    fn analysis(regions: Vec<Region>, tracks: f64) -> RegionAnalysis {
        RegionAnalysis {
            er_sites: regions.iter().map(|r| r.sites).sum(),
            er_tracks: tracks,
            regions,
            distances: vec![],
        }
    }

    #[test]
    fn small_trojan_fits_big_region() {
        let tech = Technology::nangate45_like();
        let a = analysis(vec![region(&[(0, 0, 30), (1, 0, 30)])], 100.0);
        let out = simulate_attack(&a, &tech, &TrojanSpec::a2_analog());
        assert!(out.success);
        assert_eq!(out.region_index, Some(0));
    }

    #[test]
    fn fragmented_region_defeats_wide_gates() {
        let tech = Technology::nangate45_like();
        // Plenty of total sites but every run is 3 sites: DFF_X1 (9 sites)
        // cannot fit, so the digital Trojan fails.
        let rows: Vec<(u32, u32, u32)> = (0..30).map(|r| (r, 0, 3)).collect();
        let a = analysis(vec![region(&rows)], 100.0);
        let out = simulate_attack(&a, &tech, &TrojanSpec::a2_digital());
        assert!(!out.success);
        assert!(out.gates_placed < TrojanSpec::a2_digital().gates.len());
        // The tiny analog Trojan still fits (widest gate is 3 sites).
        assert!(simulate_attack(&a, &tech, &TrojanSpec::a2_analog()).success);
    }

    #[test]
    fn no_regions_means_no_attack() {
        let tech = Technology::nangate45_like();
        let a = analysis(vec![], 1_000.0);
        for spec in TrojanSpec::battery() {
            assert!(!simulate_attack(&a, &tech, &spec).success);
        }
        assert_eq!(battery_success_rate(&a, &tech), 0.0);
    }

    #[test]
    fn starved_routing_defeats_attack() {
        let tech = Technology::nangate45_like();
        let a = analysis(vec![region(&[(0, 0, 60), (1, 0, 60)])], 0.5);
        let out = simulate_attack(&a, &tech, &TrojanSpec::a2_digital());
        assert!(!out.success, "no tracks, no Trojan wiring");
    }

    #[test]
    fn battery_is_escalating() {
        let tech = Technology::nangate45_like();
        let battery = TrojanSpec::battery();
        for w in battery.windows(2) {
            assert!(w[0].total_sites(&tech) <= w[1].total_sites(&tech));
        }
    }
}
