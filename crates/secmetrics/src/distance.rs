//! Exploitable distance: how far from a security-critical cell a Trojan can
//! sit while its tap still meets timing.
//!
//! Following §II-A of the paper: paths with positive slack to the critical
//! asset are extracted, a NAND gate (the simplest Trojan) is appended, and
//! the exploitable distance is the maximal routing distance (both
//! horizontally and vertically) after which the consumed slack still meets
//! timing.

use geom::Dbu;
use layout::Layout;
use netlist::CellId;
use sta::TimingReport;
use tech::Technology;

/// Fraction of a path's positive slack an attacker can actually consume.
///
/// A fabrication-time Trojan that eats the entire slack margin makes the
/// victim path marginal: any process/voltage/temperature variation then
/// fails post-manufacturing test and exposes the attack. Stealthy insertion
/// therefore retains a guard band; following the A2 analysis we let the
/// attacker spend 30 % of the available margin.
pub const ATTACK_SLACK_BUDGET: f64 = 0.3;

/// Delay added by tapping a victim net and routing the tapped signal over a
/// wire of length `d` µm to a Trojan NAND:
///
/// `Δ(d) = A + B·d + C·d²` with
/// * `A` — NAND intrinsic delay plus the victim driver charging the NAND
///   input pin,
/// * `B·d` — the victim driver charging the tap wire, plus the tap wire
///   driving the NAND input,
/// * `C·d²` — distributed RC of the tap wire itself.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TapDelayModel {
    a: f64,
    b: f64,
    c: f64,
}

impl TapDelayModel {
    /// Builds the model from the library's NAND2 and the lower-metal wire
    /// parasitics the Trojan would route on (M2/M3 average). The wire terms
    /// are doubled: a functional Trojan needs both the trigger tap *to* the
    /// Trojan site and the payload connection routed *back* to the victim
    /// logic, so twice the distance is wired on the victim's timing path.
    fn new(tech: &Technology) -> Self {
        let nand = tech.library.kind(
            tech.library
                .kind_by_name("NAND2_X1")
                .expect("NAND2 in library"),
        );
        let victim_res = nand.drive_res; // representative victim driver
        let m2 = tech.layer(2);
        let m3 = tech.layer(3);
        let r = (m2.res_per_um + m3.res_per_um) / 2.0;
        let c = (m2.cap_per_um + m3.cap_per_um) / 2.0;
        let round_trip = 2.0;
        Self {
            a: nand.intrinsic + victim_res * nand.input_cap,
            b: round_trip * (victim_res * c + r * nand.input_cap),
            c: round_trip * round_trip * r * c / 2.0,
        }
    }

    /// Added delay for a tap of `d_um` microns.
    fn delay(&self, d_um: f64) -> f64 {
        self.a + self.b * d_um + self.c * d_um * d_um
    }

    /// Largest distance whose added delay fits in `slack_ps` (zero when
    /// even a zero-length tap breaks timing).
    fn max_distance_um(&self, slack_ps: f64) -> f64 {
        let budget = slack_ps - self.a;
        if budget <= 0.0 {
            return 0.0;
        }
        // C·d² + B·d − budget = 0, positive root.
        let disc = self.b * self.b + 4.0 * self.c * budget;
        let d = (-self.b + disc.sqrt()) / (2.0 * self.c);
        debug_assert!((self.delay(d) - slack_ps).abs() < 1e-6);
        d
    }
}

/// Exploitable distance of one critical cell in DBU (Chebyshev radius
/// around the cell), derived from the slack of the paths through its output
/// net — the net an attacker taps to observe the asset.
///
/// Unconstrained cells (infinite slack) are capped at the core diagonal:
/// the whole layout is within reach, matching the paper's observation for
/// timing-loose designs.
pub fn exploitable_distance_dbu(
    layout: &Layout,
    timing: &TimingReport,
    tech: &Technology,
    cell: CellId,
) -> Dbu {
    let model = TapDelayModel::new(tech);
    let design = layout.design();
    let slack = match design.cell(cell).output {
        Some(out) => timing.net_slack_ps(out),
        None => timing.cell_slack_ps(cell),
    };
    let core = layout.floorplan().core_rect();
    let cap = core.width().max(core.height());
    if slack == f64::INFINITY {
        return cap;
    }
    let d_um = model.max_distance_um(slack.max(0.0) * ATTACK_SLACK_BUDGET);
    geom::um_to_dbu(d_um).min(cap)
}

/// Exploitable distances for every security-critical cell, as
/// `(cell, distance_dbu)` pairs.
pub fn exploitable_distances(
    layout: &Layout,
    timing: &TimingReport,
    tech: &Technology,
) -> Vec<(CellId, Dbu)> {
    layout
        .design()
        .critical_cells
        .iter()
        .map(|&c| (c, exploitable_distance_dbu(layout, timing, tech, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn model() -> TapDelayModel {
        TapDelayModel::new(&Technology::nangate45_like())
    }

    #[test]
    fn delay_is_monotonic_in_distance() {
        let m = model();
        let mut last = 0.0;
        for d in [0.0, 10.0, 50.0, 200.0, 1_000.0] {
            let v = m.delay(d);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn max_distance_inverts_delay() {
        let m = model();
        for slack in [20.0, 60.0, 150.0, 400.0] {
            let d = m.max_distance_um(slack);
            if d > 0.0 {
                assert!((m.delay(d) - slack).abs() < 1e-6, "slack {slack}");
            }
        }
    }

    #[test]
    fn no_slack_means_no_distance() {
        let m = model();
        assert_eq!(m.max_distance_um(0.0), 0.0);
        assert_eq!(m.max_distance_um(-50.0), 0.0);
        // Even a tiny positive slack below the intrinsic cost gives zero.
        assert_eq!(m.max_distance_um(m.a * 0.5), 0.0);
    }

    #[test]
    fn more_slack_reaches_further() {
        let m = model();
        assert!(m.max_distance_um(200.0) > m.max_distance_um(50.0));
    }

    #[test]
    fn loose_design_distances_cover_the_core() {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 3.0; // very loose
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 1);
        let routing = route::route_design(&layout, &tech);
        let timing = sta::analyze(&layout, &routing, &tech);
        let core = layout.floorplan().core_rect();
        let cap = core.width().max(core.height());
        let dists = exploitable_distances(&layout, &timing, &tech);
        assert!(!dists.is_empty());
        let far = dists.iter().filter(|(_, d)| *d >= cap / 2).count();
        assert!(
            far * 2 >= dists.len(),
            "loose design should reach far: {far}/{}",
            dists.len()
        );
    }

    #[test]
    fn tight_design_distances_are_shorter() {
        let tech = Technology::nangate45_like();
        let mut loose = bench::tiny_spec();
        loose.period_factor = 3.0;
        let mut tight = bench::tiny_spec();
        tight.period_factor = 0.95;
        let sum_dist = |spec: &bench::DesignSpec| -> f64 {
            let design = bench::generate(spec, &tech);
            let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
            place::global_place(&mut layout, &tech, 1);
            let routing = route::route_design(&layout, &tech);
            let timing = sta::analyze(&layout, &routing, &tech);
            exploitable_distances(&layout, &timing, &tech)
                .iter()
                .map(|(_, d)| *d as f64)
                .sum()
        };
        assert!(sum_dist(&tight) < sum_dist(&loose));
    }
}
