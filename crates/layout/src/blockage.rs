/// A partial placement blockage: a density upper bound over a rectangular
/// window of sites, in row/column space.
///
/// This is the Innovus `createPlaceBlockage -type partial` analogue the LDA
/// operator uses: ECO placement must keep the functional-cell density inside
/// `rows × cols` at or below `max_density`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blockage {
    /// First covered row (inclusive).
    pub row0: u32,
    /// Last covered row (exclusive).
    pub row1: u32,
    /// First covered column (inclusive).
    pub col0: u32,
    /// Last covered column (exclusive).
    pub col1: u32,
    /// Density upper bound in `[0, 1]`.
    pub max_density: f64,
}

impl Blockage {
    /// Creates a blockage.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the density is outside `[0, 1]`.
    pub fn new(row0: u32, row1: u32, col0: u32, col1: u32, max_density: f64) -> Self {
        assert!(row0 < row1 && col0 < col1, "empty blockage window");
        assert!(
            (0.0..=1.0).contains(&max_density),
            "density must be in [0, 1]"
        );
        Self {
            row0,
            row1,
            col0,
            col1,
            max_density,
        }
    }

    /// Whether a site lies inside the blockage window.
    pub fn contains(&self, row: u32, col: u32) -> bool {
        row >= self.row0 && row < self.row1 && col >= self.col0 && col < self.col1
    }

    /// Number of sites covered.
    pub fn num_sites(&self) -> u64 {
        (self.row1 - self.row0) as u64 * (self.col1 - self.col0) as u64
    }

    /// Maximum number of occupied sites the bound allows.
    pub fn site_budget(&self) -> u64 {
        (self.num_sites() as f64 * self.max_density).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let b = Blockage::new(2, 4, 10, 20, 0.5);
        assert!(b.contains(2, 10));
        assert!(b.contains(3, 19));
        assert!(!b.contains(4, 10));
        assert!(!b.contains(2, 20));
        assert_eq!(b.num_sites(), 20);
        assert_eq!(b.site_budget(), 10);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn density_validated() {
        Blockage::new(0, 1, 0, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn window_validated() {
        Blockage::new(3, 3, 0, 1, 0.5);
    }
}
