//! Physical-layout data model: floorplan, site occupancy, placement
//! blockages, filler cells, and the [`Layout`] aggregate that the placement,
//! routing, analysis, and defense crates operate on.
//!
//! A layout is a core area of uniform rows divided into placement sites
//! (the paper's free-site granularity), an assignment of every netlist cell
//! to a site run, optional filler cells, optional partial placement
//! blockages (density upper bounds used by the LDA operator), and the
//! active non-default routing rule.
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let layout = Layout::empty_floorplan(design, &tech, 0.6);
//! assert!(layout.floorplan().num_sites() > 0);
//! ```

mod blockage;
mod filler;
mod floorplan;
mod occupancy;

use geom::SitePos;
use netlist::{CellId, Design};
use tech::{RouteRule, Technology};

pub use blockage::Blockage;
pub use filler::{insert_fillers, FillerInstance};
pub use floorplan::Floorplan;
pub use occupancy::{Occupancy, PlaceCellError, SiteState};

/// A placed (and possibly routed-against) physical layout.
///
/// The [`Design`] is `Arc`-shared — ECO operators move cells and swap
/// routing rules but never touch the netlist, so cloning a layout during
/// design-space exploration copies the occupancy map and rule, not the
/// design. The [`Technology`] is passed to the methods that need master
/// data, keeping layouts cheap to clone.
#[derive(Debug, Clone)]
pub struct Layout {
    design: std::sync::Arc<Design>,
    floorplan: Floorplan,
    occupancy: Occupancy,
    blockages: Vec<Blockage>,
    route_rule: RouteRule,
}

impl Layout {
    /// Creates an unplaced layout with a floorplan sized for the design at
    /// the given core `utilization`.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not within `(0, 1]`.
    pub fn empty_floorplan(design: Design, tech: &Technology, utilization: f64) -> Self {
        let fp = Floorplan::for_design(&design, tech, utilization);
        let occupancy = Occupancy::new(fp);
        Self {
            design: std::sync::Arc::new(design),
            floorplan: fp,
            occupancy,
            blockages: Vec::new(),
            route_rule: RouteRule::default(),
        }
    }

    /// The underlying netlist.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Shared view of the occupancy map.
    pub fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    /// Mutable view of the occupancy map.
    pub fn occupancy_mut(&mut self) -> &mut Occupancy {
        &mut self.occupancy
    }

    /// The active partial placement blockages.
    pub fn blockages(&self) -> &[Blockage] {
        &self.blockages
    }

    /// Replaces the blockage list (the LDA operator rebuilds it each
    /// iteration).
    pub fn set_blockages(&mut self, blockages: Vec<Blockage>) {
        self.blockages = blockages;
    }

    /// Removes every placement blockage.
    pub fn clear_blockages(&mut self) {
        self.blockages.clear();
    }

    /// The active non-default routing rule.
    pub fn route_rule(&self) -> &RouteRule {
        &self.route_rule
    }

    /// Installs a non-default routing rule (Routing Width Scaling).
    pub fn set_route_rule(&mut self, rule: RouteRule) {
        self.route_rule = rule;
    }

    /// Origin site of a placed cell.
    pub fn cell_pos(&self, cell: CellId) -> Option<SitePos> {
        self.occupancy.cell_pos(cell)
    }

    /// Center of a placed cell in DBU, for wirelength and distance queries.
    ///
    /// # Panics
    ///
    /// Panics if the cell is unplaced.
    pub fn cell_center(&self, cell: CellId, tech: &Technology) -> geom::Point {
        let pos = self
            .cell_pos(cell)
            .unwrap_or_else(|| panic!("cell {} is unplaced", cell.0));
        let w = tech.library.kind(self.design.cell(cell).kind).width_sites;
        let r = self.floorplan.sites_rect(pos, w);
        r.center()
    }

    /// Fraction of core sites occupied by functional cells (fillers and
    /// blocked sites do not count as occupied).
    pub fn utilization(&self) -> f64 {
        let occupied = self.occupancy.occupied_sites();
        occupied as f64 / self.floorplan.num_sites() as f64
    }

    /// Rebuilds this layout around an *extended* design: a superset of the
    /// current netlist whose first cells are identical (same ids). Existing
    /// placement, blockages, and routing rules carry over; the new cells
    /// start unplaced. Used by fill-based defenses that append
    /// tamper-evident logic to a finalized design.
    ///
    /// # Panics
    ///
    /// Panics if the new design has fewer cells than the current one.
    pub fn with_extended_design(&self, design: Design) -> Layout {
        assert!(
            design.cells.len() >= self.design.cells.len(),
            "extended design must be a superset"
        );
        Layout {
            design: std::sync::Arc::new(design),
            floorplan: self.floorplan,
            occupancy: self.occupancy.clone(),
            blockages: self.blockages.clone(),
            route_rule: self.route_rule.clone(),
        }
    }

    /// Checks that every cell is placed exactly where the occupancy grid
    /// says it is, with no overlaps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn check_consistency(&self, tech: &Technology) -> Result<(), String> {
        self.occupancy.check_consistency(&self.design, tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn tiny() -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let layout = Layout::empty_floorplan(design, &tech, 0.6);
        (tech, layout)
    }

    #[test]
    fn floorplan_capacity_matches_utilization() {
        let (tech, layout) = tiny();
        let need = layout.design().total_cell_sites(&tech);
        let have = layout.floorplan().num_sites();
        let util = need as f64 / have as f64;
        assert!(util > 0.5 && util <= 0.62, "utilization {util}");
    }

    #[test]
    fn route_rule_round_trip() {
        let (_, mut layout) = tiny();
        assert!(layout.route_rule().is_default());
        layout.set_route_rule(RouteRule::uniform(1.2));
        assert_eq!(layout.route_rule().scale(3), 1.2);
    }

    #[test]
    fn blockage_management() {
        let (_, mut layout) = tiny();
        layout.set_blockages(vec![Blockage::new(0, 2, 0, 10, 0.5)]);
        assert_eq!(layout.blockages().len(), 1);
        layout.clear_blockages();
        assert!(layout.blockages().is_empty());
    }
}
