use geom::{Dbu, Point, Rect, SitePos};
use netlist::Design;
use tech::{Technology, SITE_H, SITE_W};

/// The core area: `rows` uniform placement rows of `cols` sites each,
/// with the lower-left corner of the core at the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Floorplan {
    rows: u32,
    cols: u32,
}

impl Floorplan {
    /// Builds a floorplan with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "floorplan must be non-degenerate");
        Self { rows, cols }
    }

    /// Sizes a roughly square core so the design occupies `utilization`
    /// of the available sites.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not within `(0, 1]`.
    pub fn for_design(design: &Design, tech: &Technology, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        let need = design.total_cell_sites(tech) as f64;
        let total = (need / utilization).ceil();
        // Slightly tall core (width ≈ 0.75 × height): the metal stack has
        // ~34 % more vertical than horizontal track capacity, so a taller
        // die shifts wire spans toward the richer direction.
        const ASPECT: f64 = 0.75;
        let rows = (total * SITE_W as f64 / (SITE_H as f64 * ASPECT))
            .sqrt()
            .ceil() as u32;
        let rows = rows.max(1);
        let cols = (total / rows as f64).ceil() as u32;
        Self::new(rows, cols.max(1))
    }

    /// Number of core rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of sites per row.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of placement sites.
    pub fn num_sites(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Core bounding box in DBU.
    pub fn core_rect(&self) -> Rect {
        Rect::from_wh(
            Point::new(0, 0),
            self.cols as Dbu * SITE_W,
            self.rows as Dbu * SITE_H,
        )
    }

    /// Whether the site position lies inside the core.
    pub fn contains(&self, pos: SitePos) -> bool {
        pos.row < self.rows && pos.col < self.cols
    }

    /// DBU rectangle of a run of `width_sites` sites starting at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if the run leaves the core.
    pub fn sites_rect(&self, pos: SitePos, width_sites: u32) -> Rect {
        assert!(
            pos.row < self.rows && pos.col + width_sites <= self.cols,
            "site run out of core"
        );
        Rect::from_wh(
            Point::new(pos.col as Dbu * SITE_W, pos.row as Dbu * SITE_H),
            width_sites as Dbu * SITE_W,
            SITE_H,
        )
    }

    /// Center of a single site in DBU.
    ///
    /// # Panics
    ///
    /// Panics if the site lies outside the core.
    pub fn site_center(&self, pos: SitePos) -> Point {
        self.sites_rect(pos, 1).center()
    }

    /// The site containing a DBU point (points outside the core clamp to
    /// the nearest site).
    pub fn site_at(&self, p: Point) -> SitePos {
        let col = (p.x / SITE_W).clamp(0, self.cols as Dbu - 1) as u32;
        let row = (p.y / SITE_H).clamp(0, self.rows as Dbu - 1) as u32;
        SitePos::new(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    #[test]
    fn for_design_is_roughly_square() {
        let tech = Technology::nangate45_like();
        let d = bench::generate(&bench::tiny_spec(), &tech);
        let fp = Floorplan::for_design(&d, &tech, 0.6);
        let r = fp.core_rect();
        let aspect = r.width() as f64 / r.height() as f64;
        assert!(aspect > 0.6 && aspect < 1.7, "aspect {aspect}");
    }

    #[test]
    fn site_round_trip() {
        let fp = Floorplan::new(10, 50);
        for pos in [SitePos::new(0, 0), SitePos::new(9, 49), SitePos::new(4, 17)] {
            assert_eq!(fp.site_at(fp.site_center(pos)), pos);
        }
    }

    #[test]
    fn site_at_clamps() {
        let fp = Floorplan::new(4, 4);
        let far = Point::new(1_000_000, 1_000_000);
        assert_eq!(fp.site_at(far), SitePos::new(3, 3));
        assert_eq!(fp.site_at(Point::new(-5, -5)), SitePos::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of core")]
    fn sites_rect_bounds_checked() {
        let fp = Floorplan::new(4, 4);
        fp.sites_rect(SitePos::new(0, 3), 2);
    }

    #[test]
    fn capacity_scales_inverse_with_utilization() {
        let tech = Technology::nangate45_like();
        let d = bench::generate(&bench::tiny_spec(), &tech);
        let loose = Floorplan::for_design(&d, &tech, 0.5);
        let tight = Floorplan::for_design(&d, &tech, 0.9);
        assert!(loose.num_sites() > tight.num_sites());
    }
}
