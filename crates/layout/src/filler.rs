use geom::SitePos;
use tech::{KindId, Technology};

use crate::occupancy::Occupancy;

/// A placed non-functional filler cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillerInstance {
    /// Origin site.
    pub pos: SitePos,
    /// Filler master.
    pub kind: KindId,
    /// Width in sites.
    pub width: u32,
}

/// Tiles every empty run of the layout with filler cells, widest first.
///
/// Returns the number of filler instances added. After this pass no site is
/// `Empty`; exploitable-region analysis treats fillers as free, so the
/// security metrics are unchanged — this is a tapeout-hygiene step that
/// matters for GDSII export realism.
pub fn insert_fillers(occ: &mut Occupancy, tech: &Technology) -> usize {
    let fillers = tech.library.fillers_desc();
    debug_assert!(!fillers.is_empty(), "library has no filler cells");
    let mut added = 0;
    for row in 0..occ.floorplan().rows() {
        for run in occ.empty_runs(row) {
            let mut col = run.lo;
            let mut left = run.len();
            while left > 0 {
                let kind = fillers
                    .iter()
                    .copied()
                    .find(|k| tech.library.kind(*k).width_sites <= left)
                    .expect("1-site filler guarantees progress");
                let w = tech.library.kind(kind).width_sites;
                occ.add_filler(SitePos::new(row, col), kind, w)
                    .expect("run is empty by construction");
                col += w;
                left -= w;
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use netlist::CellId;
    use tech::Technology;

    #[test]
    fn fills_everything() {
        let tech = Technology::nangate45_like();
        let mut occ = Occupancy::new(Floorplan::new(3, 25));
        occ.place_cell(CellId(0), 4, SitePos::new(1, 3)).unwrap();
        let n = insert_fillers(&mut occ, &tech);
        assert!(n > 0);
        for row in 0..3 {
            assert!(occ.empty_runs(row).is_empty(), "row {row} has empty sites");
        }
        // Exploitable structure unchanged: fillers still count as free.
        assert_eq!(occ.exploitable_runs(1).len(), 2);
    }

    #[test]
    fn widest_fillers_preferred() {
        let tech = Technology::nangate45_like();
        let mut occ = Occupancy::new(Floorplan::new(1, 16));
        let n = insert_fillers(&mut occ, &tech);
        // 16 sites tile as two FILL_X8.
        assert_eq!(n, 2);
    }

    #[test]
    fn clear_restores_empty() {
        let tech = Technology::nangate45_like();
        let mut occ = Occupancy::new(Floorplan::new(2, 10));
        insert_fillers(&mut occ, &tech);
        occ.clear_fillers();
        assert_eq!(occ.empty_runs(0).len(), 1);
        assert_eq!(occ.empty_runs(0)[0].len(), 10);
    }
}
