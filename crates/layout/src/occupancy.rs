use std::sync::Arc;

use geom::{Interval, SitePos};
use netlist::{CellId, Design};
use tech::{KindId, Technology};

use crate::filler::FillerInstance;
use crate::floorplan::Floorplan;

const EMPTY: u32 = u32::MAX;
const FILLER: u32 = u32::MAX - 1;

/// Rows per copy-on-write shard. Eight rows keeps the copy unit small
/// (a mutation clones one shard, not the whole core) while bounding the
/// number of `Arc` bumps a snapshot clone pays to `rows / 8`.
const SHARD_ROWS: u32 = 8;

/// Neighbor merges performed by the gap index when a freed span rejoins
/// an adjacent free run (`occupancy.coalesces`). Resolved once per
/// process.
fn coalesce_counter() -> &'static obs::Counter {
    static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::counter("occupancy.coalesces"))
}

/// What occupies a single placement site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// No cell here.
    Empty,
    /// Part of the footprint of a functional cell.
    Cell(CellId),
    /// Part of a non-functional filler cell.
    Filler,
}

impl SiteState {
    /// Whether the site counts as *free for Trojan insertion* under
    /// Definition 2.2 (empty, or occupied by a non-functional filler).
    pub fn is_exploitable(self) -> bool {
        matches!(self, SiteState::Empty | SiteState::Filler)
    }
}

/// Errors from [`Occupancy::place_cell`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceCellError {
    /// The requested run leaves the core area.
    OutOfCore,
    /// Some site in the requested run is already occupied.
    Occupied,
    /// The cell is already placed (remove it first).
    AlreadyPlaced,
    /// The cell is locked against modification.
    Locked,
}

impl core::fmt::Display for PlaceCellError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::OutOfCore => "placement leaves the core area",
            Self::Occupied => "target sites are occupied",
            Self::AlreadyPlaced => "cell is already placed",
            Self::Locked => "cell is locked",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PlaceCellError {}

/// One copy-on-write row group: the site states of up to [`SHARD_ROWS`]
/// consecutive rows plus their gap index, flattened CSR-style so the
/// whole shard is three contiguous allocations.
#[derive(Debug, Clone, PartialEq)]
struct RowShard {
    /// Site states, row-major: `sites[local_row * cols + col]`.
    sites: Vec<u32>,
    /// CSR offsets into `ivs`, one per local row plus a sentinel
    /// (`len == rows_here + 1`).
    starts: Vec<u32>,
    /// Concatenated per-row gap lists. Each row's slice is sorted,
    /// disjoint, non-touching maximal runs of strictly empty sites.
    ivs: Vec<Interval>,
}

impl RowShard {
    fn new(rows_here: u32, cols: u32) -> Self {
        let mut starts = Vec::with_capacity(rows_here as usize + 1);
        let mut ivs = Vec::new();
        starts.push(0);
        for _ in 0..rows_here {
            if cols > 0 {
                ivs.push(Interval::new(0, cols));
            }
            starts.push(ivs.len() as u32);
        }
        Self {
            sites: vec![EMPTY; rows_here as usize * cols as usize],
            starts,
            ivs,
        }
    }

    /// Gap slice of one local row.
    fn gaps(&self, local_row: usize) -> &[Interval] {
        &self.ivs[self.starts[local_row] as usize..self.starts[local_row + 1] as usize]
    }

    /// Resident heap bytes of this shard's three allocations.
    fn heap_bytes(&self) -> u64 {
        (self.sites.capacity() * size_of::<u32>()
            + self.starts.capacity() * size_of::<u32>()
            + self.ivs.capacity() * size_of::<Interval>()) as u64
    }
}

/// Row/site occupancy map plus per-cell placement records.
///
/// The grid is the ground truth for free-site queries (exploitable-region
/// extraction, cell shift); the per-cell table is the ground truth for
/// wirelength and timing queries. [`check_consistency`](Self::check_consistency)
/// verifies they agree.
///
/// Alongside the sites, the map maintains a persistent per-row **gap
/// index**: the sorted list of maximal strictly-empty runs of each row,
/// updated incrementally on every place/remove/move/filler mutation
/// (binary-search insert/remove with neighbor coalescing). Gap queries —
/// [`empty_runs`](Self::empty_runs), [`gaps`](Self::gaps),
/// [`nearest_gap`](Self::nearest_gap), [`find_gap`](Self::find_gap) —
/// read the index instead of scanning sites, and answer identically to
/// the brute-force scans they replaced
/// ([`empty_runs_scan`](Self::empty_runs_scan) /
/// [`find_gap_scan`](Self::find_gap_scan) remain as the reference).
///
/// Sites and gap index live together in `Arc`-shared row-group
/// **shards** of 8 (`SHARD_ROWS`) rows each, so cloning an occupancy
/// (copy-on-write snapshots) bumps one refcount per shard — no resident
/// dense site grid per clone — and a mutation copies only the shard it
/// touches.
#[derive(Debug, Clone)]
pub struct Occupancy {
    fp: Floorplan,
    shards: Vec<Arc<RowShard>>,
    cell_pos: Vec<Option<SitePos>>,
    cell_width: Vec<u32>,
    locked: Vec<bool>,
    fillers: Vec<FillerInstance>,
    occupied: u64,
}

impl Occupancy {
    /// Creates an empty occupancy map for the floorplan.
    pub fn new(fp: Floorplan) -> Self {
        let rows = fp.rows();
        let cols = fp.cols();
        let shards = (0..rows.div_ceil(SHARD_ROWS))
            .map(|si| {
                let rows_here = (rows - si * SHARD_ROWS).min(SHARD_ROWS);
                Arc::new(RowShard::new(rows_here, cols))
            })
            .collect();
        Self {
            fp,
            shards,
            cell_pos: Vec::new(),
            cell_width: Vec::new(),
            locked: Vec::new(),
            fillers: Vec::new(),
            occupied: 0,
        }
    }

    #[inline]
    fn shard_loc(row: u32) -> (usize, usize) {
        ((row / SHARD_ROWS) as usize, (row % SHARD_ROWS) as usize)
    }

    /// Site states of one row, borrowed from its shard.
    #[inline]
    fn row_sites(&self, row: u32) -> &[u32] {
        let (si, lr) = Self::shard_loc(row);
        let cols = self.fp.cols() as usize;
        &self.shards[si].sites[lr * cols..(lr + 1) * cols]
    }

    /// Mutable site states of one row (copies the owning shard if
    /// shared).
    #[inline]
    fn row_sites_mut(&mut self, row: u32) -> &mut [u32] {
        let (si, lr) = Self::shard_loc(row);
        let cols = self.fp.cols() as usize;
        let sh = Arc::make_mut(&mut self.shards[si]);
        &mut sh.sites[lr * cols..(lr + 1) * cols]
    }

    /// Shifts the CSR offsets of every row after `local_row` by the net
    /// change in that row's gap count.
    fn shift_starts(starts: &mut [u32], local_row: usize, delta: i64) {
        for s in &mut starts[local_row + 1..] {
            *s = (i64::from(*s) + delta) as u32;
        }
    }

    /// Carves `span` out of the free run containing it. The caller has
    /// already verified the span is entirely empty (`fits`), so exactly
    /// one gap covers it.
    fn gap_take(&mut self, row: u32, span: Interval) {
        let (si, lr) = Self::shard_loc(row);
        let sh = Arc::make_mut(&mut self.shards[si]);
        let (s, e) = (sh.starts[lr] as usize, sh.starts[lr + 1] as usize);
        let g = &mut sh.ivs;
        let i = s + g[s..e].partition_point(|iv| iv.lo <= span.lo) - 1;
        let iv = g[i];
        debug_assert!(
            iv.lo <= span.lo && span.hi <= iv.hi,
            "taking a non-free span {span:?} from gap {iv:?}"
        );
        let left = Interval::new(iv.lo, span.lo);
        let right = Interval::new(span.hi, iv.hi);
        match (left.is_empty(), right.is_empty()) {
            (false, false) => {
                g[i] = left;
                g.insert(i + 1, right);
                Self::shift_starts(&mut sh.starts, lr, 1);
            }
            (false, true) => g[i] = left,
            (true, false) => g[i] = right,
            (true, true) => {
                g.remove(i);
                Self::shift_starts(&mut sh.starts, lr, -1);
            }
        }
    }

    /// Returns `span` to the free pool, coalescing with the runs it now
    /// touches. The caller has already cleared the sites on the grid, so
    /// the span overlaps no existing gap and its neighbors either abut
    /// it exactly or are occupied.
    fn gap_free(&mut self, row: u32, span: Interval) {
        let (si, lr) = Self::shard_loc(row);
        let sh = Arc::make_mut(&mut self.shards[si]);
        let (s, e) = (sh.starts[lr] as usize, sh.starts[lr + 1] as usize);
        let g = &mut sh.ivs;
        let i = s + g[s..e].partition_point(|iv| iv.lo < span.lo);
        let (mut lo, mut hi) = (span.lo, span.hi);
        let (mut start, mut end) = (i, i);
        let mut merged = 0u64;
        if start > s && g[start - 1].hi == span.lo {
            start -= 1;
            lo = g[start].lo;
            merged += 1;
        }
        if end < e && g[end].lo == span.hi {
            hi = g[end].hi;
            end += 1;
            merged += 1;
        }
        g.splice(start..end, [Interval::new(lo, hi)]);
        Self::shift_starts(&mut sh.starts, lr, 1 - (end - start) as i64);
        if merged > 0 {
            coalesce_counter().add(merged);
        }
    }

    fn ensure_cell(&mut self, cell: CellId) {
        let need = cell.0 as usize + 1;
        if self.cell_pos.len() < need {
            self.cell_pos.resize(need, None);
            self.cell_width.resize(need, 0);
            self.locked.resize(need, false);
        }
    }

    /// The floorplan this map covers.
    pub fn floorplan(&self) -> &Floorplan {
        &self.fp
    }

    /// State of one site.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies outside the core.
    pub fn state(&self, pos: SitePos) -> SiteState {
        assert!(self.fp.contains(pos), "site out of core");
        match self.row_sites(pos.row)[pos.col as usize] {
            EMPTY => SiteState::Empty,
            FILLER => SiteState::Filler,
            id => SiteState::Cell(CellId(id)),
        }
    }

    /// Origin site of a placed cell (None when unplaced or unknown).
    pub fn cell_pos(&self, cell: CellId) -> Option<SitePos> {
        self.cell_pos.get(cell.0 as usize).copied().flatten()
    }

    /// Footprint width of a placed cell in sites.
    pub fn cell_width(&self, cell: CellId) -> Option<u32> {
        let w = *self.cell_width.get(cell.0 as usize)?;
        (w > 0).then_some(w)
    }

    /// Number of sites covered by functional cells.
    pub fn occupied_sites(&self) -> u64 {
        self.occupied
    }

    /// Resident heap bytes of this map's shards and per-cell tables.
    /// Shards shared with other clones are counted once per holder (the
    /// gauge reports per-snapshot footprint, not deduplicated RSS).
    pub fn occupancy_bytes(&self) -> u64 {
        let shard_bytes: u64 = self.shards.iter().map(|s| s.heap_bytes()).sum();
        shard_bytes
            + (self.shards.capacity() * size_of::<Arc<RowShard>>()) as u64
            + (self.cell_pos.capacity() * size_of::<Option<SitePos>>()) as u64
            + (self.cell_width.capacity() * size_of::<u32>()) as u64
            + self.locked.capacity() as u64
            + (self.fillers.capacity() * size_of::<FillerInstance>()) as u64
    }

    /// Resident heap bytes of this map *not* shared with `base`: the
    /// shards whose `Arc`s diverged (copy-on-write copies this snapshot
    /// owns) plus the per-cell tables, which are never shared. This is
    /// approximately what evicting this snapshot frees while `base`
    /// stays alive — the quantity the eval cache's byte budget accounts.
    pub fn unshared_bytes(&self, base: &Occupancy) -> u64 {
        let mut bytes = 0u64;
        for (i, sh) in self.shards.iter().enumerate() {
            let shared = base.shards.get(i).is_some_and(|b| Arc::ptr_eq(sh, b));
            if !shared {
                bytes += sh.heap_bytes();
            }
        }
        bytes
            + (self.cell_pos.capacity() * size_of::<Option<SitePos>>()) as u64
            + (self.cell_width.capacity() * size_of::<u32>()) as u64
            + self.locked.capacity() as u64
            + (self.fillers.capacity() * size_of::<FillerInstance>()) as u64
    }

    /// Marks a cell as immovable (the paper's preprocessing step locks the
    /// security-critical assets so ECO operators cannot disturb them).
    pub fn lock(&mut self, cell: CellId) {
        self.ensure_cell(cell);
        self.locked[cell.0 as usize] = true;
    }

    /// Removes the lock from a cell.
    pub fn unlock(&mut self, cell: CellId) {
        if let Some(l) = self.locked.get_mut(cell.0 as usize) {
            *l = false;
        }
    }

    /// Whether the cell is locked.
    pub fn is_locked(&self, cell: CellId) -> bool {
        self.locked.get(cell.0 as usize).copied().unwrap_or(false)
    }

    /// Whether `width` sites starting at `pos` are all inside the core and
    /// empty (fillers do not count as empty here; strip them first).
    pub fn fits(&self, pos: SitePos, width: u32) -> bool {
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return false;
        }
        self.row_sites(pos.row)[pos.col as usize..(pos.col + width) as usize]
            .iter()
            .all(|&s| s == EMPTY)
    }

    /// Places a cell of `width` sites at `pos`.
    ///
    /// # Errors
    ///
    /// Fails if the run leaves the core, overlaps anything, or the cell is
    /// already placed.
    pub fn place_cell(
        &mut self,
        cell: CellId,
        width: u32,
        pos: SitePos,
    ) -> Result<(), PlaceCellError> {
        self.ensure_cell(cell);
        if self.cell_pos[cell.0 as usize].is_some() {
            return Err(PlaceCellError::AlreadyPlaced);
        }
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        if !self.fits(pos, width) {
            return Err(PlaceCellError::Occupied);
        }
        let row = self.row_sites_mut(pos.row);
        for s in &mut row[pos.col as usize..(pos.col + width) as usize] {
            *s = cell.0;
        }
        self.gap_take(pos.row, Interval::new(pos.col, pos.col + width));
        self.cell_pos[cell.0 as usize] = Some(pos);
        self.cell_width[cell.0 as usize] = width;
        self.occupied += width as u64;
        Ok(())
    }

    /// Removes a cell from the grid, returning its former origin.
    ///
    /// # Errors
    ///
    /// Fails with [`PlaceCellError::Locked`] on locked cells.
    pub fn remove_cell(&mut self, cell: CellId) -> Result<Option<SitePos>, PlaceCellError> {
        if self.is_locked(cell) {
            return Err(PlaceCellError::Locked);
        }
        let Some(pos) = self.cell_pos(cell) else {
            return Ok(None);
        };
        let width = self.cell_width[cell.0 as usize];
        let row = self.row_sites_mut(pos.row);
        for s in &mut row[pos.col as usize..(pos.col + width) as usize] {
            debug_assert_eq!(*s, cell.0);
            *s = EMPTY;
        }
        self.gap_free(pos.row, Interval::new(pos.col, pos.col + width));
        self.cell_pos[cell.0 as usize] = None;
        self.occupied -= width as u64;
        Ok(Some(pos))
    }

    /// Moves a placed cell to `new_pos` (which may overlap its old
    /// footprint).
    ///
    /// # Errors
    ///
    /// Fails if the cell is locked or unplaced, or the destination does not
    /// fit; on failure the cell stays where it was.
    pub fn move_cell(&mut self, cell: CellId, new_pos: SitePos) -> Result<(), PlaceCellError> {
        if self.is_locked(cell) {
            return Err(PlaceCellError::Locked);
        }
        let Some(old) = self.cell_pos(cell) else {
            return Err(PlaceCellError::Occupied);
        };
        let width = self.cell_width[cell.0 as usize];
        if new_pos.row >= self.fp.rows() || new_pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        // Temporarily vacate, test, then commit or roll back. The gap
        // index mirrors each grid transition so both stay in lockstep on
        // either outcome.
        let old_row = self.row_sites_mut(old.row);
        for s in &mut old_row[old.col as usize..(old.col + width) as usize] {
            *s = EMPTY;
        }
        self.gap_free(old.row, Interval::new(old.col, old.col + width));
        if self.fits(new_pos, width) {
            let new_row = self.row_sites_mut(new_pos.row);
            for s in &mut new_row[new_pos.col as usize..(new_pos.col + width) as usize] {
                *s = cell.0;
            }
            self.gap_take(new_pos.row, Interval::new(new_pos.col, new_pos.col + width));
            self.cell_pos[cell.0 as usize] = Some(new_pos);
            Ok(())
        } else {
            let old_row = self.row_sites_mut(old.row);
            for s in &mut old_row[old.col as usize..(old.col + width) as usize] {
                *s = cell.0;
            }
            self.gap_take(old.row, Interval::new(old.col, old.col + width));
            Err(PlaceCellError::Occupied)
        }
    }

    /// Adds a filler instance over empty sites.
    ///
    /// # Errors
    ///
    /// Fails if the target run is not entirely empty.
    pub fn add_filler(
        &mut self,
        pos: SitePos,
        kind: KindId,
        width: u32,
    ) -> Result<(), PlaceCellError> {
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        if !self.fits(pos, width) {
            return Err(PlaceCellError::Occupied);
        }
        let row = self.row_sites_mut(pos.row);
        for s in &mut row[pos.col as usize..(pos.col + width) as usize] {
            *s = FILLER;
        }
        self.gap_take(pos.row, Interval::new(pos.col, pos.col + width));
        self.fillers.push(FillerInstance { pos, kind, width });
        Ok(())
    }

    /// Removes every filler instance, restoring their sites to empty.
    pub fn clear_fillers(&mut self) {
        let fillers = std::mem::take(&mut self.fillers);
        for f in fillers {
            let row = self.row_sites_mut(f.pos.row);
            for s in &mut row[f.pos.col as usize..(f.pos.col + f.width) as usize] {
                debug_assert_eq!(*s, FILLER);
                *s = EMPTY;
            }
            self.gap_free(f.pos.row, Interval::new(f.pos.col, f.pos.col + f.width));
        }
    }

    /// The placed filler instances.
    pub fn fillers(&self) -> &[FillerInstance] {
        &self.fillers
    }

    /// Maximal runs of sites in `row` matching `pred`.
    fn runs_matching(&self, row: u32, pred: impl Fn(SiteState) -> bool) -> Vec<Interval> {
        let mut runs = Vec::new();
        let mut start = None;
        for col in 0..self.fp.cols() {
            let matches = pred(self.state(SitePos::new(row, col)));
            match (matches, start) {
                (true, None) => start = Some(col),
                (false, Some(s)) => {
                    runs.push(Interval::new(s, col));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push(Interval::new(s, self.fp.cols()));
        }
        runs
    }

    /// Maximal runs of strictly empty sites in `row`, from the gap
    /// index (no site scan).
    pub fn empty_runs(&self, row: u32) -> Vec<Interval> {
        self.gaps(row).to_vec()
    }

    /// The gap index of `row`: sorted maximal strictly-empty runs,
    /// borrowed without allocation. Identical content to
    /// [`empty_runs`](Self::empty_runs).
    pub fn gaps(&self, row: u32) -> &[Interval] {
        let (si, lr) = Self::shard_loc(row);
        self.shards[si].gaps(lr)
    }

    /// Brute-force [`empty_runs`](Self::empty_runs) via a site-by-site
    /// grid scan: the reference the gap index is checked against (see
    /// [`check_consistency`](Self::check_consistency) and the gap-index
    /// proptests).
    pub fn empty_runs_scan(&self, row: u32) -> Vec<Interval> {
        self.runs_matching(row, |s| s == SiteState::Empty)
    }

    /// Maximal runs of exploitable (empty-or-filler) sites in `row`.
    pub fn exploitable_runs(&self, row: u32) -> Vec<Interval> {
        let mut out = Vec::new();
        self.exploitable_runs_into(row, &mut out);
        out
    }

    /// [`exploitable_runs`](Self::exploitable_runs) into a caller-owned
    /// buffer (cleared first). Scans the raw site row directly, so hot
    /// callers that visit every row pay neither the per-site bounds
    /// check of [`state`](Self::state) nor a per-row allocation.
    pub fn exploitable_runs_into(&self, row: u32, out: &mut Vec<Interval>) {
        out.clear();
        let cols = self.fp.cols() as usize;
        let sites = self.row_sites(row);
        let mut start = None;
        for (col, &v) in sites.iter().enumerate() {
            // Exploitable per Definition 2.2: empty or filler.
            let matches = v == EMPTY || v == FILLER;
            match (matches, start) {
                (true, None) => start = Some(col as u32),
                (false, Some(s)) => {
                    out.push(Interval::new(s, col as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push(Interval::new(s, cols as u32));
        }
    }

    /// Functional-cell density inside a site-space window
    /// (`rows = row0..row1`, `cols = col0..col1`, half-open).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or leaves the core.
    pub fn density_in(&self, row0: u32, row1: u32, col0: u32, col1: u32) -> f64 {
        assert!(row0 < row1 && col0 < col1, "empty density window");
        assert!(
            row1 <= self.fp.rows() && col1 <= self.fp.cols(),
            "window out of core"
        );
        let mut used = 0u64;
        for row in row0..row1 {
            let sites = self.row_sites(row);
            for col in col0..col1 {
                let v = sites[col as usize];
                if v != EMPTY && v != FILLER {
                    used += 1;
                }
            }
        }
        used as f64 / ((row1 - row0) as u64 * (col1 - col0) as u64) as f64
    }

    /// Best placement origin for a `width`-site cell in `row` under the
    /// exact linear-scan semantics of [`find_gap_scan`](Self::find_gap_scan): runs in
    /// left-to-right order, origin clamped into each run, strict
    /// improvement on `d = max(dr, |col − target|)` with `bound` as the
    /// exclusive starting bound — so of several runs achieving the
    /// minimum, the leftmost wins. Returns `(d, col)`.
    ///
    /// The gap index lets two prunes skip work without changing the
    /// answer: a prefix of runs that end too far left to beat `bound` is
    /// skipped by binary search (their candidate distance only grows
    /// leftward), and the scan breaks once runs start far enough right
    /// of the target that no later run can win (their candidate distance
    /// only grows rightward). Every skipped run would have failed the
    /// strict-improvement test.
    fn row_candidate(
        &self,
        row: u32,
        width: u32,
        target: u32,
        dr: u32,
        bound: u32,
    ) -> Option<(u32, u32)> {
        let g: &[Interval] = self.gaps(row);
        let thresh = (u64::from(target) + u64::from(width)).saturating_sub(u64::from(bound));
        let start = g.partition_point(|iv| u64::from(iv.hi) <= thresh);
        let mut best: Option<(u32, u32)> = None;
        let mut bd = bound;
        for run in &g[start..] {
            if run.lo > target && run.lo - target >= bd {
                break;
            }
            if run.len() < width {
                continue;
            }
            let col = target.clamp(run.lo, run.hi - width);
            let d = dr.max(col.abs_diff(target));
            if d < bd {
                bd = d;
                best = Some((d, col));
            }
        }
        best
    }

    /// Nearest fitting placement origin for a `width`-site cell in
    /// `row`: the column minimizing `|col − target|` over all free runs
    /// long enough, with the leftmost run winning ties. Returns
    /// `(col, distance)`.
    pub fn nearest_gap(&self, row: u32, width: u32, target: u32) -> Option<(u32, u32)> {
        self.row_candidate(row, width, target, 0, u32::MAX)
            .map(|(d, col)| (col, d))
    }

    /// Finds the empty gap of at least `width` sites whose location is
    /// closest (Chebyshev, in sites) to `near`, searching outward up to
    /// `max_radius` rows/columns. Returns the placement origin.
    ///
    /// Index-backed: answers bit-identically to [`find_gap_scan`](Self::find_gap_scan) (the
    /// row/run iteration order and strict-improvement tie-breaks are
    /// preserved) without touching the site grid.
    pub fn find_gap(&self, width: u32, near: SitePos, max_radius: u32) -> Option<SitePos> {
        let mut best: Option<(u32, SitePos)> = None;
        let cap = max_radius.saturating_add(1);
        let row_lo = near.row.saturating_sub(max_radius);
        let row_hi = near.row.saturating_add(cap).min(self.fp.rows());
        for row in row_lo..row_hi {
            let dr = row.abs_diff(near.row);
            let bound = best.map_or(cap, |(d, _)| d.min(cap));
            if dr >= bound {
                continue;
            }
            if let Some((d, col)) = self.row_candidate(row, width, near.col, dr, bound) {
                best = Some((d, SitePos::new(row, col)));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Brute-force [`find_gap`](Self::find_gap) over grid scans: the
    /// reference implementation the index-backed query is pinned against
    /// in tests.
    #[doc(hidden)]
    pub fn find_gap_scan(&self, width: u32, near: SitePos, max_radius: u32) -> Option<SitePos> {
        let mut best: Option<(u32, SitePos)> = None;
        let row_lo = near.row.saturating_sub(max_radius);
        let row_hi = near
            .row
            .saturating_add(max_radius.saturating_add(1))
            .min(self.fp.rows());
        for row in row_lo..row_hi {
            let dr = row.abs_diff(near.row);
            if let Some((d, _)) = best {
                if dr >= d {
                    continue;
                }
            }
            for run in self.empty_runs_scan(row) {
                if run.len() < width {
                    continue;
                }
                // Best origin within the run: clamp the target column.
                let lo = run.lo;
                let hi = run.hi - width;
                let col = near.col.clamp(lo, hi);
                let d = dr.max(col.abs_diff(near.col));
                if d <= max_radius && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, SitePos::new(row, col)));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Verifies grid/table agreement and absence of overlaps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_consistency(&self, design: &Design, tech: &Technology) -> Result<(), String> {
        // The gap index must mirror the grid exactly.
        for row in 0..self.fp.rows() {
            let scanned = self.empty_runs_scan(row);
            if self.gaps(row) != scanned {
                return Err(format!(
                    "row {row} gap index {:?} disagrees with grid scan {:?}",
                    self.gaps(row),
                    scanned
                ));
            }
        }
        let mut seen = vec![0u64; self.cell_pos.len()];
        for row in 0..self.fp.rows() {
            for col in 0..self.fp.cols() {
                let pos = SitePos::new(row, col);
                if let SiteState::Cell(c) = self.state(pos) {
                    let i = c.0 as usize;
                    if i >= seen.len() {
                        return Err(format!("grid references unknown cell {}", c.0));
                    }
                    seen[i] += 1;
                }
            }
        }
        for (i, pos) in self.cell_pos.iter().enumerate() {
            let cell = CellId(i as u32);
            match pos {
                Some(p) => {
                    let w = self.cell_width[i];
                    let master_w = tech.library.kind(design.cell(cell).kind).width_sites;
                    if w != master_w {
                        return Err(format!(
                            "cell {} placed with width {w}, master says {master_w}",
                            cell.0
                        ));
                    }
                    if seen[i] != w as u64 {
                        return Err(format!(
                            "cell {} covers {} sites, expected {w}",
                            cell.0, seen[i]
                        ));
                    }
                    if self.row_sites(p.row)[p.col as usize..(p.col + w) as usize]
                        .iter()
                        .any(|&s| s != cell.0)
                    {
                        return Err(format!("cell {} footprint mismatch", cell.0));
                    }
                }
                None => {
                    if seen[i] != 0 {
                        return Err(format!("unplaced cell {} appears in grid", cell.0));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ() -> Occupancy {
        Occupancy::new(Floorplan::new(4, 20))
    }

    #[test]
    fn place_remove_round_trip() {
        let mut o = occ();
        let c = CellId(0);
        o.place_cell(c, 3, SitePos::new(1, 5)).unwrap();
        assert_eq!(o.state(SitePos::new(1, 5)), SiteState::Cell(c));
        assert_eq!(o.state(SitePos::new(1, 7)), SiteState::Cell(c));
        assert_eq!(o.state(SitePos::new(1, 8)), SiteState::Empty);
        assert_eq!(o.occupied_sites(), 3);
        assert_eq!(o.remove_cell(c).unwrap(), Some(SitePos::new(1, 5)));
        assert_eq!(o.occupied_sites(), 0);
        assert_eq!(o.state(SitePos::new(1, 5)), SiteState::Empty);
    }

    #[test]
    fn overlap_rejected() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 5)).unwrap();
        assert_eq!(
            o.place_cell(CellId(1), 3, SitePos::new(0, 7)),
            Err(PlaceCellError::Occupied)
        );
        assert_eq!(
            o.place_cell(CellId(1), 3, SitePos::new(0, 18)),
            Err(PlaceCellError::OutOfCore)
        );
    }

    #[test]
    fn move_can_overlap_self() {
        let mut o = occ();
        let c = CellId(0);
        o.place_cell(c, 4, SitePos::new(2, 4)).unwrap();
        o.move_cell(c, SitePos::new(2, 3)).unwrap();
        assert_eq!(o.cell_pos(c), Some(SitePos::new(2, 3)));
        assert_eq!(o.state(SitePos::new(2, 7)), SiteState::Empty);
        assert_eq!(o.state(SitePos::new(2, 3)), SiteState::Cell(c));
    }

    #[test]
    fn move_failure_rolls_back() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 0)).unwrap();
        o.place_cell(CellId(1), 3, SitePos::new(0, 10)).unwrap();
        let err = o.move_cell(CellId(1), SitePos::new(0, 1));
        assert_eq!(err, Err(PlaceCellError::Occupied));
        assert_eq!(o.cell_pos(CellId(1)), Some(SitePos::new(0, 10)));
        assert_eq!(o.state(SitePos::new(0, 12)), SiteState::Cell(CellId(1)));
    }

    #[test]
    fn locked_cells_are_immovable() {
        let mut o = occ();
        let c = CellId(2);
        o.place_cell(c, 2, SitePos::new(3, 3)).unwrap();
        o.lock(c);
        assert_eq!(
            o.move_cell(c, SitePos::new(3, 5)),
            Err(PlaceCellError::Locked)
        );
        assert_eq!(o.remove_cell(c), Err(PlaceCellError::Locked));
        o.unlock(c);
        assert!(o.move_cell(c, SitePos::new(3, 5)).is_ok());
    }

    #[test]
    fn runs_and_fillers() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 5)).unwrap();
        let runs = o.empty_runs(0);
        assert_eq!(runs, vec![Interval::new(0, 5), Interval::new(8, 20)]);
        let fk = KindId(0);
        o.add_filler(SitePos::new(0, 0), fk, 5).unwrap();
        assert_eq!(o.empty_runs(0), vec![Interval::new(8, 20)]);
        // Fillers still count as exploitable.
        assert_eq!(
            o.exploitable_runs(0),
            vec![Interval::new(0, 5), Interval::new(8, 20)]
        );
        o.clear_fillers();
        assert_eq!(o.empty_runs(0).len(), 2);
    }

    #[test]
    fn density_window() {
        let mut o = occ();
        o.place_cell(CellId(0), 10, SitePos::new(0, 0)).unwrap();
        assert!((o.density_in(0, 1, 0, 20) - 0.5).abs() < 1e-9);
        assert!((o.density_in(0, 4, 0, 20) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn find_gap_prefers_nearby() {
        let mut o = occ();
        // Fill row 1 almost fully, leave gaps in rows 0 and 3.
        o.place_cell(CellId(0), 20, SitePos::new(1, 0)).unwrap();
        let near = SitePos::new(1, 10);
        let gap = o.find_gap(4, near, 10).unwrap();
        assert_eq!(gap.row, 0); // row 0 is closer than row 3? both distance 1 and 2.
        assert_eq!(gap.col, 10);
        assert!(o.find_gap(50, near, 10).is_none());
    }

    #[test]
    fn consistency_checker_detects_ok_state() {
        // Full consistency needs a real design; covered in the layout-level
        // and place-crate tests. Here: empty map is trivially consistent.
        let o = occ();
        let tech = Technology::nangate45_like();
        let design = netlist::bench::generate(&netlist::bench::tiny_spec(), &tech);
        assert!(o.check_consistency(&design, &tech).is_ok());
    }

    /// Per-row index equality with the brute-force grid scan.
    fn assert_index_consistent(o: &Occupancy) {
        for row in 0..o.floorplan().rows() {
            assert_eq!(
                o.gaps(row),
                o.empty_runs_scan(row),
                "gap index diverged on row {row}"
            );
        }
    }

    #[test]
    fn gap_index_tracks_every_mutation() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(1, 5)).unwrap();
        assert_index_consistent(&o);
        o.place_cell(CellId(1), 2, SitePos::new(1, 8)).unwrap();
        assert_index_consistent(&o);
        // Removing cell 0 must NOT coalesce (cell 1 abuts on the right,
        // sites 0..5 are a separate run).
        o.remove_cell(CellId(0)).unwrap();
        assert_index_consistent(&o);
        assert_eq!(
            o.empty_runs(1),
            vec![Interval::new(0, 8), Interval::new(10, 20)]
        );
        // Removing cell 1 bridges both runs into one (double coalesce).
        o.remove_cell(CellId(1)).unwrap();
        assert_index_consistent(&o);
        assert_eq!(o.empty_runs(1), vec![Interval::new(0, 20)]);
        // Failed move rolls the index back too.
        o.place_cell(CellId(2), 4, SitePos::new(2, 0)).unwrap();
        o.place_cell(CellId(3), 4, SitePos::new(2, 10)).unwrap();
        assert!(o.move_cell(CellId(2), SitePos::new(2, 8)).is_err());
        assert_index_consistent(&o);
        o.move_cell(CellId(2), SitePos::new(2, 4)).unwrap();
        assert_index_consistent(&o);
        // Fillers occupy; clearing them frees.
        o.add_filler(SitePos::new(0, 3), KindId(0), 5).unwrap();
        assert_index_consistent(&o);
        o.clear_fillers();
        assert_index_consistent(&o);
    }

    #[test]
    fn nearest_gap_prefers_closest_then_leftmost() {
        let mut o = occ();
        // Runs: [0,4) [7,12) [15,20) on row 0.
        o.place_cell(CellId(0), 3, SitePos::new(0, 4)).unwrap();
        o.place_cell(CellId(1), 3, SitePos::new(0, 12)).unwrap();
        // Width 2, target 8: containing run wins with distance 0.
        assert_eq!(o.nearest_gap(0, 2, 8), Some((8, 0)));
        // Width 5 fits only [7,12) and [15,20); target 0 → left run.
        assert_eq!(o.nearest_gap(0, 5, 0), Some((7, 7)));
        // Width 2, target 13: left candidate col 10 (d 3) loses to
        // right candidate col 15 (d 2).
        assert_eq!(o.nearest_gap(0, 2, 13), Some((15, 2)));
        // Width 4, target 12: middle run clamps to col 8 (d 4), right
        // run to col 15 (d 3) → right wins.
        assert_eq!(o.nearest_gap(0, 4, 12), Some((15, 3)));
        // No run fits width 6.
        assert_eq!(o.nearest_gap(0, 6, 10), None);
    }

    #[test]
    fn nearest_gap_tie_is_leftmost() {
        // Runs [0,4) and [6,20): width 4 gives left candidate col 0 and
        // right candidate col 6; from target 3 both are distance 3, and
        // the leftmost run must win (matching the linear-scan order).
        let mut o = occ();
        o.place_cell(CellId(0), 2, SitePos::new(0, 4)).unwrap();
        assert_eq!(o.nearest_gap(0, 4, 3), Some((0, 3)));
    }

    #[test]
    fn find_gap_matches_scan_reference() {
        let mut o = Occupancy::new(Floorplan::new(6, 30));
        // Deterministic scatter of cells.
        let mut id = 0u32;
        for row in 0..6u32 {
            for k in 0..5u32 {
                let col = (row * 7 + k * 6) % 27;
                let w = 1 + (row + k) % 3;
                if o.fits(SitePos::new(row, col), w) {
                    o.place_cell(CellId(id), w, SitePos::new(row, col)).unwrap();
                    id += 1;
                }
            }
        }
        assert_index_consistent(&o);
        for width in 1..6u32 {
            for r in 0..6u32 {
                for c in (0..30u32).step_by(3) {
                    for radius in [0u32, 2, 5, 40] {
                        let near = SitePos::new(r, c);
                        assert_eq!(
                            o.find_gap(width, near, radius),
                            o.find_gap_scan(width, near, radius),
                            "w={width} near=({r},{c}) radius={radius}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clone_shares_shards_until_mutation() {
        // 20 rows / 8-row shards → 3 shards (rows 0..8, 8..16, 16..20).
        let mut a = Occupancy::new(Floorplan::new(20, 20));
        a.place_cell(CellId(0), 3, SitePos::new(1, 5)).unwrap();
        let mut b = a.clone();
        for si in 0..3usize {
            assert!(
                Arc::ptr_eq(&a.shards[si], &b.shards[si]),
                "shard {si} not shared"
            );
        }
        // Mutating row 10 (shard 1) must unshare only that shard.
        b.place_cell(CellId(1), 2, SitePos::new(10, 0)).unwrap();
        assert!(
            Arc::ptr_eq(&a.shards[0], &b.shards[0]),
            "untouched shard un-shared"
        );
        assert!(
            Arc::ptr_eq(&a.shards[2], &b.shards[2]),
            "untouched shard un-shared"
        );
        assert!(
            !Arc::ptr_eq(&a.shards[1], &b.shards[1]),
            "mutated shard still shared"
        );
        // The original is untouched by b's mutation.
        assert_eq!(a.state(SitePos::new(10, 0)), SiteState::Empty);
        assert_eq!(b.state(SitePos::new(10, 0)), SiteState::Cell(CellId(1)));
        assert_index_consistent(&a);
        assert_index_consistent(&b);
    }

    #[test]
    fn occupancy_bytes_is_positive_and_bounded_across_clone() {
        let mut o = Occupancy::new(Floorplan::new(20, 20));
        o.place_cell(CellId(0), 3, SitePos::new(1, 5)).unwrap();
        let bytes = o.occupancy_bytes();
        assert!(bytes > 0);
        // A clone's footprint is no larger (Vec::clone trims spare
        // capacity; shards are shared but counted per holder).
        let c = o.clone();
        assert!(c.occupancy_bytes() <= bytes);
        assert!(c.occupancy_bytes() > 0);
    }
}

#[cfg(test)]
mod gap_index_proptests {
    use super::*;
    use proptest::prelude::*;

    const ROWS: u32 = 5;
    const COLS: u32 = 32;

    /// One raw op tuple: `(kind, cell, width, row, col)`, decoded in the
    /// body (the vendored proptest shim has no `prop_oneof`/`prop_map`).
    type RawOp = (u8, u32, u32, u32, u32);

    fn apply(o: &mut Occupancy, op: RawOp) {
        let (kind, cell, width, row, col) = op;
        match kind % 5 {
            0 | 1 => {
                let _ = o.place_cell(CellId(cell), width, SitePos::new(row, col));
            }
            2 => {
                let _ = o.remove_cell(CellId(cell));
            }
            3 => {
                let _ = o.move_cell(CellId(cell), SitePos::new(row, col));
            }
            _ => {
                if cell % 7 == 0 {
                    o.clear_fillers();
                } else {
                    let _ = o.add_filler(SitePos::new(row, col), KindId(0), width);
                }
            }
        }
    }

    proptest! {
        /// Under arbitrary place/evict/move/filler sequences (including
        /// rejected operations), every row's gap index stays equal to the
        /// brute-force free-site scan, and the index-backed queries agree
        /// with their scan references.
        #[test]
        fn index_stays_consistent_with_scan(
            ops in proptest::collection::vec((0u8..5, 0u32..24, 1u32..5, 0u32..ROWS, 0u32..COLS), 1..60)
        ) {
            let mut o = Occupancy::new(Floorplan::new(ROWS, COLS));
            for &op in &ops {
                apply(&mut o, op);
                for row in 0..ROWS {
                    prop_assert_eq!(
                        o.empty_runs(row),
                        o.empty_runs_scan(row),
                        "row {} diverged after {:?}",
                        row,
                        op
                    );
                }
            }
            // Query equivalence on the final state.
            for width in 1..5u32 {
                for row in 0..ROWS {
                    for target in (0..COLS).step_by(5) {
                        // nearest_gap against a direct linear scan with the
                        // same clamp-and-strict-improvement rule.
                        let mut want: Option<(u32, u32)> = None;
                        for run in o.empty_runs_scan(row) {
                            if run.len() < width {
                                continue;
                            }
                            let col = target.clamp(run.lo, run.hi - width);
                            let d = col.abs_diff(target);
                            if want.is_none_or(|(_, bd)| d < bd) {
                                want = Some((col, d));
                            }
                        }
                        prop_assert_eq!(o.nearest_gap(row, width, target), want);
                        for radius in [1u32, 4, 64] {
                            let near = SitePos::new(row, target);
                            prop_assert_eq!(
                                o.find_gap(width, near, radius),
                                o.find_gap_scan(width, near, radius)
                            );
                        }
                    }
                }
            }
        }
    }

    proptest! {
        /// Sharded occupancy == dense reference: replay a random op
        /// sequence against both this Occupancy and a flat shadow site
        /// grid with no sharing and no index, then require identical
        /// per-site state everywhere. Clone/drop interleavings exercise
        /// the COW shard paths mid-sequence.
        #[test]
        fn sharded_sites_match_dense_reference(
            ops in proptest::collection::vec((0u8..5, 0u32..24, 1u32..5, 0u32..ROWS, 0u32..COLS), 1..80)
        ) {
            let mut o = Occupancy::new(Floorplan::new(ROWS, COLS));
            let mut snapshots: Vec<Occupancy> = Vec::new();
            for (step, &op) in ops.iter().enumerate() {
                apply(&mut o, op);
                // Periodic clones force shard sharing; later mutations
                // must copy-on-write without disturbing the snapshot.
                if step % 7 == 0 {
                    snapshots.push(o.clone());
                    if snapshots.len() > 3 {
                        snapshots.remove(0);
                    }
                }
            }
            // Dense reference: replay the same ops on a fresh map and
            // compare site-by-site via the public state() API (the
            // reference map is bitwise independent — different shard
            // sharing history, same observable state).
            let mut r = Occupancy::new(Floorplan::new(ROWS, COLS));
            for &op in &ops {
                apply(&mut r, op);
            }
            for row in 0..ROWS {
                for col in 0..COLS {
                    let pos = SitePos::new(row, col);
                    prop_assert_eq!(o.state(pos), r.state(pos), "site ({}, {})", row, col);
                }
                prop_assert_eq!(o.empty_runs(row), r.empty_runs_scan(row));
            }
            prop_assert_eq!(o.occupied_sites(), r.occupied_sites());
        }
    }
}
