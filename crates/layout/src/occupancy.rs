use geom::{Interval, SitePos};
use netlist::{CellId, Design};
use tech::{KindId, Technology};

use crate::filler::FillerInstance;
use crate::floorplan::Floorplan;

const EMPTY: u32 = u32::MAX;
const FILLER: u32 = u32::MAX - 1;

/// What occupies a single placement site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// No cell here.
    Empty,
    /// Part of the footprint of a functional cell.
    Cell(CellId),
    /// Part of a non-functional filler cell.
    Filler,
}

impl SiteState {
    /// Whether the site counts as *free for Trojan insertion* under
    /// Definition 2.2 (empty, or occupied by a non-functional filler).
    pub fn is_exploitable(self) -> bool {
        matches!(self, SiteState::Empty | SiteState::Filler)
    }
}

/// Errors from [`Occupancy::place_cell`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceCellError {
    /// The requested run leaves the core area.
    OutOfCore,
    /// Some site in the requested run is already occupied.
    Occupied,
    /// The cell is already placed (remove it first).
    AlreadyPlaced,
    /// The cell is locked against modification.
    Locked,
}

impl core::fmt::Display for PlaceCellError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::OutOfCore => "placement leaves the core area",
            Self::Occupied => "target sites are occupied",
            Self::AlreadyPlaced => "cell is already placed",
            Self::Locked => "cell is locked",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PlaceCellError {}

/// Row/site occupancy map plus per-cell placement records.
///
/// The grid is the ground truth for free-site queries (exploitable-region
/// extraction, cell shift); the per-cell table is the ground truth for
/// wirelength and timing queries. [`check_consistency`](Self::check_consistency)
/// verifies they agree.
#[derive(Debug, Clone)]
pub struct Occupancy {
    fp: Floorplan,
    grid: Vec<u32>,
    cell_pos: Vec<Option<SitePos>>,
    cell_width: Vec<u32>,
    locked: Vec<bool>,
    fillers: Vec<FillerInstance>,
    occupied: u64,
}

impl Occupancy {
    /// Creates an empty occupancy map for the floorplan.
    pub fn new(fp: Floorplan) -> Self {
        Self {
            fp,
            grid: vec![EMPTY; fp.num_sites() as usize],
            cell_pos: Vec::new(),
            cell_width: Vec::new(),
            locked: Vec::new(),
            fillers: Vec::new(),
            occupied: 0,
        }
    }

    fn idx(&self, pos: SitePos) -> usize {
        pos.row as usize * self.fp.cols() as usize + pos.col as usize
    }

    fn ensure_cell(&mut self, cell: CellId) {
        let need = cell.0 as usize + 1;
        if self.cell_pos.len() < need {
            self.cell_pos.resize(need, None);
            self.cell_width.resize(need, 0);
            self.locked.resize(need, false);
        }
    }

    /// The floorplan this map covers.
    pub fn floorplan(&self) -> &Floorplan {
        &self.fp
    }

    /// State of one site.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies outside the core.
    pub fn state(&self, pos: SitePos) -> SiteState {
        assert!(self.fp.contains(pos), "site out of core");
        match self.grid[self.idx(pos)] {
            EMPTY => SiteState::Empty,
            FILLER => SiteState::Filler,
            id => SiteState::Cell(CellId(id)),
        }
    }

    /// Origin site of a placed cell (None when unplaced or unknown).
    pub fn cell_pos(&self, cell: CellId) -> Option<SitePos> {
        self.cell_pos.get(cell.0 as usize).copied().flatten()
    }

    /// Footprint width of a placed cell in sites.
    pub fn cell_width(&self, cell: CellId) -> Option<u32> {
        let w = *self.cell_width.get(cell.0 as usize)?;
        (w > 0).then_some(w)
    }

    /// Number of sites covered by functional cells.
    pub fn occupied_sites(&self) -> u64 {
        self.occupied
    }

    /// Marks a cell as immovable (the paper's preprocessing step locks the
    /// security-critical assets so ECO operators cannot disturb them).
    pub fn lock(&mut self, cell: CellId) {
        self.ensure_cell(cell);
        self.locked[cell.0 as usize] = true;
    }

    /// Removes the lock from a cell.
    pub fn unlock(&mut self, cell: CellId) {
        if let Some(l) = self.locked.get_mut(cell.0 as usize) {
            *l = false;
        }
    }

    /// Whether the cell is locked.
    pub fn is_locked(&self, cell: CellId) -> bool {
        self.locked.get(cell.0 as usize).copied().unwrap_or(false)
    }

    /// Whether `width` sites starting at `pos` are all inside the core and
    /// empty (fillers do not count as empty here; strip them first).
    pub fn fits(&self, pos: SitePos, width: u32) -> bool {
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return false;
        }
        let base = self.idx(pos);
        self.grid[base..base + width as usize]
            .iter()
            .all(|&s| s == EMPTY)
    }

    /// Places a cell of `width` sites at `pos`.
    ///
    /// # Errors
    ///
    /// Fails if the run leaves the core, overlaps anything, or the cell is
    /// already placed.
    pub fn place_cell(
        &mut self,
        cell: CellId,
        width: u32,
        pos: SitePos,
    ) -> Result<(), PlaceCellError> {
        self.ensure_cell(cell);
        if self.cell_pos[cell.0 as usize].is_some() {
            return Err(PlaceCellError::AlreadyPlaced);
        }
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        if !self.fits(pos, width) {
            return Err(PlaceCellError::Occupied);
        }
        let base = self.idx(pos);
        for s in &mut self.grid[base..base + width as usize] {
            *s = cell.0;
        }
        self.cell_pos[cell.0 as usize] = Some(pos);
        self.cell_width[cell.0 as usize] = width;
        self.occupied += width as u64;
        Ok(())
    }

    /// Removes a cell from the grid, returning its former origin.
    ///
    /// # Errors
    ///
    /// Fails with [`PlaceCellError::Locked`] on locked cells.
    pub fn remove_cell(&mut self, cell: CellId) -> Result<Option<SitePos>, PlaceCellError> {
        if self.is_locked(cell) {
            return Err(PlaceCellError::Locked);
        }
        let Some(pos) = self.cell_pos(cell) else {
            return Ok(None);
        };
        let width = self.cell_width[cell.0 as usize];
        let base = self.idx(pos);
        for s in &mut self.grid[base..base + width as usize] {
            debug_assert_eq!(*s, cell.0);
            *s = EMPTY;
        }
        self.cell_pos[cell.0 as usize] = None;
        self.occupied -= width as u64;
        Ok(Some(pos))
    }

    /// Moves a placed cell to `new_pos` (which may overlap its old
    /// footprint).
    ///
    /// # Errors
    ///
    /// Fails if the cell is locked or unplaced, or the destination does not
    /// fit; on failure the cell stays where it was.
    pub fn move_cell(&mut self, cell: CellId, new_pos: SitePos) -> Result<(), PlaceCellError> {
        if self.is_locked(cell) {
            return Err(PlaceCellError::Locked);
        }
        let Some(old) = self.cell_pos(cell) else {
            return Err(PlaceCellError::Occupied);
        };
        let width = self.cell_width[cell.0 as usize];
        if new_pos.row >= self.fp.rows() || new_pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        // Temporarily vacate, test, then commit or roll back.
        let base_old = self.idx(old);
        for s in &mut self.grid[base_old..base_old + width as usize] {
            *s = EMPTY;
        }
        if self.fits(new_pos, width) {
            let base_new = self.idx(new_pos);
            for s in &mut self.grid[base_new..base_new + width as usize] {
                *s = cell.0;
            }
            self.cell_pos[cell.0 as usize] = Some(new_pos);
            Ok(())
        } else {
            for s in &mut self.grid[base_old..base_old + width as usize] {
                *s = cell.0;
            }
            Err(PlaceCellError::Occupied)
        }
    }

    /// Adds a filler instance over empty sites.
    ///
    /// # Errors
    ///
    /// Fails if the target run is not entirely empty.
    pub fn add_filler(
        &mut self,
        pos: SitePos,
        kind: KindId,
        width: u32,
    ) -> Result<(), PlaceCellError> {
        if pos.row >= self.fp.rows() || pos.col + width > self.fp.cols() {
            return Err(PlaceCellError::OutOfCore);
        }
        if !self.fits(pos, width) {
            return Err(PlaceCellError::Occupied);
        }
        let base = self.idx(pos);
        for s in &mut self.grid[base..base + width as usize] {
            *s = FILLER;
        }
        self.fillers.push(FillerInstance { pos, kind, width });
        Ok(())
    }

    /// Removes every filler instance, restoring their sites to empty.
    pub fn clear_fillers(&mut self) {
        let fillers = std::mem::take(&mut self.fillers);
        for f in fillers {
            let base = self.idx(f.pos);
            for s in &mut self.grid[base..base + f.width as usize] {
                debug_assert_eq!(*s, FILLER);
                *s = EMPTY;
            }
        }
    }

    /// The placed filler instances.
    pub fn fillers(&self) -> &[FillerInstance] {
        &self.fillers
    }

    /// Maximal runs of sites in `row` matching `pred`.
    fn runs_matching(&self, row: u32, pred: impl Fn(SiteState) -> bool) -> Vec<Interval> {
        let mut runs = Vec::new();
        let mut start = None;
        for col in 0..self.fp.cols() {
            let matches = pred(self.state(SitePos::new(row, col)));
            match (matches, start) {
                (true, None) => start = Some(col),
                (false, Some(s)) => {
                    runs.push(Interval::new(s, col));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push(Interval::new(s, self.fp.cols()));
        }
        runs
    }

    /// Maximal runs of strictly empty sites in `row`.
    pub fn empty_runs(&self, row: u32) -> Vec<Interval> {
        self.runs_matching(row, |s| s == SiteState::Empty)
    }

    /// Maximal runs of exploitable (empty-or-filler) sites in `row`.
    pub fn exploitable_runs(&self, row: u32) -> Vec<Interval> {
        self.runs_matching(row, SiteState::is_exploitable)
    }

    /// Functional-cell density inside a site-space window
    /// (`rows = row0..row1`, `cols = col0..col1`, half-open).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or leaves the core.
    pub fn density_in(&self, row0: u32, row1: u32, col0: u32, col1: u32) -> f64 {
        assert!(row0 < row1 && col0 < col1, "empty density window");
        assert!(
            row1 <= self.fp.rows() && col1 <= self.fp.cols(),
            "window out of core"
        );
        let mut used = 0u64;
        for row in row0..row1 {
            let base = row as usize * self.fp.cols() as usize;
            for col in col0..col1 {
                let v = self.grid[base + col as usize];
                if v != EMPTY && v != FILLER {
                    used += 1;
                }
            }
        }
        used as f64 / ((row1 - row0) as u64 * (col1 - col0) as u64) as f64
    }

    /// Finds the empty gap of at least `width` sites whose location is
    /// closest (Chebyshev, in sites) to `near`, searching outward up to
    /// `max_radius` rows/columns. Returns the placement origin.
    pub fn find_gap(&self, width: u32, near: SitePos, max_radius: u32) -> Option<SitePos> {
        let mut best: Option<(u32, SitePos)> = None;
        let row_lo = near.row.saturating_sub(max_radius);
        let row_hi = (near.row + max_radius + 1).min(self.fp.rows());
        for row in row_lo..row_hi {
            let dr = row.abs_diff(near.row);
            if let Some((d, _)) = best {
                if dr >= d {
                    continue;
                }
            }
            for run in self.empty_runs(row) {
                if run.len() < width {
                    continue;
                }
                // Best origin within the run: clamp the target column.
                let lo = run.lo;
                let hi = run.hi - width;
                let col = near.col.clamp(lo, hi);
                let d = dr.max(col.abs_diff(near.col));
                if d <= max_radius && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, SitePos::new(row, col)));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Verifies grid/table agreement and absence of overlaps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_consistency(&self, design: &Design, tech: &Technology) -> Result<(), String> {
        let mut seen = vec![0u64; self.cell_pos.len()];
        for row in 0..self.fp.rows() {
            for col in 0..self.fp.cols() {
                let pos = SitePos::new(row, col);
                if let SiteState::Cell(c) = self.state(pos) {
                    let i = c.0 as usize;
                    if i >= seen.len() {
                        return Err(format!("grid references unknown cell {}", c.0));
                    }
                    seen[i] += 1;
                }
            }
        }
        for (i, pos) in self.cell_pos.iter().enumerate() {
            let cell = CellId(i as u32);
            match pos {
                Some(p) => {
                    let w = self.cell_width[i];
                    let master_w = tech.library.kind(design.cell(cell).kind).width_sites;
                    if w != master_w {
                        return Err(format!(
                            "cell {} placed with width {w}, master says {master_w}",
                            cell.0
                        ));
                    }
                    if seen[i] != w as u64 {
                        return Err(format!(
                            "cell {} covers {} sites, expected {w}",
                            cell.0, seen[i]
                        ));
                    }
                    let base = self.idx(*p);
                    if self.grid[base..base + w as usize]
                        .iter()
                        .any(|&s| s != cell.0)
                    {
                        return Err(format!("cell {} footprint mismatch", cell.0));
                    }
                }
                None => {
                    if seen[i] != 0 {
                        return Err(format!("unplaced cell {} appears in grid", cell.0));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ() -> Occupancy {
        Occupancy::new(Floorplan::new(4, 20))
    }

    #[test]
    fn place_remove_round_trip() {
        let mut o = occ();
        let c = CellId(0);
        o.place_cell(c, 3, SitePos::new(1, 5)).unwrap();
        assert_eq!(o.state(SitePos::new(1, 5)), SiteState::Cell(c));
        assert_eq!(o.state(SitePos::new(1, 7)), SiteState::Cell(c));
        assert_eq!(o.state(SitePos::new(1, 8)), SiteState::Empty);
        assert_eq!(o.occupied_sites(), 3);
        assert_eq!(o.remove_cell(c).unwrap(), Some(SitePos::new(1, 5)));
        assert_eq!(o.occupied_sites(), 0);
        assert_eq!(o.state(SitePos::new(1, 5)), SiteState::Empty);
    }

    #[test]
    fn overlap_rejected() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 5)).unwrap();
        assert_eq!(
            o.place_cell(CellId(1), 3, SitePos::new(0, 7)),
            Err(PlaceCellError::Occupied)
        );
        assert_eq!(
            o.place_cell(CellId(1), 3, SitePos::new(0, 18)),
            Err(PlaceCellError::OutOfCore)
        );
    }

    #[test]
    fn move_can_overlap_self() {
        let mut o = occ();
        let c = CellId(0);
        o.place_cell(c, 4, SitePos::new(2, 4)).unwrap();
        o.move_cell(c, SitePos::new(2, 3)).unwrap();
        assert_eq!(o.cell_pos(c), Some(SitePos::new(2, 3)));
        assert_eq!(o.state(SitePos::new(2, 7)), SiteState::Empty);
        assert_eq!(o.state(SitePos::new(2, 3)), SiteState::Cell(c));
    }

    #[test]
    fn move_failure_rolls_back() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 0)).unwrap();
        o.place_cell(CellId(1), 3, SitePos::new(0, 10)).unwrap();
        let err = o.move_cell(CellId(1), SitePos::new(0, 1));
        assert_eq!(err, Err(PlaceCellError::Occupied));
        assert_eq!(o.cell_pos(CellId(1)), Some(SitePos::new(0, 10)));
        assert_eq!(o.state(SitePos::new(0, 12)), SiteState::Cell(CellId(1)));
    }

    #[test]
    fn locked_cells_are_immovable() {
        let mut o = occ();
        let c = CellId(2);
        o.place_cell(c, 2, SitePos::new(3, 3)).unwrap();
        o.lock(c);
        assert_eq!(
            o.move_cell(c, SitePos::new(3, 5)),
            Err(PlaceCellError::Locked)
        );
        assert_eq!(o.remove_cell(c), Err(PlaceCellError::Locked));
        o.unlock(c);
        assert!(o.move_cell(c, SitePos::new(3, 5)).is_ok());
    }

    #[test]
    fn runs_and_fillers() {
        let mut o = occ();
        o.place_cell(CellId(0), 3, SitePos::new(0, 5)).unwrap();
        let runs = o.empty_runs(0);
        assert_eq!(runs, vec![Interval::new(0, 5), Interval::new(8, 20)]);
        let fk = KindId(0);
        o.add_filler(SitePos::new(0, 0), fk, 5).unwrap();
        assert_eq!(o.empty_runs(0), vec![Interval::new(8, 20)]);
        // Fillers still count as exploitable.
        assert_eq!(
            o.exploitable_runs(0),
            vec![Interval::new(0, 5), Interval::new(8, 20)]
        );
        o.clear_fillers();
        assert_eq!(o.empty_runs(0).len(), 2);
    }

    #[test]
    fn density_window() {
        let mut o = occ();
        o.place_cell(CellId(0), 10, SitePos::new(0, 0)).unwrap();
        assert!((o.density_in(0, 1, 0, 20) - 0.5).abs() < 1e-9);
        assert!((o.density_in(0, 4, 0, 20) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn find_gap_prefers_nearby() {
        let mut o = occ();
        // Fill row 1 almost fully, leave gaps in rows 0 and 3.
        o.place_cell(CellId(0), 20, SitePos::new(1, 0)).unwrap();
        let near = SitePos::new(1, 10);
        let gap = o.find_gap(4, near, 10).unwrap();
        assert_eq!(gap.row, 0); // row 0 is closer than row 3? both distance 1 and 2.
        assert_eq!(gap.col, 10);
        assert!(o.find_gap(50, near, 10).is_none());
    }

    #[test]
    fn consistency_checker_detects_ok_state() {
        // Full consistency needs a real design; covered in the layout-level
        // and place-crate tests. Here: empty map is trivially consistent.
        let o = occ();
        let tech = Technology::nangate45_like();
        let design = netlist::bench::generate(&netlist::bench::tiny_spec(), &tech);
        assert!(o.check_consistency(&design, &tech).is_ok());
    }
}
