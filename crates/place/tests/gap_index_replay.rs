//! Replay pin: the gap-index legalizer must be a pure data-structure
//! swap. On fixed-seed schedules, [`place::eco_place`] (index-backed
//! queries) and [`place::eco_place_reference`] (the pre-index
//! brute-force grid scans) must produce bit-identical [`EcoPlaceStats`]
//! and bit-identical layouts — every cell at the same site.

use layout::{Blockage, Layout};
use place::EcoPlaceStats;
use tech::Technology;

fn placed(seed: u64) -> (Technology, Layout) {
    let tech = Technology::nangate45_like();
    let design = netlist::bench::generate(&netlist::bench::tiny_spec(), &tech);
    let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
    place::global_place(&mut layout, &tech, seed);
    place::refine_wirelength(&mut layout, &tech, 2, seed);
    (tech, layout)
}

/// Runs both legalizers on clones of the same layout + blockage schedule
/// and asserts stats and per-cell positions match bit for bit.
fn assert_replay_identical(tech: &Technology, layout: &Layout, blockages: Vec<Blockage>) {
    let mut with_index = layout.clone();
    with_index.set_blockages(blockages.clone());
    let stats_index: EcoPlaceStats = place::eco_place(&mut with_index, tech, 7);

    let mut with_scan = layout.clone();
    with_scan.set_blockages(blockages);
    let stats_scan: EcoPlaceStats = place::eco_place_reference(&mut with_scan, tech, 7);

    assert_eq!(stats_index, stats_scan, "stats diverged");
    for (id, _) in layout.design().cells_iter() {
        assert_eq!(
            with_index.cell_pos(id),
            with_scan.cell_pos(id),
            "cell {} placed differently by index vs scan path",
            id.0
        );
    }
    with_index.check_consistency(tech).unwrap();
}

#[test]
fn quadrant_cap_replays_bit_identical() {
    let (tech, layout) = placed(11);
    let fp = *layout.floorplan();
    let schedule = vec![Blockage::new(0, fp.rows() / 2, 0, fp.cols() / 2, 0.10)];
    assert_replay_identical(&tech, &layout, schedule);
}

/// Near-zero budget over half the core forces heavy eviction, exercising
/// the compaction and find_gap fallbacks on both paths.
#[test]
fn dense_eviction_replays_bit_identical() {
    let (tech, layout) = placed(23);
    let fp = *layout.floorplan();
    let schedule = vec![Blockage::new(0, fp.rows(), 0, fp.cols() / 2, 0.02)];
    assert_replay_identical(&tech, &layout, schedule);
}

/// An LDA-like tiling: many small windows with mixed budgets.
#[test]
fn tiled_schedule_replays_bit_identical() {
    let (tech, layout) = placed(42);
    let fp = *layout.floorplan();
    let (rows, cols) = (fp.rows(), fp.cols());
    let mut schedule = Vec::new();
    let n = 4u32;
    for i in 0..n {
        for j in 0..n {
            let r0 = rows * i / n;
            let r1 = rows * (i + 1) / n;
            let c0 = cols * j / n;
            let c1 = cols * (j + 1) / n;
            // Deterministic mixed budgets, some tight, some loose.
            let dens = match (i + 2 * j) % 4 {
                0 => 0.08,
                1 => 0.35,
                2 => 0.60,
                _ => 0.90,
            };
            schedule.push(Blockage::new(r0, r1, c0, c1, dens));
        }
    }
    assert_replay_identical(&tech, &layout, schedule);
}

/// Back-to-back runs (LDA iterates eco_place): the second run starts from
/// the first run's layout, compounding any divergence — there must be none.
#[test]
fn iterated_runs_replay_bit_identical() {
    let (tech, layout) = placed(5);
    let fp = *layout.floorplan();
    let first = vec![Blockage::new(0, fp.rows() / 2, 0, fp.cols(), 0.15)];
    let second = vec![Blockage::new(
        fp.rows() / 4,
        fp.rows(),
        fp.cols() / 4,
        fp.cols(),
        0.20,
    )];

    let mut with_index = layout.clone();
    let mut with_scan = layout.clone();
    for schedule in [first, second] {
        with_index.set_blockages(schedule.clone());
        let si = place::eco_place(&mut with_index, &tech, 3);
        with_scan.set_blockages(schedule);
        let ss = place::eco_place_reference(&mut with_scan, &tech, 3);
        assert_eq!(si, ss);
    }
    for (id, _) in layout.design().cells_iter() {
        assert_eq!(with_index.cell_pos(id), with_scan.cell_pos(id));
    }
}
