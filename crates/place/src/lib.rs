//! Placement engines: an initial global placer, a wirelength-driven
//! refinement pass, and the blockage-aware incremental *ECO placer* that the
//! GDSII-Guard LDA operator drives.
//!
//! The paper uses Cadence Innovus for these steps; this crate provides the
//! same contract (see `DESIGN.md` §1): legalized row/site placement, a
//! wirelength objective, partial placement blockages as density upper
//! bounds, and incremental operation that leaves untouched cells in place.
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! place::refine_wirelength(&mut layout, &tech, 2, 1);
//! assert!(layout.check_consistency(&tech).is_ok());
//! ```

mod eco;
mod global;
mod wirelength;

#[doc(hidden)]
pub use eco::eco_place_reference;
pub use eco::{eco_place, EcoPlaceStats};
pub use global::{bank_cells, global_place};
pub use wirelength::{hpwl_total, hpwl_um, net_bbox, refine_wirelength};
