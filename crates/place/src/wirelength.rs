use geom::{Point, Rect};
use layout::Layout;
use netlist::{CellId, NetDriver, NetId, Sink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tech::Technology;

/// Bounding box of a net over the centers of its placed cells, or `None`
/// when the net touches fewer than two placed cells (IO-only or dangling
/// nets have no internal wirelength).
pub fn net_bbox(layout: &Layout, tech: &Technology, net: NetId) -> Option<Rect> {
    let design = layout.design();
    let n = design.net(net);
    let mut points: Vec<Point> = Vec::new();
    if let NetDriver::Cell(c) = n.driver {
        points.push(layout.cell_center(c, tech));
    }
    for s in &n.sinks {
        match s {
            Sink::CellInput { cell, .. } | Sink::CellClock(cell) => {
                points.push(layout.cell_center(*cell, tech));
            }
            Sink::PrimaryOutput(_) => {}
        }
    }
    if points.len() < 2 {
        return None;
    }
    let mut lo = points[0];
    let mut hi = points[0];
    for p in &points[1..] {
        lo = lo.min(*p);
        hi = hi.max(*p);
    }
    Some(Rect::new(lo, hi))
}

/// Half-perimeter wirelength of one net in µm (zero for IO-only nets).
pub fn hpwl_um(layout: &Layout, tech: &Technology, net: NetId) -> f64 {
    net_bbox(layout, tech, net)
        .map(|b| geom::dbu_to_um(b.width() + b.height()))
        .unwrap_or(0.0)
}

/// Total half-perimeter wirelength in µm, excluding the clock net (the
/// clock is distributed by a dedicated tree outside the signal router).
pub fn hpwl_total(layout: &Layout, tech: &Technology) -> f64 {
    let clock = layout.design().clock;
    layout
        .design()
        .nets_iter()
        .filter(|(id, _)| Some(*id) != clock)
        .map(|(id, _)| hpwl_um(layout, tech, id))
        .sum()
}

/// Nets incident to a cell, excluding the clock.
fn incident_nets(layout: &Layout, cell: CellId) -> Vec<NetId> {
    let design = layout.design();
    let c = design.cell(cell);
    let clock = design.clock;
    let mut nets: Vec<NetId> = c
        .inputs
        .iter()
        .copied()
        .chain(c.output)
        .filter(|n| Some(*n) != clock)
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets
}

/// Greedy wirelength-driven detail refinement: each cell is repeatedly
/// offered a move toward the median of its connected neighbors, accepted
/// only when the incident-net HPWL strictly decreases. Locked cells never
/// move. Returns the number of accepted moves.
///
/// This mirrors the wirelength/timing-driven nature of Innovus ECO
/// placement that the paper relies on ("the low-density regions will be
/// pushed away from security-critical cells with minimized impact on
/// circuit performance").
pub fn refine_wirelength(
    layout: &mut Layout,
    tech: &Technology,
    iterations: usize,
    seed: u64,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0EF1_4E00);
    let design = layout.design().clone();
    let clock = design.clock;
    let mut order: Vec<CellId> = design.cells_iter().map(|(id, _)| id).collect();
    let mut accepted = 0;

    for _ in 0..iterations {
        order.shuffle(&mut rng);
        for &cell in &order {
            if layout.occupancy().is_locked(cell) || layout.cell_pos(cell).is_none() {
                continue;
            }
            let neigh = crate::global::neighbors(&design, cell, clock);
            if neigh.is_empty() {
                continue;
            }
            // Median of neighbor centers is the 1-norm optimal location.
            let mut xs: Vec<i64> = Vec::with_capacity(neigh.len());
            let mut ys: Vec<i64> = Vec::with_capacity(neigh.len());
            for &n in &neigh {
                if layout.cell_pos(n).is_some() {
                    let p = layout.cell_center(n, tech);
                    xs.push(p.x);
                    ys.push(p.y);
                }
            }
            if xs.is_empty() {
                continue;
            }
            xs.sort_unstable();
            ys.sort_unstable();
            let ideal = Point::new(xs[xs.len() / 2], ys[ys.len() / 2]);
            let target = layout.floorplan().site_at(ideal);
            let cur = layout.cell_pos(cell).expect("checked placed");
            if cur.chebyshev(target) <= 1 {
                continue;
            }
            let width = layout
                .occupancy()
                .cell_width(cell)
                .expect("placed cell has width");

            let before: f64 = incident_nets(layout, cell)
                .iter()
                .map(|&n| hpwl_um(layout, tech, n))
                .sum();
            // Vacate first so the cell's own gap is reusable.
            let occ = layout.occupancy_mut();
            occ.remove_cell(cell).expect("not locked");
            let dest = occ.find_gap(width, target, 12);
            match dest {
                Some(p) => {
                    occ.place_cell(cell, width, p).expect("gap was free");
                    let after: f64 = incident_nets(layout, cell)
                        .iter()
                        .map(|&n| hpwl_um(layout, tech, n))
                        .sum();
                    if after + 1e-9 < before {
                        accepted += 1;
                    } else {
                        let occ = layout.occupancy_mut();
                        occ.remove_cell(cell).expect("not locked");
                        occ.place_cell(cell, width, cur)
                            .expect("old spot still free");
                    }
                }
                None => {
                    occ.place_cell(cell, width, cur)
                        .expect("old spot still free");
                }
            }
        }
    }
    debug_assert!(layout.check_consistency(tech).is_ok());
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn placed() -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        crate::global_place(&mut layout, &tech, 3);
        (tech, layout)
    }

    #[test]
    fn refinement_reduces_hpwl() {
        let (tech, mut layout) = placed();
        let before = hpwl_total(&layout, &tech);
        let moves = refine_wirelength(&mut layout, &tech, 3, 3);
        let after = hpwl_total(&layout, &tech);
        assert!(moves > 0, "no moves accepted");
        assert!(after < before, "HPWL did not improve: {before} -> {after}");
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn locked_cells_do_not_move() {
        let (tech, mut layout) = placed();
        let critical = layout.design().critical_cells.clone();
        for &c in &critical {
            layout.occupancy_mut().lock(c);
        }
        let before: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        refine_wirelength(&mut layout, &tech, 2, 9);
        let after: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn hpwl_is_nonnegative_and_zero_for_io_only() {
        let (tech, layout) = placed();
        for (id, _) in layout.design().nets_iter() {
            assert!(hpwl_um(&layout, &tech, id) >= 0.0);
        }
        // Unsunk PI nets have no internal wirelength.
        let unsunk: Option<NetId> = layout
            .design()
            .nets_iter()
            .find(|(_, n)| n.sinks.is_empty())
            .map(|(id, _)| id);
        if let Some(id) = unsunk {
            assert_eq!(hpwl_um(&layout, &tech, id), 0.0);
        }
    }
}
