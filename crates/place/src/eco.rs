use geom::{Point, SitePos};
use layout::{Blockage, Layout};
use netlist::CellId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tech::Technology;

/// Outcome of an [`eco_place`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EcoPlaceStats {
    /// Cells evicted from over-budget blockage windows.
    pub evicted: usize,
    /// Cells successfully re-placed under all density bounds.
    pub replaced_in_bounds: usize,
    /// Cells re-placed by the fallback path (no in-bounds gap was found).
    pub replaced_fallback: usize,
}

/// Overlap in sites between a cell footprint on `row` spanning
/// `[col, col + width)` and a blockage window.
fn overlap_sites(b: &Blockage, row: u32, col: u32, width: u32) -> u32 {
    if row < b.row0 || row >= b.row1 {
        return 0;
    }
    let lo = col.max(b.col0);
    let hi = (col + width).min(b.col1);
    hi.saturating_sub(lo)
}

/// Current functional-cell occupancy of each blockage window, in sites.
fn blockage_occupancy(layout: &Layout) -> Vec<u64> {
    layout
        .blockages()
        .iter()
        .map(|b| {
            let d = layout
                .occupancy()
                .density_in(b.row0, b.row1, b.col0, b.col1);
            (d * b.num_sites() as f64).round() as u64
        })
        .collect()
}

/// Incremental, blockage-aware ECO placement.
///
/// Innovus-style contract: cells already satisfying every partial placement
/// blockage stay put; windows whose functional-cell density exceeds their
/// bound evict their least-connected movable cells, which are then re-placed
/// as close as possible to the wirelength-optimal location *without*
/// violating any other window's budget. Locked (security-critical) cells are
/// never moved.
///
/// Returns statistics about the incremental changes.
pub fn eco_place(layout: &mut Layout, tech: &Technology, seed: u64) -> EcoPlaceStats {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEC0_91ACE);
    let design = layout.design().clone();
    let clock = design.clock;
    let blockages: Vec<Blockage> = layout.blockages().to_vec();
    let mut stats = EcoPlaceStats::default();
    if blockages.is_empty() {
        return stats;
    }
    let mut occupied = blockage_occupancy(layout);

    // Phase 1: evict from over-budget windows.
    let mut evicted: Vec<CellId> = Vec::new();
    obs::span("eco.phase1", |sp| {
        for (bi, b) in blockages.iter().enumerate() {
            if occupied[bi] <= b.site_budget() {
                continue;
            }
            // Movable cells whose footprint overlaps this window, least
            // connected first (cheapest to displace far away).
            let mut candidates: Vec<(usize, u32, CellId)> = Vec::new();
            for (id, _) in design.cells_iter() {
                if layout.occupancy().is_locked(id) {
                    continue;
                }
                let Some(pos) = layout.cell_pos(id) else {
                    continue;
                };
                let w = layout.occupancy().cell_width(id).expect("placed");
                let ov = overlap_sites(b, pos.row, pos.col, w);
                if ov > 0 {
                    let degree = crate::global::neighbors(&design, id, clock).len();
                    candidates.push((degree, ov, id));
                }
            }
            candidates.sort_by_key(|&(deg, ov, id)| (deg, std::cmp::Reverse(ov), id));
            for (_, ov, id) in candidates {
                if occupied[bi] <= b.site_budget() {
                    break;
                }
                let pos = layout.cell_pos(id).expect("still placed");
                let w = layout.occupancy().cell_width(id).expect("placed");
                layout.occupancy_mut().remove_cell(id).expect("not locked");
                // Update every window the footprint overlapped.
                for (bj, bb) in blockages.iter().enumerate() {
                    occupied[bj] -= overlap_sites(bb, pos.row, pos.col, w) as u64;
                }
                debug_assert!(ov > 0);
                evicted.push(id);
                stats.evicted += 1;
            }
        }
        obs::trace(obs::Topic::Lda, || {
            format!("  eco phase1 {:.2}s", sp.elapsed().as_secs_f64())
        });
    });
    let mut n_fallback_compact = 0usize;
    // Phase 2: re-place evicted cells near their wirelength-optimal spots.
    // Widest first: wide cells (flops) need long gaps, which narrower cells
    // would otherwise fragment.
    obs::span("eco.phase2", |sp| {
        evicted.shuffle(&mut rng);
        evicted.sort_by_key(|&id| {
            std::cmp::Reverse(tech.library.kind(design.cell(id).kind).width_sites)
        });
        // Per-row empty-run cache: recomputing runs from the site grid for
        // every candidate would dominate the whole ECO pass.
        let fp_rows = layout.floorplan().rows();
        let mut runs_cache: Vec<Vec<geom::Interval>> = (0..fp_rows)
            .map(|r| layout.occupancy().empty_runs(r))
            .collect();
        for id in evicted {
            let w = tech.library.kind(design.cell(id).kind).width_sites;
            let neigh = crate::global::neighbors(&design, id, clock);
            let ideal = {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for &n in &neigh {
                    if layout.cell_pos(n).is_some() {
                        let p = layout.cell_center(n, tech);
                        xs.push(p.x);
                        ys.push(p.y);
                    }
                }
                if xs.is_empty() {
                    layout.floorplan().core_rect().center()
                } else {
                    xs.sort_unstable();
                    ys.sort_unstable();
                    Point::new(xs[xs.len() / 2], ys[ys.len() / 2])
                }
            };
            let near = layout.floorplan().site_at(ideal);
            let dest = find_gap_under_budgets(&runs_cache, &blockages, &occupied, w, near);
            match dest {
                Some(pos) => {
                    layout
                        .occupancy_mut()
                        .place_cell(id, w, pos)
                        .expect("gap verified free");
                    runs_cache[pos.row as usize] = layout.occupancy().empty_runs(pos.row);
                    for (bj, bb) in blockages.iter().enumerate() {
                        occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                    }
                    stats.replaced_in_bounds += 1;
                }
                None => {
                    // No ready-made gap: compact a row segment to create one
                    // (still respecting budgets), like a real incremental
                    // placer. Only if even that fails, place anywhere.
                    n_fallback_compact += 1;
                    let compacted =
                        make_gap_by_compaction(layout, &blockages, &mut occupied, w, near);
                    let pos = compacted.unwrap_or_else(|| {
                        let fp = *layout.floorplan();
                        layout
                            .occupancy()
                            .find_gap(w, fp.site_at(ideal), fp.rows().max(fp.cols()))
                            .expect("core has capacity for all cells")
                    });
                    layout
                        .occupancy_mut()
                        .place_cell(id, w, pos)
                        .expect("gap verified free");
                    runs_cache[pos.row as usize] = layout.occupancy().empty_runs(pos.row);
                    for (bj, bb) in blockages.iter().enumerate() {
                        occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                    }
                    stats.replaced_fallback += 1;
                }
            }
        }
        obs::trace(obs::Topic::Lda, || {
            format!(
                "  eco phase2 {:.2}s (compaction fallbacks {})",
                sp.elapsed().as_secs_f64(),
                n_fallback_compact,
            )
        });
    });
    eco_metrics_record(&stats, n_fallback_compact);
    debug_assert!(layout.check_consistency(tech).is_ok());
    stats
}

/// Folds one run's [`EcoPlaceStats`] into the registry-backed ECO
/// counters (`eco.evicted`, `eco.replaced_in_bounds`,
/// `eco.replaced_fallback`, `eco.compaction_fallbacks`).
fn eco_metrics_record(stats: &EcoPlaceStats, n_fallback_compact: usize) {
    struct EcoMetrics {
        evicted: obs::Counter,
        replaced_in_bounds: obs::Counter,
        replaced_fallback: obs::Counter,
        compaction_fallbacks: obs::Counter,
    }
    static METRICS: std::sync::OnceLock<EcoMetrics> = std::sync::OnceLock::new();
    let m = METRICS.get_or_init(|| EcoMetrics {
        evicted: obs::counter("eco.evicted"),
        replaced_in_bounds: obs::counter("eco.replaced_in_bounds"),
        replaced_fallback: obs::counter("eco.replaced_fallback"),
        compaction_fallbacks: obs::counter("eco.compaction_fallbacks"),
    });
    m.evicted.add(stats.evicted as u64);
    m.replaced_in_bounds.add(stats.replaced_in_bounds as u64);
    m.replaced_fallback.add(stats.replaced_fallback as u64);
    m.compaction_fallbacks.add(n_fallback_compact as u64);
}

/// Creates a gap of `width` contiguous sites by compacting the cells of a
/// row window leftward, then returns the placement origin at the window's
/// right end. Rows are tried nearest-first; a window qualifies when it
/// holds `width` free sites, contains no locked cell, and every blockage it
/// touches has at least `width` sites of headroom left. Moved cells update
/// `occupied` incrementally.
pub(crate) fn make_gap_by_compaction(
    layout: &mut Layout,
    blockages: &[Blockage],
    occupied: &mut [u64],
    width: u32,
    near: SitePos,
) -> Option<SitePos> {
    let fp = *layout.floorplan();
    let cols = fp.cols();
    let mut rows: Vec<u32> = (0..fp.rows()).collect();
    rows.sort_by_key(|r| r.abs_diff(near.row));
    // Free-site prefix sums, built lazily per probed row: the fallback
    // runs hundreds of times per LDA iteration, and recounting windows
    // site by site dominated the whole operator. The layout is read-only
    // until the final compaction, so rows stay valid for the whole call.
    let mut free_prefix: Vec<Option<Vec<u32>>> = vec![None; fp.rows() as usize];
    fn free_in(
        layout: &Layout,
        memo: &mut [Option<Vec<u32>>],
        cols: u32,
        row: u32,
        c0: u32,
        c1: u32,
    ) -> u32 {
        let p = memo[row as usize].get_or_insert_with(|| {
            let mut p = vec![0u32; cols as usize + 1];
            for run in layout.occupancy().empty_runs(row) {
                for c in run.lo..run.hi {
                    p[c as usize + 1] = 1;
                }
            }
            for c in 0..cols as usize {
                p[c + 1] += p[c];
            }
            p
        });
        p[c1 as usize] - p[c0 as usize]
    }
    // Blockages bucketed per row: LDA tiles the whole core, so a flat
    // headroom scan over all N² windows per candidate window would
    // dominate the search.
    let mut blk_by_row: Vec<Vec<usize>> = vec![Vec::new(); fp.rows() as usize];
    for (bi, b) in blockages.iter().enumerate() {
        for row in b.row0..b.row1.min(fp.rows()) {
            blk_by_row[row as usize].push(bi);
        }
    }
    // Dense layouts need wider windows to scrape `width` free sites
    // together; escalate the window span until one qualifies.
    for span in [width * 3, width * 8, width * 20, cols] {
        let span = span.min(cols);
        for &row in &rows {
            if free_in(layout, &mut free_prefix, cols, row, 0, cols) < width {
                continue;
            }
            // Sliding window over [c0, c0 + span).
            let mut c0 = 0u32;
            while c0 + span <= cols {
                if free_in(layout, &mut free_prefix, cols, row, c0, c0 + span) < width {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Cheap rejections first: every blockage the window touches
                // needs headroom before the per-cell scan is worth running.
                let headroom_ok = blk_by_row[row as usize].iter().all(|&bi| {
                    let b = &blockages[bi];
                    overlap_sites(b, row, c0, span) == 0
                        || occupied[bi] + width as u64 <= b.site_budget()
                });
                if !headroom_ok {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Collect the cells whose origin lies in the window; reject
                // windows with locked or boundary-straddling cells.
                let mut cells: Vec<(netlist::CellId, SitePos, u32)> = Vec::new();
                let mut ok = true;
                let mut c = c0;
                while c < c0 + span {
                    match layout.occupancy().state(SitePos::new(row, c)) {
                        layout::SiteState::Cell(id) => {
                            let pos = layout.occupancy().cell_pos(id).expect("placed");
                            let w = layout.occupancy().cell_width(id).expect("placed");
                            if pos.col < c0
                                || pos.col + w > c0 + span
                                || layout.occupancy().is_locked(id)
                            {
                                ok = false;
                                break;
                            }
                            if cells.last().map(|&(l, _, _)| l) != Some(id) {
                                cells.push((id, pos, w));
                            }
                            c = pos.col + w;
                        }
                        _ => c += 1,
                    }
                }
                if !ok {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Compact leftward.
                let mut cursor = c0;
                for &(id, pos, w) in &cells {
                    if pos.col > cursor {
                        layout
                            .occupancy_mut()
                            .move_cell(id, SitePos::new(row, cursor))
                            .expect("window is self-contained");
                        for (bi, b) in blockages.iter().enumerate() {
                            occupied[bi] -= overlap_sites(b, row, pos.col, w) as u64;
                            occupied[bi] += overlap_sites(b, row, cursor, w) as u64;
                        }
                    }
                    cursor += w;
                }
                debug_assert!(c0 + span - cursor >= width);
                return Some(SitePos::new(row, c0 + span - width));
            }
        }
    }
    None
}

/// Nearest empty gap of `width` sites around `near` whose occupation keeps
/// every blockage within budget. Searches outward in expanding Chebyshev
/// rings up to half the core size.
fn find_gap_under_budgets(
    runs_cache: &[Vec<geom::Interval>],
    blockages: &[Blockage],
    occupied: &[u64],
    width: u32,
    near: SitePos,
) -> Option<SitePos> {
    let n_rows = runs_cache.len() as u32;
    let max_radius = n_rows.max(
        runs_cache
            .iter()
            .filter_map(|r| r.last().map(|iv| iv.hi))
            .max()
            .unwrap_or(0),
    );
    // Bucket the blockages per row so each candidate only checks the few
    // windows that can actually overlap it (LDA tiles the whole core, so a
    // flat scan over all N² windows per candidate would dominate runtime).
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); n_rows as usize];
    for (bi, b) in blockages.iter().enumerate() {
        for row in b.row0..b.row1.min(n_rows) {
            by_row[row as usize].push(bi);
        }
    }
    let mut best: Option<(u32, SitePos)> = None;
    for row in 0..n_rows {
        let dr = row.abs_diff(near.row);
        if dr > max_radius {
            continue;
        }
        if let Some((bd, _)) = best {
            if dr >= bd {
                continue;
            }
        }
        for run in runs_cache[row as usize].iter().copied() {
            if run.len() < width {
                continue;
            }
            let lo = run.lo;
            let hi = run.hi - width;
            // Try the distance-optimal origin plus the run ends, so budget
            // rejections can slide along the run.
            let clamped = near.col.clamp(lo, hi);
            for col in [clamped, lo, hi] {
                let d = dr.max(col.abs_diff(near.col));
                if best.is_some_and(|(bd, _)| d >= bd) {
                    continue;
                }
                let fits_budget = by_row[row as usize].iter().all(|&bi| {
                    let b = &blockages[bi];
                    let ov = overlap_sites(b, row, col, width) as u64;
                    ov == 0 || occupied[bi] + ov <= b.site_budget()
                });
                if fits_budget {
                    best = Some((d, SitePos::new(row, col)));
                }
            }
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn placed() -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        crate::global_place(&mut layout, &tech, 11);
        (tech, layout)
    }

    #[test]
    fn noop_without_blockages() {
        let (tech, mut layout) = placed();
        let stats = eco_place(&mut layout, &tech, 1);
        assert_eq!(stats, EcoPlaceStats::default());
    }

    #[test]
    fn enforces_density_bound() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        // Cap the lower-left quadrant at 10 % density.
        let b = Blockage::new(0, fp.rows() / 2, 0, fp.cols() / 2, 0.10);
        layout.set_blockages(vec![b]);
        let before = layout
            .occupancy()
            .density_in(b.row0, b.row1, b.col0, b.col1);
        let stats = eco_place(&mut layout, &tech, 2);
        let after = layout
            .occupancy()
            .density_in(b.row0, b.row1, b.col0, b.col1);
        assert!(before > 0.3, "quadrant was not populated: {before}");
        assert!(after <= 0.11, "bound not enforced: {after}");
        assert!(stats.evicted > 0);
        assert_eq!(
            stats.evicted,
            stats.replaced_in_bounds + stats.replaced_fallback
        );
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn locked_cells_survive_eviction() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        let critical = layout.design().critical_cells.clone();
        for &c in &critical {
            layout.occupancy_mut().lock(c);
        }
        let before: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        layout.set_blockages(vec![Blockage::new(0, fp.rows(), 0, fp.cols(), 0.05)]);
        eco_place(&mut layout, &tech, 3);
        let after: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn every_cell_remains_placed() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        layout.set_blockages(vec![Blockage::new(0, fp.rows(), 0, fp.cols() / 2, 0.0)]);
        eco_place(&mut layout, &tech, 4);
        for (id, _) in layout.design().cells_iter() {
            assert!(layout.cell_pos(id).is_some(), "cell {} lost", id.0);
        }
        layout.check_consistency(&tech).unwrap();
    }
}
