use geom::{Interval, Point, SitePos};
use layout::{Blockage, Layout, Occupancy};
use netlist::CellId;
use tech::Technology;

/// Outcome of an [`eco_place`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EcoPlaceStats {
    /// Cells evicted from over-budget blockage windows.
    pub evicted: usize,
    /// Cells successfully re-placed under all density bounds.
    pub replaced_in_bounds: usize,
    /// Cells re-placed by the fallback path (no in-bounds gap was found).
    pub replaced_fallback: usize,
}

/// Overlap in sites between a cell footprint on `row` spanning
/// `[col, col + width)` and a blockage window.
fn overlap_sites(b: &Blockage, row: u32, col: u32, width: u32) -> u32 {
    if row < b.row0 || row >= b.row1 {
        return 0;
    }
    let lo = col.max(b.col0);
    let hi = (col + width).min(b.col1);
    hi.saturating_sub(lo)
}

/// Current functional-cell occupancy of each blockage window, in sites.
fn blockage_occupancy(layout: &Layout) -> Vec<u64> {
    layout
        .blockages()
        .iter()
        .map(|b| {
            let d = layout
                .occupancy()
                .density_in(b.row0, b.row1, b.col0, b.col1);
            (d * b.num_sites() as f64).round() as u64
        })
        .collect()
}

/// Phase 1: evicts the least-connected movable cells out of every
/// over-budget blockage window, updating `occupied` incrementally.
/// Returns the evicted cells in their deterministic eviction order.
fn evict_over_budget(
    layout: &mut Layout,
    blockages: &[Blockage],
    occupied: &mut [u64],
    stats: &mut EcoPlaceStats,
) -> Vec<CellId> {
    let design = layout.design().clone();
    let clock = design.clock;
    let mut evicted: Vec<CellId> = Vec::new();
    for (bi, b) in blockages.iter().enumerate() {
        if occupied[bi] <= b.site_budget() {
            continue;
        }
        // Movable cells whose footprint overlaps this window, least
        // connected first (cheapest to displace far away).
        let mut candidates: Vec<(usize, u32, CellId)> = Vec::new();
        for (id, _) in design.cells_iter() {
            if layout.occupancy().is_locked(id) {
                continue;
            }
            let Some(pos) = layout.cell_pos(id) else {
                continue;
            };
            let w = layout.occupancy().cell_width(id).expect("placed");
            let ov = overlap_sites(b, pos.row, pos.col, w);
            if ov > 0 {
                let degree = crate::global::neighbors(&design, id, clock).len();
                candidates.push((degree, ov, id));
            }
        }
        candidates.sort_by_key(|&(deg, ov, id)| (deg, std::cmp::Reverse(ov), id));
        for (_, ov, id) in candidates {
            if occupied[bi] <= b.site_budget() {
                break;
            }
            let pos = layout.cell_pos(id).expect("still placed");
            let w = layout.occupancy().cell_width(id).expect("placed");
            layout.occupancy_mut().remove_cell(id).expect("not locked");
            // Update every window the footprint overlapped.
            for (bj, bb) in blockages.iter().enumerate() {
                occupied[bj] -= overlap_sites(bb, pos.row, pos.col, w) as u64;
            }
            debug_assert!(ov > 0);
            evicted.push(id);
            stats.evicted += 1;
        }
    }
    evicted
}

/// The wirelength-optimal target site for re-placing `id`: the median of
/// its placed neighbors' centers (the core center when it has none).
fn ideal_site(layout: &Layout, tech: &Technology, neigh: &[CellId]) -> SitePos {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in neigh {
        if layout.cell_pos(n).is_some() {
            let p = layout.cell_center(n, tech);
            xs.push(p.x);
            ys.push(p.y);
        }
    }
    let ideal = if xs.is_empty() {
        layout.floorplan().core_rect().center()
    } else {
        xs.sort_unstable();
        ys.sort_unstable();
        Point::new(xs[xs.len() / 2], ys[ys.len() / 2])
    };
    layout.floorplan().site_at(ideal)
}

/// Incremental, blockage-aware ECO placement.
///
/// Innovus-style contract: cells already satisfying every partial placement
/// blockage stay put; windows whose functional-cell density exceeds their
/// bound evict their least-connected movable cells, which are then re-placed
/// as close as possible to the wirelength-optimal location *without*
/// violating any other window's budget. Locked (security-critical) cells are
/// never moved.
///
/// Gap queries run against the occupancy map's persistent per-row gap
/// index ([`layout::Occupancy::gaps`]) instead of scanning sites; the
/// selection semantics are bit-identical to the scan-based reference
/// ([`eco_place_reference`], pinned by the `gap_index_replay` test).
///
/// `seed` is retained for API stability but no longer influences the
/// result: re-placement order is the total order
/// `(widest first, descending CellId)`, so the outcome is fully
/// determined by the layout and blockages.
///
/// Returns statistics about the incremental changes.
/// Injection point covering ECO legalization: checked on entry and once per
/// re-placed cell (the legalizer-side granularity of the cooperative eval
/// deadline). A fault here unwinds mid-mutation; callers hand the legalizer
/// a candidate copy-on-write snapshot, which the evaluation sandbox discards
/// wholesale, so no half-legalized layout is ever observed.
static ECO_LEGALIZE: faults::Point = faults::Point::new("eco.legalize");

pub fn eco_place(layout: &mut Layout, tech: &Technology, seed: u64) -> EcoPlaceStats {
    let _ = seed;
    ECO_LEGALIZE.check();
    let design = layout.design().clone();
    let clock = design.clock;
    let blockages: Vec<Blockage> = layout.blockages().to_vec();
    let mut stats = EcoPlaceStats::default();
    if blockages.is_empty() {
        return stats;
    }
    let mut occupied = blockage_occupancy(layout);

    // Phase 1: evict from over-budget windows.
    let mut evicted: Vec<CellId> = Vec::new();
    obs::span("eco.phase1", |sp| {
        evicted = evict_over_budget(layout, &blockages, &mut occupied, &mut stats);
        obs::trace(obs::Topic::Lda, || {
            format!("  eco phase1 {:.2}s", sp.elapsed().as_secs_f64())
        });
    });
    let mut n_fallback_compact = 0usize;
    // Phase 2: re-place evicted cells near their wirelength-optimal spots.
    // Widest first: wide cells (flops) need long gaps, which narrower cells
    // would otherwise fragment. The CellId tie-break makes the key a total
    // order, so the result cannot depend on the (blockage-driven) eviction
    // order.
    obs::span("eco.phase2", |sp| {
        evicted.sort_by_key(|&id| {
            (
                std::cmp::Reverse(tech.library.kind(design.cell(id).kind).width_sites),
                std::cmp::Reverse(id),
            )
        });
        for id in evicted.iter().copied() {
            ECO_LEGALIZE.check();
            let w = tech.library.kind(design.cell(id).kind).width_sites;
            let neigh = crate::global::neighbors(&design, id, clock);
            let near = ideal_site(layout, tech, &neigh);
            let dest = find_gap_under_budgets(layout.occupancy(), &blockages, &occupied, w, near);
            match dest {
                Some(pos) => {
                    layout
                        .occupancy_mut()
                        .place_cell(id, w, pos)
                        .expect("gap verified free");
                    for (bj, bb) in blockages.iter().enumerate() {
                        occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                    }
                    stats.replaced_in_bounds += 1;
                }
                None => {
                    // No ready-made gap: compact a row segment to create one
                    // (still respecting budgets), like a real incremental
                    // placer. Only if even that fails, place anywhere.
                    n_fallback_compact += 1;
                    let compacted =
                        make_gap_by_compaction(layout, &blockages, &mut occupied, w, near);
                    let pos = compacted.unwrap_or_else(|| {
                        let fp = *layout.floorplan();
                        layout
                            .occupancy()
                            .find_gap(w, near, fp.rows().max(fp.cols()))
                            .expect("core has capacity for all cells")
                    });
                    layout
                        .occupancy_mut()
                        .place_cell(id, w, pos)
                        .expect("gap verified free");
                    for (bj, bb) in blockages.iter().enumerate() {
                        occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                    }
                    stats.replaced_fallback += 1;
                }
            }
        }
        obs::trace(obs::Topic::Lda, || {
            format!(
                "  eco phase2 {:.2}s (compaction fallbacks {})",
                sp.elapsed().as_secs_f64(),
                n_fallback_compact,
            )
        });
    });
    eco_metrics_record(&stats, n_fallback_compact);
    debug_assert!(layout.check_consistency(tech).is_ok());
    stats
}

/// Pre-index reference implementation of [`eco_place`]: identical
/// eviction, ordering, and gap-selection semantics, but every free-site
/// query runs against brute-force grid scans
/// ([`layout::Occupancy::empty_runs_scan`] /
/// [`layout::Occupancy::find_gap_scan`]) exactly like the legalizer the
/// gap index replaced. The `gap_index_replay` test asserts bit-identical
/// [`EcoPlaceStats`] and layouts between the two paths on fixed-seed
/// schedules.
#[doc(hidden)]
pub fn eco_place_reference(layout: &mut Layout, tech: &Technology, seed: u64) -> EcoPlaceStats {
    let _ = seed;
    let design = layout.design().clone();
    let clock = design.clock;
    let blockages: Vec<Blockage> = layout.blockages().to_vec();
    let mut stats = EcoPlaceStats::default();
    if blockages.is_empty() {
        return stats;
    }
    let mut occupied = blockage_occupancy(layout);
    let mut evicted = evict_over_budget(layout, &blockages, &mut occupied, &mut stats);
    evicted.sort_by_key(|&id| {
        (
            std::cmp::Reverse(tech.library.kind(design.cell(id).kind).width_sites),
            std::cmp::Reverse(id),
        )
    });
    // Per-row empty-run cache rebuilt from grid scans after every
    // placement, as the pre-index legalizer did.
    let fp_rows = layout.floorplan().rows();
    let mut runs_cache: Vec<Vec<Interval>> = (0..fp_rows)
        .map(|r| layout.occupancy().empty_runs_scan(r))
        .collect();
    for id in evicted {
        let w = tech.library.kind(design.cell(id).kind).width_sites;
        let neigh = crate::global::neighbors(&design, id, clock);
        let near = ideal_site(layout, tech, &neigh);
        let dest = find_gap_under_budgets_scan(&runs_cache, &blockages, &occupied, w, near);
        match dest {
            Some(pos) => {
                layout
                    .occupancy_mut()
                    .place_cell(id, w, pos)
                    .expect("gap verified free");
                runs_cache[pos.row as usize] = layout.occupancy().empty_runs_scan(pos.row);
                for (bj, bb) in blockages.iter().enumerate() {
                    occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                }
                stats.replaced_in_bounds += 1;
            }
            None => {
                let compacted = make_gap_by_compaction_impl(
                    layout,
                    &blockages,
                    &mut occupied,
                    w,
                    near,
                    |l, r| l.occupancy().empty_runs_scan(r),
                );
                let pos = compacted.unwrap_or_else(|| {
                    let fp = *layout.floorplan();
                    layout
                        .occupancy()
                        .find_gap_scan(w, near, fp.rows().max(fp.cols()))
                        .expect("core has capacity for all cells")
                });
                layout
                    .occupancy_mut()
                    .place_cell(id, w, pos)
                    .expect("gap verified free");
                for r in 0..fp_rows {
                    runs_cache[r as usize] = layout.occupancy().empty_runs_scan(r);
                }
                for (bj, bb) in blockages.iter().enumerate() {
                    occupied[bj] += overlap_sites(bb, pos.row, pos.col, w) as u64;
                }
                stats.replaced_fallback += 1;
            }
        }
    }
    debug_assert!(layout.check_consistency(tech).is_ok());
    stats
}

/// Folds one run's [`EcoPlaceStats`] into the registry-backed ECO
/// counters (`eco.evicted`, `eco.replaced_in_bounds`,
/// `eco.replaced_fallback`, `eco.compaction_fallbacks`).
fn eco_metrics_record(stats: &EcoPlaceStats, n_fallback_compact: usize) {
    struct EcoMetrics {
        evicted: obs::Counter,
        replaced_in_bounds: obs::Counter,
        replaced_fallback: obs::Counter,
        compaction_fallbacks: obs::Counter,
    }
    static METRICS: std::sync::OnceLock<EcoMetrics> = std::sync::OnceLock::new();
    let m = METRICS.get_or_init(|| EcoMetrics {
        evicted: obs::counter("eco.evicted"),
        replaced_in_bounds: obs::counter("eco.replaced_in_bounds"),
        replaced_fallback: obs::counter("eco.replaced_fallback"),
        compaction_fallbacks: obs::counter("eco.compaction_fallbacks"),
    });
    m.evicted.add(stats.evicted as u64);
    m.replaced_in_bounds.add(stats.replaced_in_bounds as u64);
    m.replaced_fallback.add(stats.replaced_fallback as u64);
    m.compaction_fallbacks.add(n_fallback_compact as u64);
}

/// Registry handles for the gap-index query telemetry.
struct GapMetrics {
    /// Budget-constrained nearest-gap queries issued by phase 2.
    queries: obs::Counter,
    /// Queries answered with an in-bounds gap (no fallback needed).
    hits: obs::Counter,
    /// Free runs examined per query (the index's unit of work; the
    /// pre-index scan examined every *site* instead).
    scan_len: obs::Histogram,
}

fn gap_metrics() -> &'static GapMetrics {
    static METRICS: std::sync::OnceLock<GapMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| GapMetrics {
        queries: obs::counter("eco.gap_queries"),
        hits: obs::counter("eco.gap_hit"),
        scan_len: obs::histogram("eco.gap_scan_len"),
    })
}

/// Creates a gap of `width` contiguous sites by compacting the cells of a
/// row window leftward, then returns the placement origin at the window's
/// right end. Rows are tried nearest-first; a window qualifies when it
/// holds `width` free sites, contains no locked cell, and every blockage it
/// touches has at least `width` sites of headroom left. Moved cells update
/// `occupied` incrementally.
///
/// Free-site counts come from the occupancy map's gap index (cumulative
/// run lengths, O(log g) per window query) instead of per-row site scans.
pub(crate) fn make_gap_by_compaction(
    layout: &mut Layout,
    blockages: &[Blockage],
    occupied: &mut [u64],
    width: u32,
    near: SitePos,
) -> Option<SitePos> {
    make_gap_by_compaction_impl(layout, blockages, occupied, width, near, |l, r| {
        l.occupancy().empty_runs(r)
    })
}

/// [`make_gap_by_compaction`] parameterized over the free-run provider,
/// so the reference legalizer can run the same window search on
/// brute-force scans.
fn make_gap_by_compaction_impl(
    layout: &mut Layout,
    blockages: &[Blockage],
    occupied: &mut [u64],
    width: u32,
    near: SitePos,
    runs_of: impl Fn(&Layout, u32) -> Vec<Interval>,
) -> Option<SitePos> {
    let fp = *layout.floorplan();
    let cols = fp.cols();
    let mut rows: Vec<u32> = (0..fp.rows()).collect();
    rows.sort_by_key(|r| r.abs_diff(near.row));
    // Per probed row, lazily: the free runs and their cumulative lengths
    // (`cum[i]` = free sites in runs `0..i`). A window's free count is
    // then two binary searches instead of a site scan. The layout is
    // read-only until the final compaction, so rows stay valid for the
    // whole call.
    let mut free_runs: Vec<Option<(Vec<Interval>, Vec<u32>)>> = vec![None; fp.rows() as usize];
    let free_in = |layout: &Layout,
                   memo: &mut [Option<(Vec<Interval>, Vec<u32>)>],
                   row: u32,
                   c0: u32,
                   c1: u32|
     -> u32 {
        let (runs, cum) = memo[row as usize].get_or_insert_with(|| {
            let runs = runs_of(layout, row);
            let mut cum = Vec::with_capacity(runs.len() + 1);
            cum.push(0u32);
            for r in &runs {
                cum.push(cum.last().unwrap() + r.len());
            }
            (runs, cum)
        });
        let free_before = |x: u32| -> u32 {
            let j = runs.partition_point(|iv| iv.hi <= x);
            let partial = if j < runs.len() && runs[j].lo < x {
                x - runs[j].lo
            } else {
                0
            };
            cum[j] + partial
        };
        free_before(c1) - free_before(c0)
    };
    // Blockages bucketed per row: LDA tiles the whole core, so a flat
    // headroom scan over all N² windows per candidate window would
    // dominate the search.
    let mut blk_by_row: Vec<Vec<usize>> = vec![Vec::new(); fp.rows() as usize];
    for (bi, b) in blockages.iter().enumerate() {
        for row in b.row0..b.row1.min(fp.rows()) {
            blk_by_row[row as usize].push(bi);
        }
    }
    // Dense layouts need wider windows to scrape `width` free sites
    // together; escalate the window span until one qualifies.
    for span in [width * 3, width * 8, width * 20, cols] {
        let span = span.min(cols);
        for &row in &rows {
            if free_in(layout, &mut free_runs, row, 0, cols) < width {
                continue;
            }
            // Sliding window over [c0, c0 + span).
            let mut c0 = 0u32;
            while c0 + span <= cols {
                if free_in(layout, &mut free_runs, row, c0, c0 + span) < width {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Cheap rejections first: every blockage the window touches
                // needs headroom before the per-cell scan is worth running.
                let headroom_ok = blk_by_row[row as usize].iter().all(|&bi| {
                    let b = &blockages[bi];
                    overlap_sites(b, row, c0, span) == 0
                        || occupied[bi] + width as u64 <= b.site_budget()
                });
                if !headroom_ok {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Collect the cells whose origin lies in the window; reject
                // windows with locked or boundary-straddling cells.
                let mut cells: Vec<(netlist::CellId, SitePos, u32)> = Vec::new();
                let mut ok = true;
                let mut c = c0;
                while c < c0 + span {
                    match layout.occupancy().state(SitePos::new(row, c)) {
                        layout::SiteState::Cell(id) => {
                            let pos = layout.occupancy().cell_pos(id).expect("placed");
                            let w = layout.occupancy().cell_width(id).expect("placed");
                            if pos.col < c0
                                || pos.col + w > c0 + span
                                || layout.occupancy().is_locked(id)
                            {
                                ok = false;
                                break;
                            }
                            if cells.last().map(|&(l, _, _)| l) != Some(id) {
                                cells.push((id, pos, w));
                            }
                            c = pos.col + w;
                        }
                        _ => c += 1,
                    }
                }
                if !ok {
                    c0 += span / 2 + 1;
                    continue;
                }
                // Compact leftward.
                let mut cursor = c0;
                for &(id, pos, w) in &cells {
                    if pos.col > cursor {
                        layout
                            .occupancy_mut()
                            .move_cell(id, SitePos::new(row, cursor))
                            .expect("window is self-contained");
                        for (bi, b) in blockages.iter().enumerate() {
                            occupied[bi] -= overlap_sites(b, row, pos.col, w) as u64;
                            occupied[bi] += overlap_sites(b, row, cursor, w) as u64;
                        }
                    }
                    cursor += w;
                }
                debug_assert!(c0 + span - cursor >= width);
                return Some(SitePos::new(row, c0 + span - width));
            }
        }
    }
    None
}

/// Nearest empty gap of `width` sites around `near` whose occupation keeps
/// every blockage within budget, read from the occupancy map's gap index.
///
/// Candidate order and tie-breaks replicate the scan-based reference
/// ([`find_gap_under_budgets_scan`]) exactly: rows in ascending order
/// with a distance prune, runs left to right with the distance-optimal
/// origin plus the run ends (so budget rejections can slide along the
/// run), strict improvement on the Chebyshev distance. The index adds an
/// in-row break once runs start too far right of the target to win —
/// every run it skips would have failed the strict-improvement test.
fn find_gap_under_budgets(
    occ: &Occupancy,
    blockages: &[Blockage],
    occupied: &[u64],
    width: u32,
    near: SitePos,
) -> Option<SitePos> {
    let n_rows = occ.floorplan().rows();
    let gm = gap_metrics();
    gm.queries.incr();
    // Bucket the blockages per row so each candidate only checks the few
    // windows that can actually overlap it (LDA tiles the whole core, so a
    // flat scan over all N² windows per candidate would dominate runtime).
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); n_rows as usize];
    for (bi, b) in blockages.iter().enumerate() {
        for row in b.row0..b.row1.min(n_rows) {
            by_row[row as usize].push(bi);
        }
    }
    let mut scanned = 0u64;
    let mut best: Option<(u32, SitePos)> = None;
    for row in 0..n_rows {
        let dr = row.abs_diff(near.row);
        if let Some((bd, _)) = best {
            if dr >= bd {
                continue;
            }
        }
        for run in occ.gaps(row).iter().copied() {
            if let Some((bd, _)) = best {
                if run.lo > near.col && run.lo - near.col >= bd {
                    break;
                }
            }
            scanned += 1;
            if run.len() < width {
                continue;
            }
            let lo = run.lo;
            let hi = run.hi - width;
            // Try the distance-optimal origin plus the run ends, so budget
            // rejections can slide along the run.
            let clamped = near.col.clamp(lo, hi);
            for col in [clamped, lo, hi] {
                let d = dr.max(col.abs_diff(near.col));
                if best.is_some_and(|(bd, _)| d >= bd) {
                    continue;
                }
                let fits_budget = by_row[row as usize].iter().all(|&bi| {
                    let b = &blockages[bi];
                    let ov = overlap_sites(b, row, col, width) as u64;
                    ov == 0 || occupied[bi] + ov <= b.site_budget()
                });
                if fits_budget {
                    best = Some((d, SitePos::new(row, col)));
                }
            }
        }
    }
    gm.scan_len.record(scanned);
    if best.is_some() {
        gm.hits.incr();
    }
    best.map(|(_, p)| p)
}

/// The pre-index [`find_gap_under_budgets`] over a caller-maintained
/// per-row run cache; retained as the reference the index-backed query is
/// pinned against.
fn find_gap_under_budgets_scan(
    runs_cache: &[Vec<Interval>],
    blockages: &[Blockage],
    occupied: &[u64],
    width: u32,
    near: SitePos,
) -> Option<SitePos> {
    let n_rows = runs_cache.len() as u32;
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); n_rows as usize];
    for (bi, b) in blockages.iter().enumerate() {
        for row in b.row0..b.row1.min(n_rows) {
            by_row[row as usize].push(bi);
        }
    }
    let mut best: Option<(u32, SitePos)> = None;
    for row in 0..n_rows {
        let dr = row.abs_diff(near.row);
        if let Some((bd, _)) = best {
            if dr >= bd {
                continue;
            }
        }
        for run in runs_cache[row as usize].iter().copied() {
            if run.len() < width {
                continue;
            }
            let lo = run.lo;
            let hi = run.hi - width;
            let clamped = near.col.clamp(lo, hi);
            for col in [clamped, lo, hi] {
                let d = dr.max(col.abs_diff(near.col));
                if best.is_some_and(|(bd, _)| d >= bd) {
                    continue;
                }
                let fits_budget = by_row[row as usize].iter().all(|&bi| {
                    let b = &blockages[bi];
                    let ov = overlap_sites(b, row, col, width) as u64;
                    ov == 0 || occupied[bi] + ov <= b.site_budget()
                });
                if fits_budget {
                    best = Some((d, SitePos::new(row, col)));
                }
            }
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn placed() -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        crate::global_place(&mut layout, &tech, 11);
        (tech, layout)
    }

    #[test]
    fn noop_without_blockages() {
        let (tech, mut layout) = placed();
        let stats = eco_place(&mut layout, &tech, 1);
        assert_eq!(stats, EcoPlaceStats::default());
    }

    #[test]
    fn enforces_density_bound() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        // Cap the lower-left quadrant at 10 % density.
        let b = Blockage::new(0, fp.rows() / 2, 0, fp.cols() / 2, 0.10);
        layout.set_blockages(vec![b]);
        let before = layout
            .occupancy()
            .density_in(b.row0, b.row1, b.col0, b.col1);
        let stats = eco_place(&mut layout, &tech, 2);
        let after = layout
            .occupancy()
            .density_in(b.row0, b.row1, b.col0, b.col1);
        assert!(before > 0.3, "quadrant was not populated: {before}");
        assert!(after <= 0.11, "bound not enforced: {after}");
        assert!(stats.evicted > 0);
        assert_eq!(
            stats.evicted,
            stats.replaced_in_bounds + stats.replaced_fallback
        );
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn locked_cells_survive_eviction() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        let critical = layout.design().critical_cells.clone();
        for &c in &critical {
            layout.occupancy_mut().lock(c);
        }
        let before: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        layout.set_blockages(vec![Blockage::new(0, fp.rows(), 0, fp.cols(), 0.05)]);
        eco_place(&mut layout, &tech, 3);
        let after: Vec<_> = critical.iter().map(|&c| layout.cell_pos(c)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn every_cell_remains_placed() {
        let (tech, mut layout) = placed();
        let fp = *layout.floorplan();
        layout.set_blockages(vec![Blockage::new(0, fp.rows(), 0, fp.cols() / 2, 0.0)]);
        eco_place(&mut layout, &tech, 4);
        for (id, _) in layout.design().cells_iter() {
            assert!(layout.cell_pos(id).is_some(), "cell {} lost", id.0);
        }
        layout.check_consistency(&tech).unwrap();
    }

    /// Phase 2's re-placement key is a total order (widest first,
    /// CellId tie-break), so the seed no longer influences the result:
    /// any two seeds must produce bit-identical layouts and stats.
    #[test]
    fn replacement_order_is_seed_independent() {
        let (tech, layout) = placed();
        let fp = *layout.floorplan();
        let b = Blockage::new(0, fp.rows() / 2, 0, fp.cols(), 0.15);
        let run = |seed: u64| {
            let mut l = layout.clone();
            l.set_blockages(vec![b]);
            let stats = eco_place(&mut l, &tech, seed);
            (stats, l)
        };
        let (stats_a, la) = run(1);
        let (stats_b, lb) = run(0xDEAD_BEEF);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.evicted > 0, "fixture must actually evict");
        for (id, _) in la.design().cells_iter() {
            assert_eq!(la.cell_pos(id), lb.cell_pos(id), "cell {} diverged", id.0);
        }
    }
}
