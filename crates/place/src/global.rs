use geom::SitePos;
use layout::Layout;
use netlist::CellId;
// `SitePos` is used in both the placer body and the tests below.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tech::Technology;

/// Places every cell of the design: a force-directed global placement
/// followed by row-partition legalization with randomized interleaved
/// whitespace.
///
/// Phase 1 seeds every cell along a row-major scan in netlist order, then
/// iteratively pulls each cell toward the mean position of its connected
/// neighbors (the classic quadratic-placement fixpoint, solved by damped
/// Jacobi sweeps). Phase 2 legalizes: cells are partitioned into rows by
/// their y coordinate (respecting per-row site quotas) and ordered within
/// each row by x, interleaving randomized whitespace so the core reaches
/// its floorplanned utilization with *distributed* empty space — the
/// whitespace structure a detail-placed commercial layout exhibits, and
/// the raw material of exploitable regions.
///
/// Follow with [`crate::refine_wirelength`] for detail cleanup.
///
/// # Panics
///
/// Panics if any cell is already placed or the floorplan cannot hold the
/// design.
pub fn global_place(layout: &mut Layout, tech: &Technology, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_91AC_E000_0000);
    let design = layout.design().clone();
    let fp = *layout.floorplan();
    let cols = fp.cols();
    let rows = fp.rows();

    let need: u64 = design.total_cell_sites(tech);
    let total = fp.num_sites();
    assert!(need <= total, "floorplan cannot hold the design");
    let n = design.cells.len();

    // --- Phase 1: damped Jacobi sweeps toward the neighbor mean. ---------
    // Seed along a row-major scan in netlist order (generator ids are
    // topologically contiguous, so this starts close to the fixpoint).
    let widths: Vec<u32> = design
        .cells
        .iter()
        .map(|c| tech.library.kind(c.kind).width_sites)
        .collect();
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    {
        let per_row = need as f64 / rows as f64;
        let mut scan = 0.0f64;
        for i in 0..n {
            let r = (scan / per_row).min(rows as f64 - 1.0);
            let c = (scan - r.floor() * per_row) / per_row * cols as f64;
            x[i] = c;
            y[i] = r;
            scan += widths[i] as f64;
        }
    }
    // Neighbor lists via signal nets, skipping huge hub nets.
    let clock = design.clock;
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (nid, net) in design.nets_iter() {
        if Some(nid) == clock || net.sinks.len() > 12 {
            continue;
        }
        let mut pins: Vec<u32> = Vec::new();
        if let netlist::NetDriver::Cell(c) = net.driver {
            pins.push(c.0);
        }
        for s in &net.sinks {
            if let netlist::Sink::CellInput { cell, .. } = s {
                pins.push(cell.0);
            }
        }
        for (a_i, &a) in pins.iter().enumerate() {
            for &b in &pins[a_i + 1..] {
                if a != b {
                    neighbors[a as usize].push(b);
                    neighbors[b as usize].push(a);
                }
            }
        }
    }
    let damping = 0.4;
    for _ in 0..30 {
        let (px, py) = (x.clone(), y.clone());
        for i in 0..n {
            if neighbors[i].is_empty() {
                continue;
            }
            let (mut sx, mut sy) = (0.0, 0.0);
            for &nb in &neighbors[i] {
                sx += px[nb as usize];
                sy += py[nb as usize];
            }
            let k = neighbors[i].len() as f64;
            x[i] = damping * x[i] + (1.0 - damping) * sx / k;
            y[i] = damping * y[i] + (1.0 - damping) * sy / k;
        }
    }

    // --- Phase 2: legalization with randomized whitespace. ---------------
    // Partition cells into rows by y (site quota per row), then order by x
    // within each row and interleave random gaps.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| y[a].partial_cmp(&y[b]).expect("finite").then(a.cmp(&b)));
    let base_quota = need / rows as u64;
    let extra_rows = (need % rows as u64) as u32;
    let mut row_cells: Vec<Vec<usize>> = vec![Vec::new(); rows as usize];
    {
        let mut it = order.into_iter().peekable();
        let mut placed: u64 = 0;
        let mut quota_cum: u64 = 0;
        for row in 0..rows {
            quota_cum += base_quota + u64::from(row < extra_rows);
            while placed < quota_cum {
                let Some(i) = it.next() else { break };
                row_cells[row as usize].push(i);
                placed += widths[i] as u64;
            }
        }
        for i in it {
            row_cells[rows as usize - 1].push(i);
        }
    }
    let mut spill: std::collections::VecDeque<usize> = Default::default();
    for row in 0..rows {
        let mut members = std::mem::take(&mut row_cells[row as usize]);
        members.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("finite").then(a.cmp(&b)));
        // Cells that did not fit in the previous row lead this one.
        let mut queue: Vec<usize> = spill.drain(..).collect();
        queue.extend(members);
        let used: u64 = queue.iter().map(|&i| widths[i] as u64).sum();
        let free = (cols as u64).saturating_sub(used) as f64;
        let mean_gap = free / (queue.len() as f64 + 1.0);
        let mut col = 0u32;
        for &i in &queue {
            let w = widths[i];
            let gap = if mean_gap > 0.0 {
                rng.gen_range(0.0..2.0 * mean_gap).round() as u32
            } else {
                0
            };
            let gap = gap.min(cols.saturating_sub(col + w));
            if col + gap + w > cols {
                spill.push_back(i);
                continue;
            }
            layout
                .occupancy_mut()
                .place_cell(CellId(i as u32), w, SitePos::new(row, col + gap))
                .expect("scan position is free by construction");
            col += gap + w;
        }
    }
    // Stragglers: nearest free gap anywhere; at very high densities no
    // contiguous gap may survive, in which case a row segment is compacted
    // to make one.
    let center = SitePos::new(rows / 2, cols / 2);
    while let Some(i) = spill.pop_front() {
        let w = widths[i];
        let pos = layout
            .occupancy()
            .find_gap(w, center, rows.max(cols))
            .or_else(|| crate::eco::make_gap_by_compaction(layout, &[], &mut [], w, center))
            .unwrap_or_else(|| panic!("core cannot hold {}", design.name));
        layout
            .occupancy_mut()
            .place_cell(CellId(i as u32), w, pos)
            .expect("gap verified free");
    }
    debug_assert!(layout.check_consistency(tech).is_ok());
}

/// Clusters the given cells into a compact bank around their current
/// centroid, evicting non-member cells to nearby gaps — the standard
/// register-banking step a production flow applies to key registers and
/// other grouped assets (the ISPD'22 security-closure layouts ship with
/// their critical assets localized this way).
///
/// Returns the site-space window `(row0, row1, col0, col1)` of the bank.
///
/// # Panics
///
/// Panics if any member cell is unplaced or the core cannot hold the bank.
pub fn bank_cells(
    layout: &mut Layout,
    tech: &Technology,
    members: &[CellId],
    bank_utilization: f64,
    _seed: u64,
) -> (u32, u32, u32, u32) {
    assert!(bank_utilization > 0.0 && bank_utilization <= 1.0);
    let fp = *layout.floorplan();
    let design = layout.design().clone();
    let member_set: std::collections::HashSet<CellId> = members.iter().copied().collect();
    let total_sites: u64 = members
        .iter()
        .map(|&c| tech.library.kind(design.cell(c).kind).width_sites as u64)
        .sum();
    // Whitespace interleaved inside the bank (up to 3 sites per member),
    // plus 20 % slop for row-end fragmentation.
    let gap_per_cell = (((1.0 - bank_utilization) / bank_utilization) * 4.0)
        .floor()
        .clamp(0.0, 3.0) as u32;
    let need =
        ((total_sites + (members.len() as u64 + 1) * gap_per_cell as u64) as f64 * 1.2).ceil();

    // Roughly square window (in µm) centred on the members' centroid.
    let site_ratio = tech::SITE_H as f64 / tech::SITE_W as f64;
    let est_rows = ((need / site_ratio).sqrt().ceil() as u32).clamp(1, fp.rows());
    let max_w = members
        .iter()
        .map(|&c| tech.library.kind(design.cell(c).kind).width_sites)
        .max()
        .unwrap_or(1);
    let bank_cols = ((need / est_rows as f64).ceil() as u32)
        .max(max_w + gap_per_cell)
        .clamp(1, fp.cols());
    // The area estimate can undershoot when row-end fragmentation is high,
    // so derive the row count by replaying the row-major packing below.
    let bank_rows = {
        let mut widths: Vec<(CellId, u32)> = members
            .iter()
            .map(|&c| (c, tech.library.kind(design.cell(c).kind).width_sites))
            .collect();
        widths.sort_unstable_by_key(|&(c, _)| c);
        let mut rows_needed = 1u32;
        let mut col = 0u32;
        for &(_, w) in &widths {
            if col + w + gap_per_cell > bank_cols {
                rows_needed += 1;
                col = 0;
            }
            col += w + gap_per_cell;
        }
        rows_needed.clamp(1, fp.rows())
    };
    let (mut cx, mut cy) = (0i64, 0i64);
    for &c in members {
        let p = layout.cell_center(c, tech);
        cx += p.x;
        cy += p.y;
    }
    let centroid = geom::Point::new(cx / members.len() as i64, cy / members.len() as i64);
    let center = fp.site_at(centroid);
    let row0 = center
        .row
        .saturating_sub(bank_rows / 2)
        .min(fp.rows() - bank_rows);
    let col0 = center
        .col
        .saturating_sub(bank_cols / 2)
        .min(fp.cols() - bank_cols);
    let (row1, col1) = (row0 + bank_rows, col0 + bank_cols);

    // Evict everything non-member from the window.
    let mut evicted: Vec<CellId> = Vec::new();
    for (id, _) in design.cells_iter() {
        if member_set.contains(&id) {
            continue;
        }
        let Some(pos) = layout.cell_pos(id) else {
            continue;
        };
        let w = layout.occupancy().cell_width(id).expect("placed");
        let overlaps = pos.row >= row0 && pos.row < row1 && pos.col + w > col0 && pos.col < col1;
        if overlaps {
            layout.occupancy_mut().remove_cell(id).expect("not locked");
            evicted.push(id);
        }
    }
    // Move members into the window, packed row-major with the leftover
    // whitespace spread between them.
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    for &c in &sorted {
        layout.occupancy_mut().remove_cell(c).expect("not locked");
    }
    let mut row = row0;
    let mut col = col0;
    for &c in &sorted {
        let w = tech.library.kind(design.cell(c).kind).width_sites;
        if col + w + gap_per_cell > col1 {
            row += 1;
            col = col0;
            assert!(row < row1, "bank window too small");
        }
        layout
            .occupancy_mut()
            .place_cell(c, w, geom::SitePos::new(row, col))
            .expect("window was emptied");
        col += w + gap_per_cell;
    }
    // Re-place the evicted cells near their former homes, outside the bank.
    for id in evicted {
        let w = tech.library.kind(design.cell(id).kind).width_sites;
        let near = geom::SitePos::new(center.row, center.col);
        let pos = layout
            .occupancy()
            .find_gap(w, near, fp.rows().max(fp.cols()))
            .expect("core has capacity");
        layout
            .occupancy_mut()
            .place_cell(id, w, pos)
            .expect("gap verified free");
    }
    debug_assert!(layout.check_consistency(tech).is_ok());
    (row0, row1, col0, col1)
}

/// Convenience: which cells connect to `cell` through its nets (drivers of
/// its inputs and sinks of its output), ignoring the clock net.
pub(crate) fn neighbors(
    design: &netlist::Design,
    cell: CellId,
    clock: Option<netlist::NetId>,
) -> Vec<CellId> {
    let mut out = Vec::new();
    let c = design.cell(cell);
    for &net in &c.inputs {
        if Some(net) == clock {
            continue;
        }
        if let netlist::NetDriver::Cell(d) = design.net(net).driver {
            out.push(d);
        }
    }
    if let Some(net) = c.output {
        for s in &design.net(net).sinks {
            if let netlist::Sink::CellInput { cell: sc, .. } = s {
                out.push(*sc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use layout::SiteState;
    use netlist::bench;

    fn placed_tiny(seed: u64) -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        global_place(&mut layout, &tech, seed);
        (tech, layout)
    }

    #[test]
    fn places_every_cell_consistently() {
        let (tech, layout) = placed_tiny(7);
        for (id, _) in layout.design().cells_iter() {
            assert!(layout.cell_pos(id).is_some(), "cell {} unplaced", id.0);
        }
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn utilization_matches_floorplan_target() {
        let (_, layout) = placed_tiny(7);
        let u = layout.utilization();
        assert!(u > 0.5 && u < 0.65, "utilization {u}");
    }

    #[test]
    fn whitespace_is_distributed_not_packed() {
        let (_, layout) = placed_tiny(7);
        let fp = *layout.floorplan();
        // Count rows that contain at least one interior empty run.
        let mut rows_with_gaps = 0;
        let mut used_rows = 0;
        for row in 0..fp.rows() {
            let runs = layout.occupancy().empty_runs(row);
            let row_used = (0..fp.cols()).any(|c| {
                matches!(
                    layout.occupancy().state(SitePos::new(row, c)),
                    SiteState::Cell(_)
                )
            });
            if row_used {
                used_rows += 1;
                if runs.iter().any(|r| r.lo != 0 && r.hi != fp.cols()) {
                    rows_with_gaps += 1;
                }
            }
        }
        assert!(
            rows_with_gaps * 2 >= used_rows,
            "only {rows_with_gaps}/{used_rows} used rows have interior gaps"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = placed_tiny(42);
        let (_, b) = placed_tiny(42);
        let (_, c) = placed_tiny(43);
        let pos = |l: &Layout| -> Vec<Option<SitePos>> {
            l.design()
                .cells_iter()
                .map(|(id, _)| l.cell_pos(id))
                .collect()
        };
        assert_eq!(pos(&a), pos(&b));
        assert_ne!(pos(&a), pos(&c));
    }
}
