use layout::{Blockage, Layout};
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
    place::global_place(&mut layout, &tech, 11);
    let fp = *layout.floorplan();
    let b = Blockage::new(0, fp.rows() / 2, 0, fp.cols() / 2, 0.10);
    layout.set_blockages(vec![b]);
    let before = layout
        .occupancy()
        .density_in(b.row0, b.row1, b.col0, b.col1);
    let stats = place::eco_place(&mut layout, &tech, 2);
    let after = layout
        .occupancy()
        .density_in(b.row0, b.row1, b.col0, b.col1);
    println!(
        "before {before} after {after} stats {stats:?} budget {} sites {}",
        b.site_budget(),
        b.num_sites()
    );
}
