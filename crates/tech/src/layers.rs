use geom::Dbu;

/// Number of metal layers in the stack (the paper's `K = 10`).
pub const NUM_METAL_LAYERS: usize = 10;

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerDir {
    /// Wires run left–right.
    Horizontal,
    /// Wires run bottom–top.
    Vertical,
}

/// A metal routing layer: geometry and parasitics per unit length.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalLayer {
    /// Layer name, `"M1"` … `"M10"`.
    pub name: &'static str,
    /// 1-based layer index.
    pub index: usize,
    /// Preferred routing direction.
    pub dir: LayerDir,
    /// Track pitch in DBU.
    pub pitch: Dbu,
    /// Default wire width in DBU.
    pub width: Dbu,
    /// Wire resistance in kΩ per µm at default width.
    pub res_per_um: f64,
    /// Wire capacitance in fF per µm at default width.
    pub cap_per_um: f64,
}

impl MetalLayer {
    /// Number of routing tracks available across a span of `span` DBU
    /// perpendicular to the routing direction, for wires scaled by
    /// `width_scale` (an NDR factor ≥ 1 widens wires and consumes extra
    /// pitch, reducing the usable track count).
    ///
    /// ```
    /// let stack = tech::Technology::nangate45_like();
    /// let m2 = stack.layer(2);
    /// let base = m2.tracks_in_span(3_800, 1.0);
    /// assert!(m2.tracks_in_span(3_800, 1.5) < base);
    /// ```
    pub fn tracks_in_span(&self, span: Dbu, width_scale: f64) -> u32 {
        debug_assert!(width_scale >= 1.0, "NDR scale factors are >= 1.0");
        let effective_pitch = self.pitch as f64 + self.width as f64 * (width_scale - 1.0);
        (span as f64 / effective_pitch).floor().max(0.0) as u32
    }

    /// Resistance of a wire of `len_dbu` DBU at NDR scale `width_scale`
    /// (wider wire → proportionally lower resistance), in kΩ.
    pub fn wire_res(&self, len_dbu: Dbu, width_scale: f64) -> f64 {
        self.res_per_um * geom::dbu_to_um(len_dbu) / width_scale
    }

    /// Capacitance of a wire of `len_dbu` DBU at NDR scale `width_scale`,
    /// in fF. Widening increases area capacitance but the fringe component
    /// is width-independent, so capacitance grows sub-linearly.
    pub fn wire_cap(&self, len_dbu: Dbu, width_scale: f64) -> f64 {
        let area_frac = 0.55;
        let scale = (1.0 - area_frac) + area_frac * width_scale;
        self.cap_per_um * geom::dbu_to_um(len_dbu) * scale
    }
}

/// The ten-layer Nangate45-flavoured stack. Lower layers are thin and
/// resistive with fine pitch; upper layers are thick, fast, and coarse.
pub fn nangate45_stack() -> Vec<MetalLayer> {
    use LayerDir::{Horizontal, Vertical};
    let spec: [(&'static str, LayerDir, Dbu, Dbu, f64, f64); NUM_METAL_LAYERS] = [
        ("M1", Horizontal, 190, 70, 0.0038, 0.16),
        ("M2", Vertical, 190, 70, 0.0038, 0.18),
        ("M3", Horizontal, 190, 70, 0.0038, 0.18),
        ("M4", Vertical, 280, 140, 0.0021, 0.20),
        ("M5", Horizontal, 280, 140, 0.0021, 0.20),
        ("M6", Vertical, 280, 140, 0.0021, 0.20),
        ("M7", Horizontal, 800, 400, 0.0008, 0.22),
        ("M8", Vertical, 800, 400, 0.0008, 0.22),
        ("M9", Horizontal, 1_600, 800, 0.0004, 0.24),
        ("M10", Vertical, 1_600, 800, 0.0004, 0.24),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, dir, pitch, width, r, c))| MetalLayer {
            name,
            index: i + 1,
            dir,
            pitch,
            width,
            res_per_um: r,
            cap_per_um: c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_count_shrinks_with_ndr_scale() {
        let stack = nangate45_stack();
        let m2 = &stack[1];
        let t10 = m2.tracks_in_span(19_000, 1.0);
        let t12 = m2.tracks_in_span(19_000, 1.2);
        let t15 = m2.tracks_in_span(19_000, 1.5);
        assert_eq!(t10, 100);
        assert!(t12 < t10);
        assert!(t15 < t12);
    }

    #[test]
    fn wider_wires_have_lower_res_higher_cap() {
        let stack = nangate45_stack();
        let m4 = &stack[3];
        assert!(m4.wire_res(10_000, 1.5) < m4.wire_res(10_000, 1.0));
        assert!(m4.wire_cap(10_000, 1.5) > m4.wire_cap(10_000, 1.0));
        // Cap grows sub-linearly: +50% width gives < +50% cap.
        let ratio = m4.wire_cap(10_000, 1.5) / m4.wire_cap(10_000, 1.0);
        assert!(ratio < 1.5 && ratio > 1.0);
    }

    #[test]
    fn zero_length_wire_has_zero_parasitics() {
        let stack = nangate45_stack();
        assert_eq!(stack[0].wire_res(0, 1.0), 0.0);
        assert_eq!(stack[0].wire_cap(0, 1.2), 0.0);
    }
}
