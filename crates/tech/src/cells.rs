/// Identifier of a [`CellKind`] inside a [`crate::Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KindId(pub u16);

/// Broad functional class of a standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Combinational logic gate (INV, NAND, XOR, …).
    Combinational,
    /// Edge-triggered flip-flop.
    Sequential,
    /// Non-functional filler cell occupying otherwise empty sites.
    Filler,
}

/// A standard-cell master: geometry plus the linear-delay-model timing and
/// power parameters used by the `sta` and `power` crates.
///
/// Units: delays in picoseconds, resistance in kΩ, capacitance in fF
/// (kΩ · fF = ps), leakage in nW, internal switching energy in fJ.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKind {
    /// Library cell name, e.g. `"NAND2_X1"`.
    pub name: &'static str,
    /// Functional class.
    pub class: CellClass,
    /// Footprint width in placement sites.
    pub width_sites: u32,
    /// Number of signal inputs (for flip-flops: D only; the clock pin is
    /// tracked separately by the netlist).
    pub inputs: u8,
    /// Output drive resistance in kΩ (smaller = stronger driver).
    pub drive_res: f64,
    /// Capacitance of each input pin in fF.
    pub input_cap: f64,
    /// Intrinsic (unloaded) propagation delay in ps. For flip-flops this is
    /// the clock-to-Q delay.
    pub intrinsic: f64,
    /// Setup time in ps (sequential cells only, zero otherwise).
    pub setup: f64,
    /// Leakage power in nW.
    pub leakage: f64,
    /// Internal energy per output toggle in fJ.
    pub internal_energy: f64,
}

impl CellKind {
    /// Whether the cell stores state.
    pub fn is_sequential(&self) -> bool {
        self.class == CellClass::Sequential
    }

    /// Whether the cell is a non-functional filler.
    pub fn is_filler(&self) -> bool {
        self.class == CellClass::Filler
    }

    /// Gate delay under the linear delay model: `intrinsic + R_drive · C_load`.
    ///
    /// ```
    /// let lib = tech::Library::nangate45_like();
    /// let inv = lib.kind(lib.kind_by_name("INV_X1").unwrap());
    /// let unloaded = inv.delay(0.0);
    /// assert!(inv.delay(10.0) > unloaded);
    /// ```
    pub fn delay(&self, load_ff: f64) -> f64 {
        self.intrinsic + self.drive_res * load_ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> CellKind {
        CellKind {
            name: "INV_X1",
            class: CellClass::Combinational,
            width_sites: 2,
            inputs: 1,
            drive_res: 2.0,
            input_cap: 1.6,
            intrinsic: 8.0,
            setup: 0.0,
            leakage: 10.0,
            internal_energy: 0.5,
        }
    }

    #[test]
    fn delay_is_linear_in_load() {
        let k = inv();
        let d0 = k.delay(0.0);
        let d1 = k.delay(1.0);
        let d2 = k.delay(2.0);
        assert!((d1 - d0 - (d2 - d1)).abs() < 1e-12);
        assert_eq!(d0, 8.0);
        assert_eq!(d1, 10.0);
    }

    #[test]
    fn class_predicates() {
        let k = inv();
        assert!(!k.is_sequential());
        assert!(!k.is_filler());
    }
}
