use std::collections::HashMap;

use crate::cells::{CellClass, CellKind, KindId};

/// A standard-cell library: an indexed catalogue of [`CellKind`]s.
///
/// ```
/// let lib = tech::Library::nangate45_like();
/// let id = lib.kind_by_name("INV_X1").unwrap();
/// assert_eq!(lib.kind(id).name, "INV_X1");
/// ```
#[derive(Debug, Clone)]
pub struct Library {
    kinds: Vec<CellKind>,
    by_name: HashMap<&'static str, KindId>,
}

impl Library {
    /// Builds a library from a list of kinds.
    ///
    /// # Panics
    ///
    /// Panics if two kinds share a name or if more than `u16::MAX` kinds are
    /// supplied.
    pub fn new(kinds: Vec<CellKind>) -> Self {
        assert!(kinds.len() <= u16::MAX as usize);
        let mut by_name = HashMap::with_capacity(kinds.len());
        for (i, k) in kinds.iter().enumerate() {
            let prev = by_name.insert(k.name, KindId(i as u16));
            assert!(prev.is_none(), "duplicate cell kind name {}", k.name);
        }
        Self { kinds, by_name }
    }

    /// The Nangate-45nm-flavoured catalogue used throughout the workspace.
    pub fn nangate45_like() -> Self {
        use CellClass::{Combinational as C, Filler as F, Sequential as S};
        // (name, class, width_sites, inputs, R kΩ, Cin fF, intrinsic ps,
        //  setup ps, leakage nW, internal fJ)
        #[allow(clippy::type_complexity)] // one-off literal table
        let spec: &[(
            &'static str,
            CellClass,
            u32,
            u8,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
        )] = &[
            ("INV_X1", C, 2, 1, 2.00, 1.6, 8.0, 0.0, 10.0, 0.5),
            ("INV_X2", C, 3, 1, 1.00, 3.2, 7.0, 0.0, 18.0, 0.8),
            ("INV_X4", C, 4, 1, 0.50, 6.4, 6.0, 0.0, 33.0, 1.4),
            ("BUF_X1", C, 3, 1, 2.00, 1.2, 16.0, 0.0, 15.0, 0.9),
            ("BUF_X2", C, 4, 1, 1.00, 2.4, 14.0, 0.0, 25.0, 1.4),
            ("BUF_X4", C, 5, 1, 0.50, 4.8, 12.0, 0.0, 45.0, 2.4),
            ("NAND2_X1", C, 3, 2, 2.20, 1.7, 10.0, 0.0, 12.0, 0.7),
            ("NAND2_X2", C, 4, 2, 1.10, 3.4, 9.0, 0.0, 22.0, 1.2),
            ("NAND3_X1", C, 4, 3, 2.50, 1.8, 13.0, 0.0, 16.0, 0.9),
            ("NOR2_X1", C, 3, 2, 2.40, 1.8, 11.0, 0.0, 13.0, 0.7),
            ("NOR2_X2", C, 4, 2, 1.20, 3.6, 10.0, 0.0, 23.0, 1.2),
            ("AND2_X1", C, 4, 2, 2.10, 1.5, 17.0, 0.0, 14.0, 0.9),
            ("OR2_X1", C, 4, 2, 2.20, 1.5, 18.0, 0.0, 14.0, 0.9),
            ("XOR2_X1", C, 5, 2, 2.60, 2.2, 20.0, 0.0, 20.0, 1.5),
            ("XNOR2_X1", C, 5, 2, 2.60, 2.2, 20.0, 0.0, 20.0, 1.5),
            ("AOI21_X1", C, 4, 3, 2.40, 1.8, 14.0, 0.0, 15.0, 0.9),
            ("OAI21_X1", C, 4, 3, 2.40, 1.8, 14.0, 0.0, 15.0, 0.9),
            ("MUX2_X1", C, 6, 3, 2.50, 2.0, 19.0, 0.0, 22.0, 1.3),
            ("DFF_X1", S, 9, 1, 2.00, 1.5, 35.0, 30.0, 45.0, 2.5),
            ("DFF_X2", S, 10, 1, 1.00, 1.5, 32.0, 28.0, 60.0, 3.5),
            ("FILL_X1", F, 1, 0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0),
            ("FILL_X2", F, 2, 0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.0),
            ("FILL_X4", F, 4, 0, 0.0, 0.0, 0.0, 0.0, 4.0, 0.0),
            ("FILL_X8", F, 8, 0, 0.0, 0.0, 0.0, 0.0, 8.0, 0.0),
        ];
        let kinds = spec
            .iter()
            .map(
                |&(
                    name,
                    class,
                    width_sites,
                    inputs,
                    drive_res,
                    input_cap,
                    intrinsic,
                    setup,
                    leakage,
                    internal_energy,
                )| {
                    CellKind {
                        name,
                        class,
                        width_sites,
                        inputs,
                        drive_res,
                        input_cap,
                        intrinsic,
                        setup,
                        leakage,
                        internal_energy,
                    }
                },
            )
            .collect();
        Self::new(kinds)
    }

    /// Number of kinds in the library.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: KindId) -> &CellKind {
        &self.kinds[id.0 as usize]
    }

    /// Looks up a kind by its library name.
    pub fn kind_by_name(&self, name: &str) -> Option<KindId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (KindId, &CellKind)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (KindId(i as u16), k))
    }

    /// Filler kinds sorted by descending width, for greedy gap filling.
    pub fn fillers_desc(&self) -> Vec<KindId> {
        let mut f: Vec<KindId> = self
            .iter()
            .filter(|(_, k)| k.is_filler())
            .map(|(id, _)| id)
            .collect();
        f.sort_by_key(|id| std::cmp::Reverse(self.kind(*id).width_sites));
        f
    }

    /// The smallest *functional* (non-filler) combinational kinds usable as
    /// tamper-evident fill, sorted by ascending width. BISA-style defenses
    /// draw from this set.
    pub fn functional_fill_kinds(&self) -> Vec<KindId> {
        let mut f: Vec<KindId> = self
            .iter()
            .filter(|(_, k)| k.class == CellClass::Combinational && k.inputs <= 2)
            .map(|(id, _)| id)
            .collect();
        f.sort_by_key(|id| self.kind(*id).width_sites);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_round_trip() {
        let lib = Library::nangate45_like();
        for (id, k) in lib.iter() {
            assert_eq!(lib.kind_by_name(k.name), Some(id));
        }
    }

    #[test]
    fn has_expected_families() {
        let lib = Library::nangate45_like();
        for name in [
            "INV_X1", "NAND2_X1", "XOR2_X1", "DFF_X1", "FILL_X1", "MUX2_X1",
        ] {
            assert!(lib.kind_by_name(name).is_some(), "missing {name}");
        }
        assert!(lib.kind_by_name("SRAM_MACRO").is_none());
    }

    #[test]
    fn fillers_cover_width_one() {
        let lib = Library::nangate45_like();
        let fillers = lib.fillers_desc();
        assert!(!fillers.is_empty());
        // Widths strictly descending, ending at a 1-site filler so any gap
        // can be tiled exactly.
        let widths: Vec<u32> = fillers.iter().map(|f| lib.kind(*f).width_sites).collect();
        assert!(widths.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(*widths.last().unwrap(), 1);
    }

    #[test]
    fn functional_fill_is_all_combinational() {
        let lib = Library::nangate45_like();
        let ff = lib.functional_fill_kinds();
        assert!(!ff.is_empty());
        assert!(ff
            .iter()
            .all(|id| lib.kind(*id).class == CellClass::Combinational));
        // Narrowest functional cell is 2 sites wide: 1-site gaps are
        // unfillable by BISA, which is exactly the residue the paper reports.
        assert_eq!(lib.kind(ff[0]).width_sites, 2);
    }

    #[test]
    fn stronger_drives_are_less_resistive() {
        let lib = Library::nangate45_like();
        let x1 = lib.kind(lib.kind_by_name("INV_X1").unwrap());
        let x4 = lib.kind(lib.kind_by_name("INV_X4").unwrap());
        assert!(x4.drive_res < x1.drive_res);
        assert!(x4.input_cap > x1.input_cap);
        assert!(x4.leakage > x1.leakage);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let lib = Library::nangate45_like();
        let k = lib.kind(lib.kind_by_name("INV_X1").unwrap()).clone();
        Library::new(vec![k.clone(), k]);
    }
}
