//! Technology model for the GDSII-Guard reproduction: a Nangate-45nm-flavoured
//! standard-cell library and a ten-metal-layer routing stack.
//!
//! The paper evaluates on the Nangate 45nm Open Cell Library with `K = 10`
//! metal layers. This crate provides an equivalent self-contained model:
//! site geometry, per-layer pitch/width/RC, a standard-cell catalogue with
//! linear-delay-model timing and power parameters, and non-default routing
//! rules (NDR) used by the Routing Width Scaling operator.
//!
//! # Examples
//!
//! ```
//! use tech::Technology;
//!
//! let tech = Technology::nangate45_like();
//! assert_eq!(tech.layers.len(), 10);
//! let nand = tech.library.kind_by_name("NAND2_X1").unwrap();
//! assert_eq!(tech.library.kind(nand).inputs, 2);
//! ```

mod cells;
mod layers;
mod library;
mod ndr;

pub use cells::{CellClass, CellKind, KindId};
pub use layers::{LayerDir, MetalLayer, NUM_METAL_LAYERS};
pub use library::Library;
pub use ndr::RouteRule;

use geom::Dbu;

/// Placement-site width in DBU (0.19 µm, Nangate45 `FreePDK45_38x28_10R`).
pub const SITE_W: Dbu = 190;

/// Placement-site (core-row) height in DBU (1.4 µm).
pub const SITE_H: Dbu = 1_400;

/// Complete technology description: library plus metal stack.
#[derive(Debug, Clone)]
pub struct Technology {
    /// The standard-cell library.
    pub library: Library,
    /// Metal layers, index 0 = M1 … index 9 = M10.
    pub layers: Vec<MetalLayer>,
}

impl Technology {
    /// Builds the Nangate-45nm-flavoured technology used by every benchmark
    /// in this reproduction.
    ///
    /// ```
    /// let tech = tech::Technology::nangate45_like();
    /// assert!(tech.library.kind_by_name("DFF_X1").is_some());
    /// ```
    pub fn nangate45_like() -> Self {
        Self {
            library: Library::nangate45_like(),
            layers: layers::nangate45_stack(),
        }
    }

    /// The metal layer with 1-based index `m` (`m = 1` → M1).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the stack height.
    pub fn layer(&self, m: usize) -> &MetalLayer {
        &self.layers[m - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_ten_layers_alternating() {
        let t = Technology::nangate45_like();
        assert_eq!(t.layers.len(), NUM_METAL_LAYERS);
        for w in t.layers.windows(2) {
            assert_ne!(w[0].dir, w[1].dir, "adjacent layers must alternate");
        }
    }

    #[test]
    fn upper_layers_are_less_resistive() {
        let t = Technology::nangate45_like();
        assert!(t.layer(10).res_per_um < t.layer(2).res_per_um);
        assert!(t.layer(10).pitch > t.layer(2).pitch);
    }

    #[test]
    fn layer_accessor_is_one_based() {
        let t = Technology::nangate45_like();
        assert_eq!(t.layer(1).name, "M1");
        assert_eq!(t.layer(10).name, "M10");
    }
}
