use crate::layers::NUM_METAL_LAYERS;

/// Non-default routing rule: a per-metal-layer wire-width scale factor.
///
/// This models the LEF NDR the paper's Routing Width Scaling operator edits:
/// `scale_M[i] ∈ {1.0, 1.2, 1.5}` for each of the `K = 10` layers (Table I).
/// A factor above 1.0 widens every wire routed on that layer, which lowers
/// wire resistance (better timing on long nets) while consuming extra track
/// pitch (fewer free tracks for a Trojan to exploit).
///
/// ```
/// let mut rule = tech::RouteRule::default();
/// rule.set_scale(7, 1.5);
/// assert_eq!(rule.scale(7), 1.5);
/// assert_eq!(rule.scale(2), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRule {
    scale: [f64; NUM_METAL_LAYERS],
}

impl RouteRule {
    /// The candidate scale factors from Table I of the paper.
    pub const CANDIDATES: [f64; 3] = [1.0, 1.2, 1.5];

    /// A rule scaling every layer identically.
    ///
    /// # Panics
    ///
    /// Panics if `s < 1.0`.
    pub fn uniform(s: f64) -> Self {
        assert!(s >= 1.0, "width scale factors must be >= 1.0");
        Self {
            scale: [s; NUM_METAL_LAYERS],
        }
    }

    /// Builds a rule from explicit per-layer factors (index 0 = M1).
    ///
    /// # Panics
    ///
    /// Panics if any factor is below 1.0.
    pub fn from_scales(scale: [f64; NUM_METAL_LAYERS]) -> Self {
        assert!(scale.iter().all(|s| *s >= 1.0));
        Self { scale }
    }

    /// Scale factor of 1-based metal layer `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the stack height.
    pub fn scale(&self, m: usize) -> f64 {
        self.scale[m - 1]
    }

    /// Sets the factor of 1-based metal layer `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or `s < 1.0`.
    pub fn set_scale(&mut self, m: usize, s: f64) {
        assert!(s >= 1.0, "width scale factors must be >= 1.0");
        self.scale[m - 1] = s;
    }

    /// All per-layer factors (index 0 = M1).
    pub fn scales(&self) -> &[f64; NUM_METAL_LAYERS] {
        &self.scale
    }

    /// Whether the rule is the identity (all factors 1.0).
    pub fn is_default(&self) -> bool {
        self.scale.iter().all(|s| *s == 1.0)
    }
}

impl Default for RouteRule {
    fn default() -> Self {
        Self::uniform(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_identity() {
        assert!(RouteRule::default().is_default());
        assert!(!RouteRule::uniform(1.2).is_default());
    }

    #[test]
    fn per_layer_assignment() {
        let mut r = RouteRule::default();
        r.set_scale(1, 1.2);
        r.set_scale(10, 1.5);
        assert_eq!(r.scale(1), 1.2);
        assert_eq!(r.scale(10), 1.5);
        assert_eq!(r.scale(5), 1.0);
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn rejects_narrowing() {
        RouteRule::uniform(0.8);
    }

    #[test]
    fn candidates_match_table_one() {
        assert_eq!(RouteRule::CANDIDATES, [1.0, 1.2, 1.5]);
    }
}
