//! Proptest oracle pinning the frontier-driven incremental STA to the
//! dense from-scratch pass: over random *sequences* of layout edits —
//! cell moves, flip-flop (clock-net consumer) moves, and NDR rule changes
//! that perturb the RC of nearly every routed net — each step's
//! incremental re-analysis must equal `sta::analyze` bit for bit, both
//! with and without a caller-supplied dirty-net bound.

use std::sync::OnceLock;

use layout::Layout;
use netlist::{bench, CellId, NetId};
use proptest::prelude::*;
use tech::{RouteRule, Technology};

struct Fixture {
    tech: Technology,
    layout: Layout,
    routing: route::RoutingState,
    report: sta::TimingReport,
    graph: sta::TimingGraph,
    /// Movable cells, any kind.
    movable: Vec<CellId>,
    /// Movable sequential cells: their clock pins sit on the clock net,
    /// which every STA path must keep skipping.
    flops: Vec<CellId>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.9; // tight enough that required times bind
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 7);
        place::refine_wirelength(&mut layout, &tech, 2, 7);
        let routing = route::route_design(&layout, &tech);
        let report = sta::analyze(&layout, &routing, &tech);
        let graph = sta::TimingGraph::new(layout.design(), &tech);
        let movable: Vec<CellId> = layout
            .design()
            .cells_iter()
            .map(|(id, _)| id)
            .filter(|&id| !layout.occupancy().is_locked(id))
            .collect();
        let flops: Vec<CellId> = layout
            .design()
            .cells_iter()
            .filter(|(_, c)| tech.library.kind(c.kind).is_sequential())
            .map(|(id, _)| id)
            .filter(|&id| !layout.occupancy().is_locked(id))
            .collect();
        assert!(!movable.is_empty(), "tiny design has movable cells");
        Fixture {
            tech,
            layout,
            routing,
            report,
            graph,
            movable,
            flops,
        }
    })
}

/// Moves `cell` to the nearest gap of a pseudo-random target site; a
/// failed search leaves the layout unchanged (still a valid edit step).
fn move_cell(layout: &mut Layout, cell: CellId, row_seed: u32, col_seed: u32) {
    let fp = *layout.floorplan();
    let Some(w) = layout.occupancy().cell_width(cell) else {
        return;
    };
    let target = geom::SitePos::new(row_seed % fp.rows(), col_seed % fp.cols());
    let span = fp.rows().max(fp.cols());
    if let Some(gap) = layout.occupancy().find_gap(w, target, span) {
        let _ = layout.occupancy_mut().move_cell(cell, gap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn frontier_incremental_matches_dense_over_edit_sequences(
        ops in proptest::collection::vec((0u8..=2, any::<u32>(), any::<u32>()), 1..4),
    ) {
        let fx = fixture();
        let mut cur_layout = fx.layout.clone();
        let mut cur_routing = fx.routing.clone();
        let mut cur_report = fx.report.clone();
        for (kind, s1, s2) in ops {
            let mut edited = cur_layout.clone();
            match kind {
                // Move an arbitrary movable cell.
                0 => {
                    let c = fx.movable[s1 as usize % fx.movable.len()];
                    move_cell(&mut edited, c, s2, s1 ^ s2);
                }
                // Move a flip-flop: exercises the clock-net skip on both
                // the RC diff and the frontier seeds.
                1 if !fx.flops.is_empty() => {
                    let c = fx.flops[s1 as usize % fx.flops.len()];
                    move_cell(&mut edited, c, s2, s1 ^ s2);
                }
                // NDR rule change: perturbs the RC of (nearly) every
                // routed net — the dense edit that used to force the
                // from-scratch fallback.
                _ => {
                    let scale = 0.8 + (s1 % 9) as f64 * 0.1;
                    edited.set_route_rule(RouteRule::uniform(scale));
                }
            }
            let rerouted = route::route_design(&edited, &fx.tech);
            let full = sta::analyze(&edited, &rerouted, &fx.tech);
            // Alternate between the unbounded RC diff and a tight
            // caller-supplied dirty list (sorted by construction).
            let dirty: Option<Vec<NetId>> = (s2 & 1 == 0).then(|| {
                edited
                    .design()
                    .nets_iter()
                    .map(|(id, _)| id)
                    .filter(|&id| rerouted.net_rc(id) != cur_routing.net_rc(id))
                    .collect()
            });
            let inc = sta::analyze_incremental(
                &fx.graph,
                &cur_report,
                &cur_routing,
                &edited,
                &rerouted,
                &fx.tech,
                dirty.as_deref(),
            );
            prop_assert_eq!(&full, &inc, "kind {} dirty {}", kind, dirty.is_some());
            cur_layout = edited;
            cur_routing = rerouted;
            cur_report = full;
        }
    }
}
