use layout::Layout;
use netlist::{CellId, Design, NetDriver, NetId, Sink};
use route::RoutingState;
use tech::Technology;

use crate::report::{EndpointKind, TimingReport};

/// Load capacitance seen by a net's driver: extracted wire capacitance plus
/// every sink pin's input capacitance.
fn net_load_ff(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let mut c = routing.net_rc(net).cap;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    c
}

/// Lumped Elmore wire delay from a net's driver to its sinks:
/// `R_wire · (C_wire / 2 + C_pins)`.
fn wire_delay_ps(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let rc = routing.net_rc(net);
    let mut pin_c = 0.0;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            pin_c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    rc.res * (rc.cap / 2.0 + pin_c)
}

/// Performs setup-check static timing analysis on a routed layout.
///
/// Path starts are primary inputs (arriving at `input_delay`) and flip-flop
/// Q pins (arriving at clock-to-Q); path ends are flip-flop D pins
/// (required at `T - setup`) and primary outputs (required at
/// `T - output_delay`). Combinational loops, if any, are broken by treating
/// unresolved arrivals as path starts at time zero (and are absent from the
/// benchmark generator's output by construction).
pub fn analyze(layout: &Layout, routing: &RoutingState, tech: &Technology) -> TimingReport {
    obs::span("sta.full", |_| analyze_inner(layout, routing, tech))
}

/// Registry-backed STA observability handles (resolved once per process).
struct StaMetrics {
    /// Incremental analyses satisfied from the base report (no RC moved).
    clean_hits: obs::Counter,
    /// Incremental analyses that fell back to the from-scratch pass
    /// because the edit touched too many nets for cone propagation to pay.
    cone_fallbacks: obs::Counter,
    /// Nets re-propagated through the cone machinery.
    cone_nets: obs::Counter,
    /// Nets the RC diff never inspected because a caller-supplied
    /// `dirty_nets` list proved them untouched.
    diff_skipped: obs::Counter,
}

fn metrics() -> &'static StaMetrics {
    static METRICS: std::sync::OnceLock<StaMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StaMetrics {
        clean_hits: obs::counter("sta.clean_hits"),
        cone_fallbacks: obs::counter("sta.cone_fallbacks"),
        cone_nets: obs::counter("sta.cone_nets"),
        diff_skipped: obs::counter("sta.diff_skipped"),
    })
}

fn analyze_inner(layout: &Layout, routing: &RoutingState, tech: &Technology) -> TimingReport {
    let design = layout.design();
    let n_nets = design.nets.len();
    let n_cells = design.cells.len();
    let period = design.constraints.clock_period;
    let clock = design.clock;

    // Precompute per-net wire delay and per-cell gate delay.
    let mut wire_delay = vec![0.0f64; n_nets];
    let mut net_load = vec![0.0f64; n_nets];
    for (nid, _) in design.nets_iter() {
        if Some(nid) == clock {
            continue;
        }
        wire_delay[nid.0 as usize] = wire_delay_ps(design, routing, tech, nid);
        net_load[nid.0 as usize] = net_load_ff(design, routing, tech, nid);
    }
    let gate_delay = |cell: CellId| -> f64 {
        let c = design.cell(cell);
        let kind = tech.library.kind(c.kind);
        let load = c.output.map_or(0.0, |o| net_load[o.0 as usize]);
        kind.delay(load)
    };

    // Forward propagation in topological order (Kahn over combinational
    // cells; flop outputs and PIs are sources).
    let mut arrival = vec![f64::NEG_INFINITY; n_nets];
    let mut indegree = vec![0u32; n_cells];
    let mut ready: Vec<CellId> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_filler() {
            continue;
        }
        if kind.is_sequential() {
            // Q arrival = clock-to-Q (clock arrives at the active edge, 0).
            if let Some(q) = cell.output {
                arrival[q.0 as usize] = kind.intrinsic;
            }
        } else {
            indegree[cid.0 as usize] = cell.inputs.len() as u32;
            if cell.inputs.is_empty() {
                ready.push(cid);
            }
        }
    }
    for &pi in &design.primary_inputs {
        if Some(pi) == clock {
            continue;
        }
        arrival[pi.0 as usize] = design.constraints.input_delay;
    }
    // Seed readiness from already-arrived nets.
    let mut pending: Vec<u32> = indegree.clone();
    let mut queue: std::collections::VecDeque<CellId> = ready.into_iter().collect();
    for (nid, net) in design.nets_iter() {
        if arrival[nid.0 as usize] == f64::NEG_INFINITY {
            continue;
        }
        for s in &net.sinks {
            if let Sink::CellInput { cell, .. } = s {
                let c = design.cell(*cell);
                if !tech.library.kind(c.kind).is_sequential() {
                    let p = &mut pending[cell.0 as usize];
                    *p -= 1;
                    if *p == 0 {
                        queue.push_back(*cell);
                    }
                }
            }
        }
    }
    let mut processed = 0usize;
    let n_comb = design
        .cells
        .iter()
        .filter(|c| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .count();
    while let Some(cid) = queue.pop_front() {
        processed += 1;
        let cell = design.cell(cid);
        let mut in_arrival = 0.0f64;
        for &inp in &cell.inputs {
            let a = arrival[inp.0 as usize];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            in_arrival = in_arrival.max(a + wire_delay[inp.0 as usize]);
        }
        let out_arrival = in_arrival + gate_delay(cid);
        if let Some(out) = cell.output {
            debug_assert_eq!(arrival[out.0 as usize], f64::NEG_INFINITY);
            arrival[out.0 as usize] = out_arrival;
            for s in &design.net(out).sinks {
                if let Sink::CellInput { cell: sc, .. } = s {
                    let c = design.cell(*sc);
                    if !tech.library.kind(c.kind).is_sequential() {
                        let p = &mut pending[sc.0 as usize];
                        *p -= 1;
                        if *p == 0 {
                            queue.push_back(*sc);
                        }
                    }
                }
            }
        }
    }
    debug_assert_eq!(processed, n_comb, "combinational loop detected");

    // Endpoint slacks.
    let mut endpoint_slacks: Vec<(EndpointKind, f64)> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if !kind.is_sequential() {
            continue;
        }
        let d = cell.inputs[0];
        let a = arrival[d.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let at_pin = a + wire_delay[d.0 as usize];
        let slack = (period - kind.setup) - at_pin;
        endpoint_slacks.push((EndpointKind::FlopData(cid), slack));
    }
    for (i, &po) in design.primary_outputs.iter().enumerate() {
        let a = arrival[po.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let slack = (period - design.constraints.output_delay) - a;
        endpoint_slacks.push((EndpointKind::PrimaryOutput(i as u32), slack));
    }

    // Backward propagation of required times in reverse topological order.
    let mut required = vec![f64::INFINITY; n_nets];
    // Endpoint requirements.
    for (_cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_sequential() {
            let d = cell.inputs[0];
            let r = (period - kind.setup) - wire_delay[d.0 as usize];
            let slot = &mut required[d.0 as usize];
            *slot = slot.min(r);
        }
    }
    for &po in &design.primary_outputs {
        let r = period - design.constraints.output_delay;
        let slot = &mut required[po.0 as usize];
        *slot = slot.min(r);
    }
    // Process combinational cells in reverse order of arrival finalization:
    // sort by arrival descending gives a valid reverse topological order.
    let mut comb_cells: Vec<CellId> = design
        .cells_iter()
        .filter(|(_, c)| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .map(|(id, _)| id)
        .collect();
    comb_cells.sort_by(|&a, &b| {
        let aa = design.cell(a).output.map_or(0.0, |o| arrival[o.0 as usize]);
        let ab = design.cell(b).output.map_or(0.0, |o| arrival[o.0 as usize]);
        ab.partial_cmp(&aa).expect("arrivals are finite")
    });
    for cid in comb_cells {
        let cell = design.cell(cid);
        let Some(out) = cell.output else { continue };
        let r_out = required[out.0 as usize];
        if r_out == f64::INFINITY {
            continue;
        }
        let gd = gate_delay(cid);
        for &inp in &cell.inputs {
            let r = r_out - gd - wire_delay[inp.0 as usize];
            let slot = &mut required[inp.0 as usize];
            *slot = slot.min(r);
        }
    }

    // Per-cell slack: worst slack over incident signal nets.
    let mut cell_slack = vec![f64::INFINITY; n_cells];
    let slack_of = |net: NetId| -> f64 {
        let a = arrival[net.0 as usize];
        let r = required[net.0 as usize];
        if a == f64::NEG_INFINITY || r == f64::INFINITY {
            f64::INFINITY
        } else {
            r - a
        }
    };
    for (cid, cell) in design.cells_iter() {
        let mut s = f64::INFINITY;
        for &inp in &cell.inputs {
            if Some(inp) != clock {
                s = s.min(slack_of(inp));
            }
        }
        if let Some(out) = cell.output {
            s = s.min(slack_of(out));
        }
        cell_slack[cid.0 as usize] = s;
    }

    TimingReport {
        clock_period: period,
        arrival,
        required,
        endpoint_slacks,
        cell_slack,
        wire_delay,
        net_load,
    }
}

/// Static structure of a design's timing graph, cached across incremental
/// re-analyses: topological levels, fanin/fanout adjacency, and the layout
/// of the endpoint-slack vector. Depends only on the netlist and library,
/// never on placement or routing.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// Topological level per cell (combinational cells only; -1 for
    /// sequential, filler, and other untimed cells).
    level: Vec<i32>,
    /// Per net: combinational cells with the net among their inputs.
    comb_consumers: Vec<Vec<CellId>>,
    /// Per net: sequential cells whose D pin (`inputs[0]`) is the net.
    ff_consumers: Vec<Vec<CellId>>,
    /// Per net: how many primary outputs the net drives.
    po_count: Vec<u32>,
    /// Per net: the driving cell, when cell-driven.
    driver_cell: Vec<Option<CellId>>,
    /// Per net: level of the combinational driver (-1 when FF- or
    /// PI-driven).
    net_driver_level: Vec<i32>,
    /// Per net: every non-filler cell touching the net.
    incident_cells: Vec<Vec<CellId>>,
    /// Per cell: index of its `FlopData` endpoint in the slack vector
    /// (`usize::MAX` for non-sequential cells).
    ff_endpoint_idx: Vec<usize>,
    /// Index where `PrimaryOutput` endpoints start in the slack vector.
    po_endpoint_base: usize,
}

impl TimingGraph {
    /// Builds the cached graph structure for a design.
    pub fn new(design: &Design, tech: &Technology) -> Self {
        let n_nets = design.nets.len();
        let n_cells = design.cells.len();
        let mut comb_consumers: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut ff_consumers: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut po_count = vec![0u32; n_nets];
        let mut driver_cell: Vec<Option<CellId>> = vec![None; n_nets];
        let mut incident_cells: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut ff_endpoint_idx = vec![usize::MAX; n_cells];
        let mut n_ff = 0usize;
        for (cid, cell) in design.cells_iter() {
            let kind = tech.library.kind(cell.kind);
            if kind.is_filler() {
                continue;
            }
            for (pin, &inp) in cell.inputs.iter().enumerate() {
                if kind.is_sequential() {
                    if pin == 0 {
                        ff_consumers[inp.0 as usize].push(cid);
                    }
                } else {
                    comb_consumers[inp.0 as usize].push(cid);
                }
                incident_cells[inp.0 as usize].push(cid);
            }
            if let Some(out) = cell.output {
                driver_cell[out.0 as usize] = Some(cid);
                incident_cells[out.0 as usize].push(cid);
            }
            if kind.is_sequential() {
                ff_endpoint_idx[cid.0 as usize] = n_ff;
                n_ff += 1;
            }
        }
        for &po in &design.primary_outputs {
            po_count[po.0 as usize] += 1;
        }

        // Levelize the combinational cells (Kahn): a cell's level is one
        // past the deepest combinational producer among its inputs.
        let mut level = vec![-1i32; n_cells];
        let mut pending = vec![0u32; n_cells];
        let mut queue: std::collections::VecDeque<CellId> = std::collections::VecDeque::new();
        let is_comb = |c: CellId| -> bool {
            let k = tech.library.kind(design.cell(c).kind);
            !k.is_sequential() && !k.is_filler()
        };
        for (cid, cell) in design.cells_iter() {
            if !is_comb(cid) {
                continue;
            }
            let deg = cell
                .inputs
                .iter()
                .filter(|&&inp| matches!(design.net(inp).driver, NetDriver::Cell(c) if is_comb(c)))
                .count() as u32;
            pending[cid.0 as usize] = deg;
            if deg == 0 {
                level[cid.0 as usize] = 0;
                queue.push_back(cid);
            }
        }
        while let Some(cid) = queue.pop_front() {
            let lv = level[cid.0 as usize];
            if let Some(out) = design.cell(cid).output {
                for &c in &comb_consumers[out.0 as usize] {
                    let l = &mut level[c.0 as usize];
                    *l = (*l).max(lv + 1);
                    let p = &mut pending[c.0 as usize];
                    *p -= 1;
                    if *p == 0 {
                        queue.push_back(c);
                    }
                }
            }
        }

        let net_driver_level = (0..n_nets)
            .map(|n| match driver_cell[n] {
                Some(c) => level[c.0 as usize],
                None => -1,
            })
            .collect();

        Self {
            level,
            comb_consumers,
            ff_consumers,
            po_count,
            driver_cell,
            net_driver_level,
            incident_cells,
            ff_endpoint_idx,
            po_endpoint_base: n_ff,
        }
    }
}

/// Re-analyzes an edited layout against a cached base report, propagating
/// timing only through the fanout/fanin cones of nets whose extracted RC
/// differs from the base routing.
///
/// Arrival, required, endpoint, and per-cell slacks are recomputed with
/// the identical formulas [`analyze`] uses, over inputs that are either
/// unchanged base values or freshly recomputed ones — so the result is
/// bit-for-bit equal to a from-scratch `analyze(layout, routing, tech)`.
///
/// `dirty_nets`, when provided, bounds the RC diff: it must be a sorted,
/// deduplicated **superset** of the nets whose extracted RC can differ
/// between `base_routing` and `routing` (typically the router's
/// touched-net handoff — Phase-A patched nets plus RRR victims). Nets
/// outside the list are trusted unchanged and never inspected
/// (`sta.diff_skipped` counts them). Pass `None` when no such bound is
/// known — e.g. after a route-rule change, which moves every net's RC.
pub fn analyze_incremental(
    graph: &TimingGraph,
    base: &TimingReport,
    base_routing: &RoutingState,
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
    dirty_nets: Option<&[NetId]>,
) -> TimingReport {
    obs::span("sta.incremental", |_| {
        analyze_incremental_inner(graph, base, base_routing, layout, routing, tech, dirty_nets)
    })
}

/// Injection point covering incremental timing: checked on entry and every
/// 256 forward-cone relaxations (the STA-side granularity of the
/// cooperative eval deadline).
static STA_DIVERGE: faults::Point = faults::Point::new("sta.diverge");

#[allow(clippy::too_many_arguments)]
fn analyze_incremental_inner(
    graph: &TimingGraph,
    base: &TimingReport,
    base_routing: &RoutingState,
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
    dirty_nets: Option<&[NetId]>,
) -> TimingReport {
    use std::collections::BTreeSet;
    STA_DIVERGE.check();
    let design = layout.design();
    let clock = design.clock;
    let period = design.constraints.clock_period;

    // 1. RC diff: find the nets whose parasitics moved. A dirty list
    // bounds the sweep to router-touched nets; iterating it in its sorted
    // order keeps `changed_nets` identical to what the full sweep builds,
    // so everything downstream is unaffected by which path ran.
    let mut changed_nets: Vec<NetId> = Vec::new();
    match dirty_nets {
        Some(dirty) => {
            debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for &nid in dirty {
                if Some(nid) == clock {
                    continue;
                }
                if routing.net_rc(nid) != base_routing.net_rc(nid) {
                    changed_nets.push(nid);
                }
            }
            metrics()
                .diff_skipped
                .add((design.nets.len() - dirty.len()) as u64);
        }
        None => {
            for (nid, _) in design.nets_iter() {
                if Some(nid) == clock {
                    continue;
                }
                if routing.net_rc(nid) != base_routing.net_rc(nid) {
                    changed_nets.push(nid);
                }
            }
        }
    }
    if changed_nets.is_empty() {
        metrics().clean_hits.incr();
        return base.clone();
    }
    // Dense edits (an NDR change perturbs every routed net) pay the cone
    // machinery's worklist overhead for no savings — the from-scratch
    // pass, which computes the identical result, is cheaper there.
    if changed_nets.len() * 4 > design.nets.len() {
        metrics().cone_fallbacks.incr();
        obs::trace(obs::Topic::Sta, || {
            format!(
                "sta: dense edit ({} of {} nets) — from-scratch fallback",
                changed_nets.len(),
                design.nets.len(),
            )
        });
        return analyze_inner(layout, routing, tech);
    }
    metrics().cone_nets.add(changed_nets.len() as u64);

    let TimingReport {
        clock_period,
        mut arrival,
        mut required,
        mut endpoint_slacks,
        mut cell_slack,
        mut wire_delay,
        mut net_load,
    } = base.clone();
    let mut changed: BTreeSet<u32> = BTreeSet::new();
    for &nid in &changed_nets {
        wire_delay[nid.0 as usize] = wire_delay_ps(design, routing, tech, nid);
        net_load[nid.0 as usize] = net_load_ff(design, routing, tech, nid);
        changed.insert(nid.0);
    }
    let gate_delay = |cell: CellId, net_load: &[f64]| -> f64 {
        let c = design.cell(cell);
        let kind = tech.library.kind(c.kind);
        let load = c.output.map_or(0.0, |o| net_load[o.0 as usize]);
        kind.delay(load)
    };

    // 2. Forward cone: re-evaluate consumers (input arrival terms moved)
    // and combinational drivers (their gate delay reads the changed load)
    // in ascending level order; propagate on value change.
    let mut fwd: BTreeSet<(i32, u32)> = BTreeSet::new();
    for &n in &changed {
        for &c in &graph.comb_consumers[n as usize] {
            fwd.insert((graph.level[c.0 as usize], c.0));
        }
        if let Some(d) = graph.driver_cell[n as usize] {
            if graph.level[d.0 as usize] >= 0 {
                fwd.insert((graph.level[d.0 as usize], d.0));
            }
        }
    }
    let mut arr_changed: BTreeSet<u32> = BTreeSet::new();
    let mut fwd_steps: u64 = 0;
    while let Some((_, cidx)) = fwd.pop_first() {
        fwd_steps += 1;
        if fwd_steps & 0xFF == 0 {
            STA_DIVERGE.check();
        }
        let cid = CellId(cidx);
        let cell = design.cell(cid);
        let mut in_arrival = 0.0f64;
        for &inp in &cell.inputs {
            let a = arrival[inp.0 as usize];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            in_arrival = in_arrival.max(a + wire_delay[inp.0 as usize]);
        }
        let out_arrival = in_arrival + gate_delay(cid, &net_load);
        if let Some(out) = cell.output {
            let o = out.0 as usize;
            if arrival[o] != out_arrival {
                arrival[o] = out_arrival;
                arr_changed.insert(out.0);
                for &c in &graph.comb_consumers[o] {
                    fwd.insert((graph.level[c.0 as usize], c.0));
                }
            }
        }
    }

    // 3. Backward cone: pull-recompute each affected net's required time
    // (the full min over its FF, PO, and combinational-consumer terms) in
    // descending driver-level order, so every consumer's required time is
    // final before it is read.
    let mut bwd: BTreeSet<(i32, u32)> = BTreeSet::new();
    let seed_driver_inputs = |bwd: &mut BTreeSet<(i32, u32)>, n: u32| {
        if let Some(d) = graph.driver_cell[n as usize] {
            if graph.level[d.0 as usize] >= 0 {
                for &inp in &design.cell(d).inputs {
                    bwd.insert((graph.net_driver_level[inp.0 as usize], inp.0));
                }
            }
        }
    };
    for &n in &changed {
        bwd.insert((graph.net_driver_level[n as usize], n));
        // The driver's gate delay changed with its load, which shifts the
        // required times of the driver's own inputs.
        seed_driver_inputs(&mut bwd, n);
    }
    let mut req_changed: BTreeSet<u32> = BTreeSet::new();
    while let Some((_, nidx)) = bwd.pop_last() {
        let ni = nidx as usize;
        let mut r = f64::INFINITY;
        for &ff in &graph.ff_consumers[ni] {
            let kind = tech.library.kind(design.cell(ff).kind);
            r = r.min((period - kind.setup) - wire_delay[ni]);
        }
        if graph.po_count[ni] > 0 {
            r = r.min(period - design.constraints.output_delay);
        }
        for &c in &graph.comb_consumers[ni] {
            let Some(out) = design.cell(c).output else {
                continue;
            };
            let r_out = required[out.0 as usize];
            if r_out == f64::INFINITY {
                continue;
            }
            r = r.min(r_out - gate_delay(c, &net_load) - wire_delay[ni]);
        }
        if required[ni] != r {
            required[ni] = r;
            req_changed.insert(nidx);
            seed_driver_inputs(&mut bwd, nidx);
        }
    }

    // 4. Patch endpoint slacks whose inputs moved.
    for &n in changed.union(&arr_changed) {
        let ni = n as usize;
        for &ff in &graph.ff_consumers[ni] {
            let kind = tech.library.kind(design.cell(ff).kind);
            let a = arrival[ni];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            let at_pin = a + wire_delay[ni];
            endpoint_slacks[graph.ff_endpoint_idx[ff.0 as usize]].1 =
                (period - kind.setup) - at_pin;
        }
    }
    for (i, &po) in design.primary_outputs.iter().enumerate() {
        if arr_changed.contains(&po.0) {
            let a = arrival[po.0 as usize];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            endpoint_slacks[graph.po_endpoint_base + i].1 =
                (period - design.constraints.output_delay) - a;
        }
    }

    // 5. Patch per-cell slack around every net whose slack moved.
    let slack_of = |net: usize, arrival: &[f64], required: &[f64]| -> f64 {
        let a = arrival[net];
        let r = required[net];
        if a == f64::NEG_INFINITY || r == f64::INFINITY {
            f64::INFINITY
        } else {
            r - a
        }
    };
    let mut touched: BTreeSet<u32> = BTreeSet::new();
    for &n in arr_changed.union(&req_changed) {
        for &c in &graph.incident_cells[n as usize] {
            touched.insert(c.0);
        }
    }
    for &cidx in &touched {
        let cell = design.cell(CellId(cidx));
        let mut s = f64::INFINITY;
        for &inp in &cell.inputs {
            if Some(inp) != clock {
                s = s.min(slack_of(inp.0 as usize, &arrival, &required));
            }
        }
        if let Some(out) = cell.output {
            s = s.min(slack_of(out.0 as usize, &arrival, &required));
        }
        cell_slack[cidx as usize] = s;
    }

    TimingReport {
        clock_period,
        arrival,
        required,
        endpoint_slacks,
        cell_slack,
        wire_delay,
        net_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::RouteRule;

    fn timed(period_factor: f64) -> (Technology, Layout, TimingReport) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = period_factor;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let timing = analyze(&layout, &routing, &tech);
        (tech, layout, timing)
    }

    #[test]
    fn loose_clock_meets_timing() {
        let (_, _, t) = timed(2.5);
        assert_eq!(t.tns_ps(), 0.0, "wns {}", t.worst_slack_ps());
        assert!(t.worst_slack_ps() > 0.0);
    }

    #[test]
    fn impossible_clock_fails_timing() {
        let (_, _, t) = timed(0.05);
        assert!(t.tns_ps() < 0.0);
        assert!(t.wns_ps() < 0.0);
        assert!(t.failing_endpoints() > 0);
    }

    #[test]
    fn tighter_clock_means_worse_tns() {
        let (_, _, loose) = timed(1.2);
        let (_, _, tight) = timed(0.7);
        assert!(tight.tns_ps() <= loose.tns_ps());
    }

    #[test]
    fn slack_consistency_between_endpoints_and_nets() {
        let (_, layout, t) = timed(1.0);
        // Worst endpoint slack must equal the worst net slack (paths end at
        // endpoints).
        let worst_ep = t.worst_slack_ps();
        let worst_net = layout
            .design()
            .nets_iter()
            .map(|(id, _)| t.net_slack_ps(id))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (worst_ep - worst_net).abs() < 1.0,
            "endpoint {worst_ep} vs net {worst_net}"
        );
    }

    #[test]
    fn critical_cells_have_finite_slack() {
        let (_, layout, t) = timed(1.2);
        for &c in &layout.design().critical_cells {
            let s = t.cell_slack_ps(c);
            assert!(s.is_finite(), "critical cell {} slack {s}", c.0);
        }
    }

    #[test]
    fn incremental_matches_full_bit_for_bit() {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.9; // tight enough that required times bind
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let base = analyze(&layout, &routing, &tech);
        let graph = TimingGraph::new(layout.design(), &tech);

        // An NDR change perturbs the RC of (nearly) every routed net.
        let mut edited = layout.clone();
        edited.set_route_rule(RouteRule::uniform(1.5));
        let rerouted = route::route_design(&edited, &tech);
        let full = analyze(&edited, &rerouted, &tech);
        let inc = analyze_incremental(&graph, &base, &routing, &edited, &rerouted, &tech, None);
        assert_eq!(full.arrival, inc.arrival);
        assert_eq!(full.required, inc.required);
        assert_eq!(full.endpoint_slacks, inc.endpoint_slacks);
        assert_eq!(full.cell_slack, inc.cell_slack);
        assert_eq!(full.wire_delay, inc.wire_delay);
        assert_eq!(full.net_load, inc.net_load);
        assert_eq!(full.tns_ps(), inc.tns_ps());

        // No RC change at all must return the base report unchanged.
        let same = analyze_incremental(&graph, &base, &routing, &layout, &routing, &tech, None);
        assert_eq!(same.arrival, base.arrival);
        assert_eq!(same.endpoint_slacks, base.endpoint_slacks);
    }

    /// A `dirty_nets` superset must not change the result: the bounded RC
    /// diff builds the same `changed_nets` list as the full sweep.
    #[test]
    fn dirty_list_matches_unbounded_diff() {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.9;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let base = analyze(&layout, &routing, &tech);
        let graph = TimingGraph::new(layout.design(), &tech);

        // Move one movable cell: only its incident nets' RC can change.
        let mut edited = layout.clone();
        let moved = edited
            .design()
            .cells_iter()
            .map(|(id, _)| id)
            .find(|&id| !edited.occupancy().is_locked(id))
            .expect("tiny design has movable cells");
        let fp = *edited.floorplan();
        let pos = edited.cell_pos(moved).unwrap();
        let w = edited.occupancy().cell_width(moved).unwrap();
        let target = edited
            .occupancy()
            .find_gap(
                w,
                geom::SitePos::new(fp.rows() - 1 - pos.row, pos.col),
                fp.rows().max(fp.cols()),
            )
            .expect("gap exists");
        edited.occupancy_mut().move_cell(moved, target).unwrap();
        let rerouted = route::route_design(&edited, &tech);

        let unbounded =
            analyze_incremental(&graph, &base, &routing, &edited, &rerouted, &tech, None);
        // The exact-changed set plus some untouched nets is a valid
        // superset; here the simplest correct one is "every net" — the
        // point is the bounded path, not the bound's tightness.
        let all: Vec<netlist::NetId> = edited.design().nets_iter().map(|(id, _)| id).collect();
        let bounded = analyze_incremental(
            &graph,
            &base,
            &routing,
            &edited,
            &rerouted,
            &tech,
            Some(&all),
        );
        assert_eq!(unbounded.arrival, bounded.arrival);
        assert_eq!(unbounded.endpoint_slacks, bounded.endpoint_slacks);
        assert_eq!(unbounded.cell_slack, bounded.cell_slack);
        assert_eq!(unbounded.wire_delay, bounded.wire_delay);

        // A tight superset — only the nets whose RC actually moved — must
        // also reproduce the unbounded result bit for bit.
        let tight: Vec<netlist::NetId> = edited
            .design()
            .nets_iter()
            .map(|(id, _)| id)
            .filter(|&id| rerouted.net_rc(id) != routing.net_rc(id))
            .collect();
        let bounded_tight = analyze_incremental(
            &graph,
            &base,
            &routing,
            &edited,
            &rerouted,
            &tech,
            Some(&tight),
        );
        assert_eq!(unbounded.arrival, bounded_tight.arrival);
        assert_eq!(unbounded.endpoint_slacks, bounded_tight.endpoint_slacks);
        assert_eq!(unbounded.cell_slack, bounded_tight.cell_slack);
        assert_eq!(unbounded.wire_delay, bounded_tight.wire_delay);
        assert_eq!(unbounded.net_load, bounded_tight.net_load);
    }

    #[test]
    fn longer_wires_increase_delay() {
        // Same design, worse placement (no refinement) must not have
        // better worst slack than the refined one.
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut bad = Layout::empty_floorplan(design.clone(), &tech, 0.6);
        place::global_place(&mut bad, &tech, 1);
        // Scramble: move cells far from optimal via a different seed and no
        // refinement, then compare against a refined twin.
        let mut good = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut good, &tech, 1);
        place::refine_wirelength(&mut good, &tech, 3, 1);
        bad.set_route_rule(RouteRule::default());
        let tr_bad = analyze(&bad, &route::route_design(&bad, &tech), &tech);
        let tr_good = analyze(&good, &route::route_design(&good, &tech), &tech);
        assert!(tr_good.worst_slack_ps() >= tr_bad.worst_slack_ps() - 1.0);
    }
}
