use layout::Layout;
use netlist::{CellId, Design, NetId, Sink};
use route::RoutingState;
use tech::Technology;

use crate::report::{EndpointKind, TimingReport};

/// Load capacitance seen by a net's driver: extracted wire capacitance plus
/// every sink pin's input capacitance.
fn net_load_ff(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let mut c = routing.net_rc(net).cap;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    c
}

/// Lumped Elmore wire delay from a net's driver to its sinks:
/// `R_wire · (C_wire / 2 + C_pins)`.
fn wire_delay_ps(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let rc = routing.net_rc(net);
    let mut pin_c = 0.0;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            pin_c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    rc.res * (rc.cap / 2.0 + pin_c)
}

/// Performs setup-check static timing analysis on a routed layout.
///
/// Path starts are primary inputs (arriving at `input_delay`) and flip-flop
/// Q pins (arriving at clock-to-Q); path ends are flip-flop D pins
/// (required at `T - setup`) and primary outputs (required at
/// `T - output_delay`). Combinational loops, if any, are broken by treating
/// unresolved arrivals as path starts at time zero (and are absent from the
/// benchmark generator's output by construction).
pub fn analyze(layout: &Layout, routing: &RoutingState, tech: &Technology) -> TimingReport {
    let design = layout.design();
    let n_nets = design.nets.len();
    let n_cells = design.cells.len();
    let period = design.constraints.clock_period;
    let clock = design.clock;

    // Precompute per-net wire delay and per-cell gate delay.
    let mut wire_delay = vec![0.0f64; n_nets];
    let mut net_load = vec![0.0f64; n_nets];
    for (nid, _) in design.nets_iter() {
        if Some(nid) == clock {
            continue;
        }
        wire_delay[nid.0 as usize] = wire_delay_ps(design, routing, tech, nid);
        net_load[nid.0 as usize] = net_load_ff(design, routing, tech, nid);
    }
    let gate_delay = |cell: CellId| -> f64 {
        let c = design.cell(cell);
        let kind = tech.library.kind(c.kind);
        let load = c.output.map_or(0.0, |o| net_load[o.0 as usize]);
        kind.delay(load)
    };

    // Forward propagation in topological order (Kahn over combinational
    // cells; flop outputs and PIs are sources).
    let mut arrival = vec![f64::NEG_INFINITY; n_nets];
    let mut indegree = vec![0u32; n_cells];
    let mut ready: Vec<CellId> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_filler() {
            continue;
        }
        if kind.is_sequential() {
            // Q arrival = clock-to-Q (clock arrives at the active edge, 0).
            if let Some(q) = cell.output {
                arrival[q.0 as usize] = kind.intrinsic;
            }
        } else {
            indegree[cid.0 as usize] = cell.inputs.len() as u32;
            if cell.inputs.is_empty() {
                ready.push(cid);
            }
        }
    }
    for &pi in &design.primary_inputs {
        if Some(pi) == clock {
            continue;
        }
        arrival[pi.0 as usize] = design.constraints.input_delay;
    }
    // Seed readiness from already-arrived nets.
    let mut pending: Vec<u32> = indegree.clone();
    let mut queue: std::collections::VecDeque<CellId> = ready.into_iter().collect();
    for (nid, net) in design.nets_iter() {
        if arrival[nid.0 as usize] == f64::NEG_INFINITY {
            continue;
        }
        for s in &net.sinks {
            if let Sink::CellInput { cell, .. } = s {
                let c = design.cell(*cell);
                if !tech.library.kind(c.kind).is_sequential() {
                    let p = &mut pending[cell.0 as usize];
                    *p -= 1;
                    if *p == 0 {
                        queue.push_back(*cell);
                    }
                }
            }
        }
    }
    let mut processed = 0usize;
    let n_comb = design
        .cells
        .iter()
        .filter(|c| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .count();
    while let Some(cid) = queue.pop_front() {
        processed += 1;
        let cell = design.cell(cid);
        let mut in_arrival = 0.0f64;
        for &inp in &cell.inputs {
            let a = arrival[inp.0 as usize];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            in_arrival = in_arrival.max(a + wire_delay[inp.0 as usize]);
        }
        let out_arrival = in_arrival + gate_delay(cid);
        if let Some(out) = cell.output {
            debug_assert_eq!(arrival[out.0 as usize], f64::NEG_INFINITY);
            arrival[out.0 as usize] = out_arrival;
            for s in &design.net(out).sinks {
                if let Sink::CellInput { cell: sc, .. } = s {
                    let c = design.cell(*sc);
                    if !tech.library.kind(c.kind).is_sequential() {
                        let p = &mut pending[sc.0 as usize];
                        *p -= 1;
                        if *p == 0 {
                            queue.push_back(*sc);
                        }
                    }
                }
            }
        }
    }
    debug_assert_eq!(processed, n_comb, "combinational loop detected");

    // Endpoint slacks.
    let mut endpoint_slacks: Vec<(EndpointKind, f64)> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if !kind.is_sequential() {
            continue;
        }
        let d = cell.inputs[0];
        let a = arrival[d.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let at_pin = a + wire_delay[d.0 as usize];
        let slack = (period - kind.setup) - at_pin;
        endpoint_slacks.push((EndpointKind::FlopData(cid), slack));
    }
    for (i, &po) in design.primary_outputs.iter().enumerate() {
        let a = arrival[po.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let slack = (period - design.constraints.output_delay) - a;
        endpoint_slacks.push((EndpointKind::PrimaryOutput(i as u32), slack));
    }

    // Backward propagation of required times in reverse topological order.
    let mut required = vec![f64::INFINITY; n_nets];
    // Endpoint requirements.
    for (_cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_sequential() {
            let d = cell.inputs[0];
            let r = (period - kind.setup) - wire_delay[d.0 as usize];
            let slot = &mut required[d.0 as usize];
            *slot = slot.min(r);
        }
    }
    for &po in &design.primary_outputs {
        let r = period - design.constraints.output_delay;
        let slot = &mut required[po.0 as usize];
        *slot = slot.min(r);
    }
    // Process combinational cells in reverse order of arrival finalization:
    // sort by arrival descending gives a valid reverse topological order.
    let mut comb_cells: Vec<CellId> = design
        .cells_iter()
        .filter(|(_, c)| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .map(|(id, _)| id)
        .collect();
    comb_cells.sort_by(|&a, &b| {
        let aa = design.cell(a).output.map_or(0.0, |o| arrival[o.0 as usize]);
        let ab = design.cell(b).output.map_or(0.0, |o| arrival[o.0 as usize]);
        ab.partial_cmp(&aa).expect("arrivals are finite")
    });
    for cid in comb_cells {
        let cell = design.cell(cid);
        let Some(out) = cell.output else { continue };
        let r_out = required[out.0 as usize];
        if r_out == f64::INFINITY {
            continue;
        }
        let gd = gate_delay(cid);
        for &inp in &cell.inputs {
            let r = r_out - gd - wire_delay[inp.0 as usize];
            let slot = &mut required[inp.0 as usize];
            *slot = slot.min(r);
        }
    }

    // Per-cell slack: worst slack over incident signal nets.
    let mut cell_slack = vec![f64::INFINITY; n_cells];
    let slack_of = |net: NetId| -> f64 {
        let a = arrival[net.0 as usize];
        let r = required[net.0 as usize];
        if a == f64::NEG_INFINITY || r == f64::INFINITY {
            f64::INFINITY
        } else {
            r - a
        }
    };
    for (cid, cell) in design.cells_iter() {
        let mut s = f64::INFINITY;
        for &inp in &cell.inputs {
            if Some(inp) != clock {
                s = s.min(slack_of(inp));
            }
        }
        if let Some(out) = cell.output {
            s = s.min(slack_of(out));
        }
        cell_slack[cid.0 as usize] = s;
    }

    TimingReport {
        clock_period: period,
        arrival,
        required,
        endpoint_slacks,
        cell_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::RouteRule;

    fn timed(period_factor: f64) -> (Technology, Layout, TimingReport) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = period_factor;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let timing = analyze(&layout, &routing, &tech);
        (tech, layout, timing)
    }

    #[test]
    fn loose_clock_meets_timing() {
        let (_, _, t) = timed(2.5);
        assert_eq!(t.tns_ps(), 0.0, "wns {}", t.worst_slack_ps());
        assert!(t.worst_slack_ps() > 0.0);
    }

    #[test]
    fn impossible_clock_fails_timing() {
        let (_, _, t) = timed(0.05);
        assert!(t.tns_ps() < 0.0);
        assert!(t.wns_ps() < 0.0);
        assert!(t.failing_endpoints() > 0);
    }

    #[test]
    fn tighter_clock_means_worse_tns() {
        let (_, _, loose) = timed(1.2);
        let (_, _, tight) = timed(0.7);
        assert!(tight.tns_ps() <= loose.tns_ps());
    }

    #[test]
    fn slack_consistency_between_endpoints_and_nets() {
        let (_, layout, t) = timed(1.0);
        // Worst endpoint slack must equal the worst net slack (paths end at
        // endpoints).
        let worst_ep = t.worst_slack_ps();
        let worst_net = layout
            .design()
            .nets_iter()
            .map(|(id, _)| t.net_slack_ps(id))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (worst_ep - worst_net).abs() < 1.0,
            "endpoint {worst_ep} vs net {worst_net}"
        );
    }

    #[test]
    fn critical_cells_have_finite_slack() {
        let (_, layout, t) = timed(1.2);
        for &c in &layout.design().critical_cells {
            let s = t.cell_slack_ps(c);
            assert!(s.is_finite(), "critical cell {} slack {s}", c.0);
        }
    }

    #[test]
    fn longer_wires_increase_delay() {
        // Same design, worse placement (no refinement) must not have
        // better worst slack than the refined one.
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut bad = Layout::empty_floorplan(design.clone(), &tech, 0.6);
        place::global_place(&mut bad, &tech, 1);
        // Scramble: move cells far from optimal via a different seed and no
        // refinement, then compare against a refined twin.
        let mut good = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut good, &tech, 1);
        place::refine_wirelength(&mut good, &tech, 3, 1);
        bad.set_route_rule(RouteRule::default());
        let tr_bad = analyze(&bad, &route::route_design(&bad, &tech), &tech);
        let tr_good = analyze(&good, &route::route_design(&good, &tech), &tech);
        assert!(tr_good.worst_slack_ps() >= tr_bad.worst_slack_ps() - 1.0);
    }
}
