use layout::Layout;
use netlist::{CellId, Design, NetDriver, NetId, Sink};
use route::RoutingState;
use tech::Technology;

use crate::report::{EndpointKind, TimingReport};

/// Load capacitance seen by a net's driver: extracted wire capacitance plus
/// every sink pin's input capacitance.
fn net_load_ff(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let mut c = routing.net_rc(net).cap;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    c
}

/// Lumped Elmore wire delay from a net's driver to its sinks:
/// `R_wire · (C_wire / 2 + C_pins)`.
fn wire_delay_ps(design: &Design, routing: &RoutingState, tech: &Technology, net: NetId) -> f64 {
    let rc = routing.net_rc(net);
    let mut pin_c = 0.0;
    for s in &design.net(net).sinks {
        if let Sink::CellInput { cell, .. } = s {
            pin_c += tech.library.kind(design.cell(*cell).kind).input_cap;
        }
    }
    rc.res * (rc.cap / 2.0 + pin_c)
}

/// Performs setup-check static timing analysis on a routed layout.
///
/// Path starts are primary inputs (arriving at `input_delay`) and flip-flop
/// Q pins (arriving at clock-to-Q); path ends are flip-flop D pins
/// (required at `T - setup`) and primary outputs (required at
/// `T - output_delay`). Combinational loops, if any, are broken by treating
/// unresolved arrivals as path starts at time zero (and are absent from the
/// benchmark generator's output by construction).
pub fn analyze(layout: &Layout, routing: &RoutingState, tech: &Technology) -> TimingReport {
    obs::span("sta.full", |_| analyze_inner(layout, routing, tech))
}

/// Registry-backed STA observability handles (resolved once per process).
struct StaMetrics {
    /// Incremental analyses satisfied from the base report (no RC moved).
    clean_hits: obs::Counter,
    /// Nets re-propagated through the frontier machinery.
    cone_nets: obs::Counter,
    /// Nets the RC diff never inspected because a caller-supplied
    /// `dirty_nets` list proved them untouched.
    diff_skipped: obs::Counter,
    /// Cells the forward frontier actually re-evaluated, per call.
    frontier_len: obs::Histogram,
    /// Re-evaluated cells whose output arrival came out unchanged — the
    /// frontier stopped growing through them (converged early).
    early_exits: obs::Counter,
}

fn metrics() -> &'static StaMetrics {
    static METRICS: std::sync::OnceLock<StaMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StaMetrics {
        clean_hits: obs::counter("sta.clean_hits"),
        cone_nets: obs::counter("sta.cone_nets"),
        diff_skipped: obs::counter("sta.diff_skipped"),
        frontier_len: obs::histogram("sta.frontier_len"),
        early_exits: obs::counter("sta.early_exits"),
    })
}

fn analyze_inner(layout: &Layout, routing: &RoutingState, tech: &Technology) -> TimingReport {
    let design = layout.design();
    let n_nets = design.nets.len();
    let n_cells = design.cells.len();
    let period = design.constraints.clock_period;
    let clock = design.clock;

    // Precompute per-net wire delay and per-cell gate delay.
    let mut wire_delay = vec![0.0f64; n_nets];
    let mut net_load = vec![0.0f64; n_nets];
    for (nid, _) in design.nets_iter() {
        if Some(nid) == clock {
            continue;
        }
        wire_delay[nid.0 as usize] = wire_delay_ps(design, routing, tech, nid);
        net_load[nid.0 as usize] = net_load_ff(design, routing, tech, nid);
    }
    let gate_delay = |cell: CellId| -> f64 {
        let c = design.cell(cell);
        let kind = tech.library.kind(c.kind);
        let load = c.output.map_or(0.0, |o| net_load[o.0 as usize]);
        kind.delay(load)
    };

    // Forward propagation in topological order (Kahn over combinational
    // cells; flop outputs and PIs are sources).
    let mut arrival = vec![f64::NEG_INFINITY; n_nets];
    let mut indegree = vec![0u32; n_cells];
    let mut ready: Vec<CellId> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_filler() {
            continue;
        }
        if kind.is_sequential() {
            // Q arrival = clock-to-Q (clock arrives at the active edge, 0).
            if let Some(q) = cell.output {
                arrival[q.0 as usize] = kind.intrinsic;
            }
        } else {
            indegree[cid.0 as usize] = cell.inputs.len() as u32;
            if cell.inputs.is_empty() {
                ready.push(cid);
            }
        }
    }
    for &pi in &design.primary_inputs {
        if Some(pi) == clock {
            continue;
        }
        arrival[pi.0 as usize] = design.constraints.input_delay;
    }
    // Seed readiness from already-arrived nets.
    let mut pending: Vec<u32> = indegree.clone();
    let mut queue: std::collections::VecDeque<CellId> = ready.into_iter().collect();
    for (nid, net) in design.nets_iter() {
        if arrival[nid.0 as usize] == f64::NEG_INFINITY {
            continue;
        }
        for s in &net.sinks {
            if let Sink::CellInput { cell, .. } = s {
                let c = design.cell(*cell);
                if !tech.library.kind(c.kind).is_sequential() {
                    let p = &mut pending[cell.0 as usize];
                    *p -= 1;
                    if *p == 0 {
                        queue.push_back(*cell);
                    }
                }
            }
        }
    }
    let mut processed = 0usize;
    let n_comb = design
        .cells
        .iter()
        .filter(|c| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .count();
    while let Some(cid) = queue.pop_front() {
        processed += 1;
        let cell = design.cell(cid);
        let mut in_arrival = 0.0f64;
        for &inp in &cell.inputs {
            let a = arrival[inp.0 as usize];
            let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
            in_arrival = in_arrival.max(a + wire_delay[inp.0 as usize]);
        }
        let out_arrival = in_arrival + gate_delay(cid);
        if let Some(out) = cell.output {
            debug_assert_eq!(arrival[out.0 as usize], f64::NEG_INFINITY);
            arrival[out.0 as usize] = out_arrival;
            for s in &design.net(out).sinks {
                if let Sink::CellInput { cell: sc, .. } = s {
                    let c = design.cell(*sc);
                    if !tech.library.kind(c.kind).is_sequential() {
                        let p = &mut pending[sc.0 as usize];
                        *p -= 1;
                        if *p == 0 {
                            queue.push_back(*sc);
                        }
                    }
                }
            }
        }
    }
    debug_assert_eq!(processed, n_comb, "combinational loop detected");

    // Endpoint slacks.
    let mut endpoint_slacks: Vec<(EndpointKind, f64)> = Vec::new();
    for (cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if !kind.is_sequential() {
            continue;
        }
        let d = cell.inputs[0];
        let a = arrival[d.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let at_pin = a + wire_delay[d.0 as usize];
        let slack = (period - kind.setup) - at_pin;
        endpoint_slacks.push((EndpointKind::FlopData(cid), slack));
    }
    for (i, &po) in design.primary_outputs.iter().enumerate() {
        let a = arrival[po.0 as usize];
        let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
        let slack = (period - design.constraints.output_delay) - a;
        endpoint_slacks.push((EndpointKind::PrimaryOutput(i as u32), slack));
    }

    // Backward propagation of required times in reverse topological order.
    let mut required = vec![f64::INFINITY; n_nets];
    // Endpoint requirements.
    for (_cid, cell) in design.cells_iter() {
        let kind = tech.library.kind(cell.kind);
        if kind.is_sequential() {
            let d = cell.inputs[0];
            let r = (period - kind.setup) - wire_delay[d.0 as usize];
            let slot = &mut required[d.0 as usize];
            *slot = slot.min(r);
        }
    }
    for &po in &design.primary_outputs {
        let r = period - design.constraints.output_delay;
        let slot = &mut required[po.0 as usize];
        *slot = slot.min(r);
    }
    // Process combinational cells in reverse order of arrival finalization:
    // sort by arrival descending gives a valid reverse topological order.
    let mut comb_cells: Vec<CellId> = design
        .cells_iter()
        .filter(|(_, c)| {
            let k = tech.library.kind(c.kind);
            !k.is_sequential() && !k.is_filler()
        })
        .map(|(id, _)| id)
        .collect();
    comb_cells.sort_by(|&a, &b| {
        let aa = design.cell(a).output.map_or(0.0, |o| arrival[o.0 as usize]);
        let ab = design.cell(b).output.map_or(0.0, |o| arrival[o.0 as usize]);
        ab.partial_cmp(&aa).expect("arrivals are finite")
    });
    for cid in comb_cells {
        let cell = design.cell(cid);
        let Some(out) = cell.output else { continue };
        let r_out = required[out.0 as usize];
        if r_out == f64::INFINITY {
            continue;
        }
        let gd = gate_delay(cid);
        for &inp in &cell.inputs {
            let r = r_out - gd - wire_delay[inp.0 as usize];
            let slot = &mut required[inp.0 as usize];
            *slot = slot.min(r);
        }
    }

    // Per-cell slack: worst slack over incident signal nets.
    let mut cell_slack = vec![f64::INFINITY; n_cells];
    let slack_of = |net: NetId| -> f64 {
        let a = arrival[net.0 as usize];
        let r = required[net.0 as usize];
        if a == f64::NEG_INFINITY || r == f64::INFINITY {
            f64::INFINITY
        } else {
            r - a
        }
    };
    for (cid, cell) in design.cells_iter() {
        let mut s = f64::INFINITY;
        for &inp in &cell.inputs {
            if Some(inp) != clock {
                s = s.min(slack_of(inp));
            }
        }
        if let Some(out) = cell.output {
            s = s.min(slack_of(out));
        }
        cell_slack[cid.0 as usize] = s;
    }

    TimingReport {
        clock_period: period,
        arrival,
        required,
        endpoint_slacks,
        cell_slack,
        wire_delay,
        net_load,
    }
}

/// Static structure of a design's timing graph, cached across incremental
/// re-analyses: topological levels, fanin/fanout adjacency, and the layout
/// of the endpoint-slack vector. Depends only on the netlist and library,
/// never on placement or routing.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// Topological level per cell (combinational cells only; -1 for
    /// sequential, filler, and other untimed cells).
    level: Vec<i32>,
    /// Per net: combinational cells with the net among their inputs.
    comb_consumers: Vec<Vec<CellId>>,
    /// Per net: sequential cells whose D pin (`inputs[0]`) is the net.
    ff_consumers: Vec<Vec<CellId>>,
    /// Per net: how many primary outputs the net drives.
    po_count: Vec<u32>,
    /// Per net: the driving cell, when cell-driven.
    driver_cell: Vec<Option<CellId>>,
    /// Per net: level of the combinational driver (-1 when FF- or
    /// PI-driven).
    net_driver_level: Vec<i32>,
    /// Per net: every non-filler cell touching the net.
    incident_cells: Vec<Vec<CellId>>,
    /// Per cell: index of its `FlopData` endpoint in the slack vector
    /// (`usize::MAX` for non-sequential cells).
    ff_endpoint_idx: Vec<usize>,
    /// Index where `PrimaryOutput` endpoints start in the slack vector.
    po_endpoint_base: usize,
    /// Deepest combinational level (-1 when the design has no
    /// combinational cells); bounds the frontier scratch's bucket count.
    max_level: i32,
    /// Per cell: intrinsic gate delay in ps (0 for untimed cells).
    /// Flattened out of the library so the propagation loops read one
    /// array instead of chasing `cell -> kind -> library` pointers.
    delay_intrinsic: Vec<f64>,
    /// Per cell: drive resistance term of the linear delay model (ps/fF).
    delay_drive: Vec<f64>,
    /// Per cell: setup time in ps (0 for non-sequential cells).
    setup: Vec<f64>,
    /// Per cell: driven net id (`u32::MAX` when the cell has no output).
    cell_output: Vec<u32>,
    /// CSR offsets into [`cell_in_nets`](Self::cell_in_nets), one slot
    /// per cell plus a tail.
    cell_in_off: Vec<u32>,
    /// Flattened per-cell input net ids (all cells, in cell order).
    cell_in_nets: Vec<u32>,
}

impl TimingGraph {
    /// Builds the cached graph structure for a design.
    pub fn new(design: &Design, tech: &Technology) -> Self {
        let n_nets = design.nets.len();
        let n_cells = design.cells.len();
        let mut comb_consumers: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut ff_consumers: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut po_count = vec![0u32; n_nets];
        let mut driver_cell: Vec<Option<CellId>> = vec![None; n_nets];
        let mut incident_cells: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
        let mut ff_endpoint_idx = vec![usize::MAX; n_cells];
        let mut delay_intrinsic = vec![0.0; n_cells];
        let mut delay_drive = vec![0.0; n_cells];
        let mut setup = vec![0.0; n_cells];
        let mut cell_output = vec![u32::MAX; n_cells];
        let mut n_ff = 0usize;
        for (cid, cell) in design.cells_iter() {
            let kind = tech.library.kind(cell.kind);
            delay_intrinsic[cid.0 as usize] = kind.intrinsic;
            delay_drive[cid.0 as usize] = kind.drive_res;
            setup[cid.0 as usize] = kind.setup;
            if let Some(out) = cell.output {
                cell_output[cid.0 as usize] = out.0;
            }
            if kind.is_filler() {
                continue;
            }
            for (pin, &inp) in cell.inputs.iter().enumerate() {
                if kind.is_sequential() {
                    if pin == 0 {
                        ff_consumers[inp.0 as usize].push(cid);
                    }
                } else {
                    comb_consumers[inp.0 as usize].push(cid);
                }
                incident_cells[inp.0 as usize].push(cid);
            }
            if let Some(out) = cell.output {
                driver_cell[out.0 as usize] = Some(cid);
                incident_cells[out.0 as usize].push(cid);
            }
            if kind.is_sequential() {
                ff_endpoint_idx[cid.0 as usize] = n_ff;
                n_ff += 1;
            }
        }
        for &po in &design.primary_outputs {
            po_count[po.0 as usize] += 1;
        }

        // Levelize the combinational cells (Kahn): a cell's level is one
        // past the deepest combinational producer among its inputs.
        let mut level = vec![-1i32; n_cells];
        let mut pending = vec![0u32; n_cells];
        let mut queue: std::collections::VecDeque<CellId> = std::collections::VecDeque::new();
        let is_comb = |c: CellId| -> bool {
            let k = tech.library.kind(design.cell(c).kind);
            !k.is_sequential() && !k.is_filler()
        };
        for (cid, cell) in design.cells_iter() {
            if !is_comb(cid) {
                continue;
            }
            let deg = cell
                .inputs
                .iter()
                .filter(|&&inp| matches!(design.net(inp).driver, NetDriver::Cell(c) if is_comb(c)))
                .count() as u32;
            pending[cid.0 as usize] = deg;
            if deg == 0 {
                level[cid.0 as usize] = 0;
                queue.push_back(cid);
            }
        }
        while let Some(cid) = queue.pop_front() {
            let lv = level[cid.0 as usize];
            if let Some(out) = design.cell(cid).output {
                for &c in &comb_consumers[out.0 as usize] {
                    let l = &mut level[c.0 as usize];
                    *l = (*l).max(lv + 1);
                    let p = &mut pending[c.0 as usize];
                    *p -= 1;
                    if *p == 0 {
                        queue.push_back(c);
                    }
                }
            }
        }

        let net_driver_level = (0..n_nets)
            .map(|n| match driver_cell[n] {
                Some(c) => level[c.0 as usize],
                None => -1,
            })
            .collect();
        let max_level = level.iter().copied().max().unwrap_or(-1);

        // Flatten the per-cell input lists: the propagation loops walk
        // them for every frontier visit, and a CSR keeps those walks on
        // two contiguous arrays.
        let mut cell_in_off = Vec::with_capacity(n_cells + 1);
        let mut cell_in_nets = Vec::new();
        cell_in_off.push(0u32);
        for (_, cell) in design.cells_iter() {
            cell_in_nets.extend(cell.inputs.iter().map(|n| n.0));
            cell_in_off.push(cell_in_nets.len() as u32);
        }

        Self {
            level,
            comb_consumers,
            ff_consumers,
            po_count,
            driver_cell,
            net_driver_level,
            incident_cells,
            ff_endpoint_idx,
            po_endpoint_base: n_ff,
            max_level,
            delay_intrinsic,
            delay_drive,
            setup,
            cell_output,
            cell_in_off,
            cell_in_nets,
        }
    }
}

impl TimingGraph {
    /// The input net ids of `cell`, from the flattened CSR.
    #[inline]
    fn cell_inputs(&self, cell: u32) -> &[u32] {
        let ci = cell as usize;
        &self.cell_in_nets[self.cell_in_off[ci] as usize..self.cell_in_off[ci + 1] as usize]
    }
}

/// Reusable per-thread scratch for frontier propagation: level-bucketed
/// pending queues with generation-stamped membership, mirroring the
/// router's `MazeScratch`. Stamp planes and buckets are allocated once per
/// thread and grow monotonically; bumping the generation invalidates every
/// stamped membership in O(1), so a re-analysis touches only memory
/// proportional to its frontier, never to the design.
#[derive(Default)]
struct StaScratch {
    /// Current generation; a stamp equal to this marks live membership.
    generation: u32,
    /// Per cell: queued into `fwd_buckets` this generation.
    cell_stamp: Vec<u32>,
    /// Per cell: per-cell slack already repatched this generation.
    touch_stamp: Vec<u32>,
    /// Per net: queued into `bwd_buckets` this generation.
    net_stamp: Vec<u32>,
    /// Per net: arrival rewritten this generation.
    arr_stamp: Vec<u32>,
    /// Per net: required time rewritten this generation.
    req_stamp: Vec<u32>,
    /// Pending combinational cells, bucketed by topological level.
    fwd_buckets: Vec<Vec<u32>>,
    /// Pending nets, bucketed by combinational-driver level + 1.
    bwd_buckets: Vec<Vec<u32>>,
    /// Nets whose arrival was rewritten, in rewrite order.
    arr_changed: Vec<u32>,
    /// Nets whose required time was rewritten, in rewrite order.
    req_changed: Vec<u32>,
}

impl StaScratch {
    /// Entry count below which the stamp planes never shrink: re-growing
    /// small arrays costs more than retaining them, and every design up
    /// to this size shares one allocation high-water mark.
    const SHRINK_FLOOR: usize = 1 << 15;

    /// Opens a new generation sized for `n_cells`/`n_nets`/`n_levels`.
    fn begin(&mut self, n_cells: usize, n_nets: usize, n_levels: usize) {
        // A thread-local scratch survives across designs; after a
        // 100k-cell analysis it must not pin that design's stamp planes
        // for a TINY one. Once the retained high-water mark exceeds 4x
        // the live demand (and the floor), drop to the demanded size.
        let retained = self.cell_stamp.len().max(self.net_stamp.len());
        if retained > Self::SHRINK_FLOOR && retained / 4 > n_cells.max(n_nets) {
            let keep_cells = n_cells.max(Self::SHRINK_FLOOR);
            self.cell_stamp.truncate(keep_cells);
            self.cell_stamp.shrink_to_fit();
            self.touch_stamp.truncate(keep_cells);
            self.touch_stamp.shrink_to_fit();
            let keep_nets = n_nets.max(Self::SHRINK_FLOOR);
            self.net_stamp.truncate(keep_nets);
            self.net_stamp.shrink_to_fit();
            self.arr_stamp.truncate(keep_nets);
            self.arr_stamp.shrink_to_fit();
            self.req_stamp.truncate(keep_nets);
            self.req_stamp.shrink_to_fit();
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrapped: flush every stamp so stale entries
                // from ~4 billion analyses ago cannot alias the new one.
                self.cell_stamp.iter_mut().for_each(|s| *s = 0);
                self.touch_stamp.iter_mut().for_each(|s| *s = 0);
                self.net_stamp.iter_mut().for_each(|s| *s = 0);
                self.arr_stamp.iter_mut().for_each(|s| *s = 0);
                self.req_stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        if self.cell_stamp.len() < n_cells {
            self.cell_stamp.resize(n_cells, 0);
            self.touch_stamp.resize(n_cells, 0);
        }
        if self.net_stamp.len() < n_nets {
            self.net_stamp.resize(n_nets, 0);
            self.arr_stamp.resize(n_nets, 0);
            self.req_stamp.resize(n_nets, 0);
        }
        if self.fwd_buckets.len() < n_levels {
            self.fwd_buckets.resize_with(n_levels, Vec::new);
        }
        if self.bwd_buckets.len() < n_levels + 1 {
            self.bwd_buckets.resize_with(n_levels + 1, Vec::new);
        }
        self.arr_changed.clear();
        self.req_changed.clear();
        // The passes drain their buckets as they run, but a fault-injection
        // panic can unwind mid-pass and leave residue for the next call.
        for b in &mut self.fwd_buckets {
            b.clear();
        }
        for b in &mut self.bwd_buckets {
            b.clear();
        }
    }
}

thread_local! {
    static STA_SCRATCH: std::cell::RefCell<StaScratch> =
        std::cell::RefCell::new(StaScratch::default());
}

/// Queues a combinational cell for forward re-evaluation (no-op for
/// untimed cells or cells already queued this generation).
fn push_fwd(s: &mut StaScratch, graph: &TimingGraph, c: u32) {
    let lv = graph.level[c as usize];
    if lv >= 0 && s.cell_stamp[c as usize] != s.generation {
        s.cell_stamp[c as usize] = s.generation;
        s.fwd_buckets[lv as usize].push(c);
    }
}

/// Queues a net for backward required-time recomputation (no-op when
/// already queued this generation).
fn push_bwd(s: &mut StaScratch, graph: &TimingGraph, n: u32) {
    if s.net_stamp[n as usize] != s.generation {
        s.net_stamp[n as usize] = s.generation;
        let b = (graph.net_driver_level[n as usize] + 1) as usize;
        s.bwd_buckets[b].push(n);
    }
}

/// A net's driver reads its own load when computing gate delay, so a load
/// change shifts the required times of the driver's *input* nets: queue
/// them all.
fn seed_driver_inputs(s: &mut StaScratch, graph: &TimingGraph, design: &Design, n: u32) {
    if let Some(d) = graph.driver_cell[n as usize] {
        if graph.level[d.0 as usize] >= 0 {
            for &inp in &design.cell(d).inputs {
                push_bwd(s, graph, inp.0);
            }
        }
    }
}

/// Re-analyzes an edited layout against a cached base report, propagating
/// timing only through the fanout/fanin cones of nets whose extracted RC
/// differs from the base routing.
///
/// Arrival, required, endpoint, and per-cell slacks are recomputed with
/// the identical formulas [`analyze`] uses, over inputs that are either
/// unchanged base values or freshly recomputed ones — so the result is
/// bit-for-bit equal to a from-scratch `analyze(layout, routing, tech)`.
///
/// `dirty_nets`, when provided, bounds the RC diff: it must be a sorted,
/// deduplicated **superset** of the nets whose extracted RC can differ
/// between `base_routing` and `routing` (typically the router's
/// touched-net handoff — Phase-A patched nets plus RRR victims). Nets
/// outside the list are trusted unchanged and never inspected
/// (`sta.diff_skipped` counts them). Pass `None` when no such bound is
/// known — e.g. after a route-rule change, which moves every net's RC.
pub fn analyze_incremental(
    graph: &TimingGraph,
    base: &TimingReport,
    base_routing: &RoutingState,
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
    dirty_nets: Option<&[NetId]>,
) -> TimingReport {
    obs::span("sta.incremental", |_| {
        analyze_incremental_inner(graph, base, base_routing, layout, routing, tech, dirty_nets)
    })
}

/// Injection point covering incremental timing: checked on entry and every
/// 256 forward-cone relaxations (the STA-side granularity of the
/// cooperative eval deadline).
static STA_DIVERGE: faults::Point = faults::Point::new("sta.diverge");

#[allow(clippy::too_many_arguments)]
fn analyze_incremental_inner(
    graph: &TimingGraph,
    base: &TimingReport,
    base_routing: &RoutingState,
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
    dirty_nets: Option<&[NetId]>,
) -> TimingReport {
    STA_DIVERGE.check();
    let design = layout.design();
    let clock = design.clock;
    let period = design.constraints.clock_period;

    // 1. RC diff: find the nets whose parasitics moved. A dirty list
    // bounds the sweep to router-touched nets; iterating it in its sorted
    // order keeps `changed_nets` identical to what the full sweep builds,
    // so everything downstream is unaffected by which path ran.
    let mut changed_nets: Vec<NetId> = Vec::new();
    match dirty_nets {
        Some(dirty) => {
            debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for &nid in dirty {
                if Some(nid) == clock {
                    continue;
                }
                if routing.net_rc(nid) != base_routing.net_rc(nid) {
                    changed_nets.push(nid);
                }
            }
            metrics()
                .diff_skipped
                .add((design.nets.len() - dirty.len()) as u64);
        }
        None => {
            for (nid, _) in design.nets_iter() {
                if Some(nid) == clock {
                    continue;
                }
                if routing.net_rc(nid) != base_routing.net_rc(nid) {
                    changed_nets.push(nid);
                }
            }
        }
    }
    if changed_nets.is_empty() {
        metrics().clean_hits.incr();
        return base.clone();
    }
    // Even a dense edit (an NDR change perturbs every routed net) stays on
    // the frontier path: with the cached `TimingGraph` it degenerates to a
    // levelized full sweep that still skips `analyze_inner`'s re-Kahn and
    // arrival sort, so no from-scratch fallback threshold is needed.
    metrics().cone_nets.add(changed_nets.len() as u64);

    let TimingReport {
        clock_period,
        mut arrival,
        mut required,
        mut endpoint_slacks,
        mut cell_slack,
        mut wire_delay,
        mut net_load,
    } = base.clone();
    for &nid in &changed_nets {
        wire_delay[nid.0 as usize] = wire_delay_ps(design, routing, tech, nid);
        net_load[nid.0 as usize] = net_load_ff(design, routing, tech, nid);
    }
    // Flat-array gate delay: one indexed read per term, no pointer chase
    // through the cell table and library. Identical expressions to
    // `CellKind::delay`, so every propagated value is bit-identical.
    let gate_delay = |cell: CellId, net_load: &[f64]| -> f64 {
        let ci = cell.0 as usize;
        let load = match graph.cell_output[ci] {
            u32::MAX => 0.0,
            o => net_load[o as usize],
        };
        graph.delay_intrinsic[ci] + graph.delay_drive[ci] * load
    };

    let n_levels = (graph.max_level + 1) as usize;
    STA_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let s = &mut *scratch;
        s.begin(design.cells.len(), design.nets.len(), n_levels);

        // 2. Forward frontier: re-evaluate consumers (input arrival terms
        // moved) and combinational drivers (their gate delay reads the
        // changed load) level by level; propagate only while arrivals
        // actually move. Cells within a level are independent — their
        // inputs come from strictly lower levels, all finalized before the
        // level's bucket drains — so bucket order within a level cannot
        // affect the values written.
        for &nid in &changed_nets {
            let n = nid.0 as usize;
            for &c in &graph.comb_consumers[n] {
                push_fwd(s, graph, c.0);
            }
            if let Some(d) = graph.driver_cell[n] {
                push_fwd(s, graph, d.0);
            }
        }
        let mut fwd_steps: u64 = 0;
        let mut early_exits: u64 = 0;
        for lv in 0..n_levels {
            let bucket = std::mem::take(&mut s.fwd_buckets[lv]);
            for &cidx in &bucket {
                fwd_steps += 1;
                if fwd_steps & 0xFF == 0 {
                    STA_DIVERGE.check();
                }
                let cid = CellId(cidx);
                let mut in_arrival = 0.0f64;
                for &inp in graph.cell_inputs(cidx) {
                    let a = arrival[inp as usize];
                    let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
                    in_arrival = in_arrival.max(a + wire_delay[inp as usize]);
                }
                let out_arrival = in_arrival + gate_delay(cid, &net_load);
                if graph.cell_output[cidx as usize] != u32::MAX {
                    let out = NetId(graph.cell_output[cidx as usize]);
                    let o = out.0 as usize;
                    if arrival[o] != out_arrival {
                        arrival[o] = out_arrival;
                        if s.arr_stamp[o] != s.generation {
                            s.arr_stamp[o] = s.generation;
                            s.arr_changed.push(out.0);
                        }
                        // Fanout lives at strictly higher levels, so these
                        // pushes never land in the bucket being drained.
                        for &c in &graph.comb_consumers[o] {
                            push_fwd(s, graph, c.0);
                        }
                    } else {
                        early_exits += 1;
                    }
                }
            }
            let mut bucket = bucket;
            bucket.clear();
            s.fwd_buckets[lv] = bucket;
        }
        metrics().frontier_len.record(fwd_steps);
        metrics().early_exits.add(early_exits);

        // 3. Backward frontier: pull-recompute each affected net's
        // required time (the full min over its FF, PO, and combinational-
        // consumer terms) in descending driver-level order, so every
        // consumer's required time is final before it is read. Pushes from
        // a draining bucket target strictly lower buckets (a driver's
        // inputs sit below the driver's own level).
        for &nid in &changed_nets {
            push_bwd(s, graph, nid.0);
            // The driver's gate delay changed with its load, which shifts
            // the required times of the driver's own inputs.
            seed_driver_inputs(s, graph, design, nid.0);
        }
        for b in (0..n_levels + 1).rev() {
            let bucket = std::mem::take(&mut s.bwd_buckets[b]);
            for &nidx in &bucket {
                let ni = nidx as usize;
                let mut r = f64::INFINITY;
                for &ff in &graph.ff_consumers[ni] {
                    r = r.min((period - graph.setup[ff.0 as usize]) - wire_delay[ni]);
                }
                if graph.po_count[ni] > 0 {
                    r = r.min(period - design.constraints.output_delay);
                }
                for &c in &graph.comb_consumers[ni] {
                    let out = graph.cell_output[c.0 as usize];
                    if out == u32::MAX {
                        continue;
                    }
                    let r_out = required[out as usize];
                    if r_out == f64::INFINITY {
                        continue;
                    }
                    r = r.min(r_out - gate_delay(c, &net_load) - wire_delay[ni]);
                }
                if required[ni] != r {
                    required[ni] = r;
                    if s.req_stamp[ni] != s.generation {
                        s.req_stamp[ni] = s.generation;
                        s.req_changed.push(nidx);
                    }
                    seed_driver_inputs(s, graph, design, nidx);
                }
            }
            let mut bucket = bucket;
            bucket.clear();
            s.bwd_buckets[b] = bucket;
        }

        // 4. Patch endpoint slacks whose inputs moved. A net present in
        // both lists is patched twice with the identical value.
        for n in changed_nets
            .iter()
            .map(|nid| nid.0)
            .chain(s.arr_changed.iter().copied())
        {
            let ni = n as usize;
            for &ff in &graph.ff_consumers[ni] {
                let a = arrival[ni];
                let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
                let at_pin = a + wire_delay[ni];
                endpoint_slacks[graph.ff_endpoint_idx[ff.0 as usize]].1 =
                    (period - graph.setup[ff.0 as usize]) - at_pin;
            }
        }
        for (i, &po) in design.primary_outputs.iter().enumerate() {
            if s.arr_stamp[po.0 as usize] == s.generation {
                let a = arrival[po.0 as usize];
                let a = if a == f64::NEG_INFINITY { 0.0 } else { a };
                endpoint_slacks[graph.po_endpoint_base + i].1 =
                    (period - design.constraints.output_delay) - a;
            }
        }

        // 5. Patch per-cell slack around every net whose slack moved. The
        // touch stamp dedups; order is irrelevant because each cell's
        // slack is a pure function of the final arrival/required planes.
        let slack_of = |net: usize, arrival: &[f64], required: &[f64]| -> f64 {
            let a = arrival[net];
            let r = required[net];
            if a == f64::NEG_INFINITY || r == f64::INFINITY {
                f64::INFINITY
            } else {
                r - a
            }
        };
        let arr_changed = std::mem::take(&mut s.arr_changed);
        let req_changed = std::mem::take(&mut s.req_changed);
        for &n in arr_changed.iter().chain(req_changed.iter()) {
            for &c in &graph.incident_cells[n as usize] {
                if s.touch_stamp[c.0 as usize] == s.generation {
                    continue;
                }
                s.touch_stamp[c.0 as usize] = s.generation;
                let mut worst = f64::INFINITY;
                for &inp in graph.cell_inputs(c.0) {
                    if Some(NetId(inp)) != clock {
                        worst = worst.min(slack_of(inp as usize, &arrival, &required));
                    }
                }
                let out = graph.cell_output[c.0 as usize];
                if out != u32::MAX {
                    worst = worst.min(slack_of(out as usize, &arrival, &required));
                }
                cell_slack[c.0 as usize] = worst;
            }
        }
        // Hand the capacity back for the next generation.
        s.arr_changed = arr_changed;
        s.req_changed = req_changed;

        TimingReport {
            clock_period,
            arrival,
            required,
            endpoint_slacks,
            cell_slack,
            wire_delay,
            net_load,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::RouteRule;

    fn timed(period_factor: f64) -> (Technology, Layout, TimingReport) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = period_factor;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let timing = analyze(&layout, &routing, &tech);
        (tech, layout, timing)
    }

    #[test]
    fn loose_clock_meets_timing() {
        let (_, _, t) = timed(2.5);
        assert_eq!(t.tns_ps(), 0.0, "wns {}", t.worst_slack_ps());
        assert!(t.worst_slack_ps() > 0.0);
    }

    #[test]
    fn impossible_clock_fails_timing() {
        let (_, _, t) = timed(0.05);
        assert!(t.tns_ps() < 0.0);
        assert!(t.wns_ps() < 0.0);
        assert!(t.failing_endpoints() > 0);
    }

    #[test]
    fn tighter_clock_means_worse_tns() {
        let (_, _, loose) = timed(1.2);
        let (_, _, tight) = timed(0.7);
        assert!(tight.tns_ps() <= loose.tns_ps());
    }

    #[test]
    fn slack_consistency_between_endpoints_and_nets() {
        let (_, layout, t) = timed(1.0);
        // Worst endpoint slack must equal the worst net slack (paths end at
        // endpoints).
        let worst_ep = t.worst_slack_ps();
        let worst_net = layout
            .design()
            .nets_iter()
            .map(|(id, _)| t.net_slack_ps(id))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (worst_ep - worst_net).abs() < 1.0,
            "endpoint {worst_ep} vs net {worst_net}"
        );
    }

    #[test]
    fn critical_cells_have_finite_slack() {
        let (_, layout, t) = timed(1.2);
        for &c in &layout.design().critical_cells {
            let s = t.cell_slack_ps(c);
            assert!(s.is_finite(), "critical cell {} slack {s}", c.0);
        }
    }

    #[test]
    fn incremental_matches_full_bit_for_bit() {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.9; // tight enough that required times bind
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let base = analyze(&layout, &routing, &tech);
        let graph = TimingGraph::new(layout.design(), &tech);

        // An NDR change perturbs the RC of (nearly) every routed net.
        let mut edited = layout.clone();
        edited.set_route_rule(RouteRule::uniform(1.5));
        let rerouted = route::route_design(&edited, &tech);
        let full = analyze(&edited, &rerouted, &tech);
        let inc = analyze_incremental(&graph, &base, &routing, &edited, &rerouted, &tech, None);
        assert_eq!(full.arrival, inc.arrival);
        assert_eq!(full.required, inc.required);
        assert_eq!(full.endpoint_slacks, inc.endpoint_slacks);
        assert_eq!(full.cell_slack, inc.cell_slack);
        assert_eq!(full.wire_delay, inc.wire_delay);
        assert_eq!(full.net_load, inc.net_load);
        assert_eq!(full.tns_ps(), inc.tns_ps());

        // No RC change at all must return the base report unchanged.
        let same = analyze_incremental(&graph, &base, &routing, &layout, &routing, &tech, None);
        assert_eq!(same.arrival, base.arrival);
        assert_eq!(same.endpoint_slacks, base.endpoint_slacks);
    }

    /// A `dirty_nets` superset must not change the result: the bounded RC
    /// diff builds the same `changed_nets` list as the full sweep.
    #[test]
    fn dirty_list_matches_unbounded_diff() {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.9;
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 9);
        place::refine_wirelength(&mut layout, &tech, 2, 9);
        let routing = route::route_design(&layout, &tech);
        let base = analyze(&layout, &routing, &tech);
        let graph = TimingGraph::new(layout.design(), &tech);

        // Move one movable cell: only its incident nets' RC can change.
        let mut edited = layout.clone();
        let moved = edited
            .design()
            .cells_iter()
            .map(|(id, _)| id)
            .find(|&id| !edited.occupancy().is_locked(id))
            .expect("tiny design has movable cells");
        let fp = *edited.floorplan();
        let pos = edited.cell_pos(moved).unwrap();
        let w = edited.occupancy().cell_width(moved).unwrap();
        let target = edited
            .occupancy()
            .find_gap(
                w,
                geom::SitePos::new(fp.rows() - 1 - pos.row, pos.col),
                fp.rows().max(fp.cols()),
            )
            .expect("gap exists");
        edited.occupancy_mut().move_cell(moved, target).unwrap();
        let rerouted = route::route_design(&edited, &tech);

        let unbounded =
            analyze_incremental(&graph, &base, &routing, &edited, &rerouted, &tech, None);
        // The exact-changed set plus some untouched nets is a valid
        // superset; here the simplest correct one is "every net" — the
        // point is the bounded path, not the bound's tightness.
        let all: Vec<netlist::NetId> = edited.design().nets_iter().map(|(id, _)| id).collect();
        let bounded = analyze_incremental(
            &graph,
            &base,
            &routing,
            &edited,
            &rerouted,
            &tech,
            Some(&all),
        );
        assert_eq!(unbounded.arrival, bounded.arrival);
        assert_eq!(unbounded.endpoint_slacks, bounded.endpoint_slacks);
        assert_eq!(unbounded.cell_slack, bounded.cell_slack);
        assert_eq!(unbounded.wire_delay, bounded.wire_delay);

        // A tight superset — only the nets whose RC actually moved — must
        // also reproduce the unbounded result bit for bit.
        let tight: Vec<netlist::NetId> = edited
            .design()
            .nets_iter()
            .map(|(id, _)| id)
            .filter(|&id| rerouted.net_rc(id) != routing.net_rc(id))
            .collect();
        let bounded_tight = analyze_incremental(
            &graph,
            &base,
            &routing,
            &edited,
            &rerouted,
            &tech,
            Some(&tight),
        );
        assert_eq!(unbounded.arrival, bounded_tight.arrival);
        assert_eq!(unbounded.endpoint_slacks, bounded_tight.endpoint_slacks);
        assert_eq!(unbounded.cell_slack, bounded_tight.cell_slack);
        assert_eq!(unbounded.wire_delay, bounded_tight.wire_delay);
        assert_eq!(unbounded.net_load, bounded_tight.net_load);
    }

    #[test]
    fn longer_wires_increase_delay() {
        // Same design, worse placement (no refinement) must not have
        // better worst slack than the refined one.
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut bad = Layout::empty_floorplan(design.clone(), &tech, 0.6);
        place::global_place(&mut bad, &tech, 1);
        // Scramble: move cells far from optimal via a different seed and no
        // refinement, then compare against a refined twin.
        let mut good = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut good, &tech, 1);
        place::refine_wirelength(&mut good, &tech, 3, 1);
        bad.set_route_rule(RouteRule::default());
        let tr_bad = analyze(&bad, &route::route_design(&bad, &tech), &tech);
        let tr_good = analyze(&good, &route::route_design(&good, &tech), &tech);
        assert!(tr_good.worst_slack_ps() >= tr_bad.worst_slack_ps() - 1.0);
    }
}
