use netlist::{CellId, NetId};

/// Result of a timing analysis run.
///
/// All times are in picoseconds relative to the capturing clock edge at
/// `clock_period`.
///
/// Equality is exact over every stored plane (no epsilon): it is the
/// bit-identity oracle the incremental-vs-dense equivalence tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    pub(crate) clock_period: f64,
    /// Arrival time at each net's driver output pin (`f64::NEG_INFINITY`
    /// for nets with no timed driver, e.g. the clock).
    pub(crate) arrival: Vec<f64>,
    /// Required time at each net's driver output pin
    /// (`f64::INFINITY` when unconstrained).
    pub(crate) required: Vec<f64>,
    /// `(endpoint description, slack)` for every FF D-pin and primary
    /// output.
    pub(crate) endpoint_slacks: Vec<(EndpointKind, f64)>,
    /// Per-cell worst slack over incident signal nets
    /// (`f64::INFINITY` for untimed cells such as fillers).
    pub(crate) cell_slack: Vec<f64>,
    /// Elmore wire delay per net in ps, kept so an incremental re-analysis
    /// can detect and re-propagate only nets whose parasitics changed.
    pub(crate) wire_delay: Vec<f64>,
    /// Driver load per net in fF (wire plus sink pins), kept for the same
    /// reason.
    pub(crate) net_load: Vec<f64>,
}

/// What terminates a timing path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// Setup check at a flip-flop data pin.
    FlopData(CellId),
    /// Required time at a primary output.
    PrimaryOutput(u32),
}

impl TimingReport {
    /// The constraining clock period in ps.
    pub fn clock_period(&self) -> f64 {
        self.clock_period
    }

    /// Worst negative slack in ps (0 when every endpoint meets timing).
    pub fn wns_ps(&self) -> f64 {
        self.endpoint_slacks
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min)
            .min(0.0)
    }

    /// Worst slack in ps including positive values (how much margin the
    /// tightest endpoint has).
    pub fn worst_slack_ps(&self) -> f64 {
        self.endpoint_slacks
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative slack in ps (the paper's timing metric; 0 is
    /// optimal, more negative is worse).
    pub fn tns_ps(&self) -> f64 {
        self.endpoint_slacks.iter().map(|(_, s)| s.min(0.0)).sum()
    }

    /// Number of endpoints violating their setup requirement.
    pub fn failing_endpoints(&self) -> usize {
        self.endpoint_slacks
            .iter()
            .filter(|(_, s)| *s < 0.0)
            .count()
    }

    /// All endpoint slacks.
    pub fn endpoint_slacks(&self) -> &[(EndpointKind, f64)] {
        &self.endpoint_slacks
    }

    /// Arrival time at a net's driver pin in ps.
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival[net.0 as usize]
    }

    /// Slack of the worst path through a net in ps
    /// (`f64::INFINITY` when the net is untimed/unconstrained).
    pub fn net_slack_ps(&self, net: NetId) -> f64 {
        let a = self.arrival[net.0 as usize];
        let r = self.required[net.0 as usize];
        if a == f64::NEG_INFINITY || r == f64::INFINITY {
            f64::INFINITY
        } else {
            r - a
        }
    }

    /// Worst slack of any path through the given cell in ps. This is the
    /// quantity bounding how much delay a Trojan tap on this cell's nets
    /// may add without breaking timing.
    pub fn cell_slack_ps(&self, cell: CellId) -> f64 {
        self.cell_slack
            .get(cell.0 as usize)
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(slacks: &[f64]) -> TimingReport {
        TimingReport {
            clock_period: 1_000.0,
            arrival: vec![],
            required: vec![],
            endpoint_slacks: slacks
                .iter()
                .map(|&s| (EndpointKind::PrimaryOutput(0), s))
                .collect(),
            cell_slack: vec![],
            wire_delay: vec![],
            net_load: vec![],
        }
    }

    #[test]
    fn tns_sums_only_negative() {
        let r = report(&[-3.0, 5.0, -2.0, 0.0]);
        assert_eq!(r.tns_ps(), -5.0);
        assert_eq!(r.wns_ps(), -3.0);
        assert_eq!(r.failing_endpoints(), 2);
    }

    #[test]
    fn clean_design_has_zero_tns() {
        let r = report(&[4.0, 10.0]);
        assert_eq!(r.tns_ps(), 0.0);
        assert_eq!(r.wns_ps(), 0.0);
        assert_eq!(r.worst_slack_ps(), 4.0);
    }
}
