//! Static timing analysis over a placed-and-routed layout.
//!
//! Delay model: linear gate delay (`intrinsic + R_drive · C_load`) plus a
//! lumped Elmore wire delay per net from the router's extracted RC. The
//! analysis produces arrival and required times per net, per-endpoint
//! slacks, **TNS/WNS** (the paper's timing objective), and per-cell slack
//! queries — the quantity the exploitable-distance computation consumes
//! ("paths with positive timing slacks to security-critical cell assets").
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! let routing = route::route_design(&layout, &tech);
//! let timing = sta::analyze(&layout, &routing, &tech);
//! assert!(timing.wns_ps() <= 0.0 || timing.tns_ps() == 0.0);
//! ```

mod graph;
mod report;

pub use graph::{analyze, analyze_incremental, TimingGraph};
pub use report::TimingReport;
