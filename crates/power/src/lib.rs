//! Power analysis: leakage, internal, and switching components.
//!
//! The paper constrains total power to `β_power = 1.2×` the baseline. This
//! crate computes the three Innovus-style components: per-cell leakage,
//! activity-weighted internal energy, and switching power over the
//! extracted net capacitances (wire plus sink pins), with a simple clock
//! tree estimate for the sequential clock load.
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! let routing = route::route_design(&layout, &tech);
//! let p = power::analyze(&layout, &routing, &tech);
//! assert!(p.total_mw() > 0.0);
//! assert!(p.leakage_mw > 0.0 && p.switching_mw > 0.0);
//! ```

use layout::Layout;
use netlist::Sink;
use route::RoutingState;
use tech::Technology;

/// Supply voltage in volts (Nangate45 nominal 1.1 V).
pub const VDD: f64 = 1.1;

/// Default signal-net toggle activity (fraction of cycles a net switches).
pub const DEFAULT_ACTIVITY: f64 = 0.15;

/// Estimated clock-tree wire capacitance per sequential sink, in fF
/// (local clock routing is outside the signal router).
pub const CLOCK_WIRE_CAP_PER_SINK_FF: f64 = 1.2;

/// Power report in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Static leakage.
    pub leakage_mw: f64,
    /// Cell-internal dynamic power.
    pub internal_mw: f64,
    /// Net switching power (wire + pin capacitance), including the clock.
    pub switching_mw: f64,
}

impl PowerReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.leakage_mw + self.internal_mw + self.switching_mw
    }
}

/// The routing-independent part of a design's power: leakage, internal,
/// and clock-tree terms depend only on the cell list and constraints, so
/// they are computed once and reused across every incremental
/// re-evaluation. Only the per-net switching sum reads the router's
/// extracted capacitances.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    activity: f64,
    /// Clock frequency in GHz (fJ · GHz = µW).
    f_ghz: f64,
    leakage_nw: f64,
    internal_uw: f64,
    /// Total clock-network capacitance (flop clock pins + tree wire), fF.
    clock_cap_ff: f64,
}

impl PowerModel {
    /// Builds the model at the default activity factor.
    pub fn new(layout: &Layout, tech: &Technology) -> Self {
        Self::with_activity(layout, tech, DEFAULT_ACTIVITY)
    }

    /// Builds the model at an explicit signal activity factor.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is not in `(0, 1]` or the clock period is
    /// non-positive.
    pub fn with_activity(layout: &Layout, tech: &Technology, activity: f64) -> Self {
        assert!(
            activity > 0.0 && activity <= 1.0,
            "activity must be in (0, 1]"
        );
        let design = layout.design();
        let period_ps = design.constraints.clock_period;
        assert!(period_ps > 0.0, "clock period must be positive");
        let f_ghz = 1_000.0 / period_ps;

        let mut leakage_nw = 0.0;
        let mut internal_uw = 0.0;
        let mut flop_count = 0usize;
        for cell in &design.cells {
            let kind = tech.library.kind(cell.kind);
            leakage_nw += kind.leakage;
            if kind.is_sequential() {
                flop_count += 1;
                // Flops toggle their internals every cycle (clock activity 1).
                internal_uw += kind.internal_energy * f_ghz;
            } else {
                internal_uw += kind.internal_energy * f_ghz * activity;
            }
        }
        // Clock network: every flop clock pin plus distributed tree wire,
        // toggling every cycle.
        let clock_cap_ff = flop_count as f64
            * (CLOCK_WIRE_CAP_PER_SINK_FF
                + tech
                    .library
                    .kind_by_name("DFF_X1")
                    .map(|k| tech.library.kind(k).input_cap)
                    .unwrap_or(1.5));

        Self {
            activity,
            f_ghz,
            leakage_nw,
            internal_uw,
            clock_cap_ff,
        }
    }
}

/// Analyzes the power of a routed layout at the design's clock constraint
/// with the default activity factor.
pub fn analyze(layout: &Layout, routing: &RoutingState, tech: &Technology) -> PowerReport {
    analyze_with_activity(layout, routing, tech, DEFAULT_ACTIVITY)
}

/// Analyzes power with an explicit signal activity factor.
///
/// # Panics
///
/// Panics if `activity` is not in `(0, 1]` or the clock period is
/// non-positive.
pub fn analyze_with_activity(
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
    activity: f64,
) -> PowerReport {
    analyze_with_model(
        &PowerModel::with_activity(layout, tech, activity),
        layout,
        routing,
        tech,
    )
}

/// Analyzes power against a prebuilt [`PowerModel`], recomputing only the
/// per-net switching sum. With a model built for the same design this is
/// bit-identical to [`analyze_with_activity`] (which routes through here).
pub fn analyze_with_model(
    model: &PowerModel,
    layout: &Layout,
    routing: &RoutingState,
    tech: &Technology,
) -> PowerReport {
    let design = layout.design();
    let clock = design.clock;
    let f_ghz = model.f_ghz;

    let mut switching_uw = 0.0;
    let e_factor = 0.5 * VDD * VDD; // fJ per fF per transition
    for (nid, net) in design.nets_iter() {
        if Some(nid) == clock {
            continue;
        }
        let mut c = routing.net_rc(nid).cap;
        for s in &net.sinks {
            if let Sink::CellInput { cell, .. } = s {
                c += tech.library.kind(design.cell(*cell).kind).input_cap;
            }
        }
        switching_uw += e_factor * c * f_ghz * model.activity;
    }
    switching_uw += e_factor * model.clock_cap_ff * f_ghz;

    PowerReport {
        leakage_mw: model.leakage_nw * 1e-6,
        internal_mw: model.internal_uw * 1e-3,
        switching_mw: switching_uw * 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn snapshot(util: f64) -> (Technology, Layout, RoutingState) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, util);
        place::global_place(&mut layout, &tech, 4);
        let routing = route::route_design(&layout, &tech);
        (tech, layout, routing)
    }

    #[test]
    fn components_are_positive() {
        let (tech, layout, routing) = snapshot(0.6);
        let p = analyze(&layout, &routing, &tech);
        assert!(p.leakage_mw > 0.0);
        assert!(p.internal_mw > 0.0);
        assert!(p.switching_mw > 0.0);
        assert!((p.total_mw() - (p.leakage_mw + p.internal_mw + p.switching_mw)).abs() < 1e-12);
    }

    #[test]
    fn higher_activity_means_more_dynamic_power() {
        let (tech, layout, routing) = snapshot(0.6);
        let lo = analyze_with_activity(&layout, &routing, &tech, 0.05);
        let hi = analyze_with_activity(&layout, &routing, &tech, 0.5);
        assert!(hi.switching_mw > lo.switching_mw);
        assert!(hi.internal_mw > lo.internal_mw);
        assert_eq!(hi.leakage_mw, lo.leakage_mw, "leakage is activity-free");
    }

    #[test]
    fn adding_cells_adds_power() {
        // A second design with more cells must burn more leakage.
        let tech = Technology::nangate45_like();
        let mut big_spec = bench::tiny_spec();
        big_spec.target_cells *= 2;
        let small = bench::generate(&bench::tiny_spec(), &tech);
        let big = bench::generate(&big_spec, &tech);
        let mut ls = Layout::empty_floorplan(small, &tech, 0.6);
        let mut lb = Layout::empty_floorplan(big, &tech, 0.6);
        place::global_place(&mut ls, &tech, 1);
        place::global_place(&mut lb, &tech, 1);
        let ps = analyze(&ls, &route::route_design(&ls, &tech), &tech);
        let pb = analyze(&lb, &route::route_design(&lb, &tech), &tech);
        assert!(pb.leakage_mw > ps.leakage_mw);
        assert!(pb.total_mw() > ps.total_mw());
    }

    #[test]
    fn prebuilt_model_is_exact() {
        let (tech, layout, routing) = snapshot(0.6);
        let full = analyze(&layout, &routing, &tech);
        let model = PowerModel::new(&layout, &tech);
        let inc = analyze_with_model(&model, &layout, &routing, &tech);
        assert_eq!(full, inc, "model path must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn rejects_bad_activity() {
        let (tech, layout, routing) = snapshot(0.6);
        analyze_with_activity(&layout, &routing, &tech, 0.0);
    }
}
