//! Deterministic, seed-driven fault injection for the exploration loop.
//!
//! The exploratory NSGA-II loop evaluates thousands of ECO candidates; this
//! crate lets tests and chaos drills *inject* failures (router overflow
//! spirals, STA divergence, eval panics, legalizer faults) at named points
//! inside those evaluations, deterministically, so the sandbox/degrade-chain
//! machinery in `gdsii_guard::sandbox` can be exercised without flaky timing
//! tricks.
//!
//! # Design
//!
//! Same contract as `crates/obs`: **zero cost when disabled**. Every
//! injection point compiles to one relaxed atomic load when no fault is
//! armed and no evaluation deadline is active; the slow path (thread-local
//! context lookup + registry scan) only runs in drills.
//!
//! Faults fire by raising [`std::panic::panic_any`] with a typed
//! [`FaultPayload`]; the evaluation sandbox catches the unwind and converts
//! it into a typed `EvalFailure`. A point never fires outside an evaluation
//! context (see [`push_context`]) — baseline implementation and ordinary
//! library use are unaffected even while a spec is armed.
//!
//! # Spec grammar (`GG_FAULTS`)
//!
//! Comma-separated `point:trigger` entries plus an optional `seed=N`:
//!
//! ```text
//! GG_FAULTS=route.overflow:0.01,sta.diverge:gen3,eval.panic:g2c5,seed=7
//! ```
//!
//! Triggers:
//!
//! * `always` — fires at every armed check of that point.
//! * a float in `(0, 1]`, e.g. `0.01` — fires for that fraction of
//!   candidates, decided by hashing `(point, candidate key, seed, stage)`;
//!   deterministic and thread-schedule independent.
//! * `genN` — fires for candidate 0 of generation `N` (generation 0 is the
//!   initial population).
//! * `gNcM` — fires for candidate `M` of generation `N` (candidate indices
//!   follow the deterministic sorted order of `nsga2::evaluate_all`).
//!
//! A trailing `!` (e.g. `always!`, `g2c5!`) makes the trigger *persistent*:
//! it is re-evaluated on every degrade-chain stage, so the full re-eval
//! fallback also fails and the candidate is quarantined. Without `!` a
//! trigger only fires on stage 0 (the incremental attempt), so the candidate
//! degrades to the full path and recovers.
//!
//! # Deadlines
//!
//! [`set_deadline`] arms a cooperative per-thread wall-clock budget; every
//! injection point doubles as a deadline checkpoint (maze-pop / RRR-round /
//! STA-cone / legalizer granularity). Deadline hits raise
//! [`FaultPayload::DeadlineExceeded`]. Deadlines depend on wall time and are
//! therefore *not* covered by the bit-identity guarantees of replay mode.

// This crate runs inside sandboxed candidate evaluations; a stray unwrap
// here would masquerade as an evaluation failure, so it is denied.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// Every injection point registered in the workspace, for enumeration in
/// fault-matrix tests and docs. Keep in sync with the `Point` statics at the
/// call sites.
pub const POINTS: &[&str] = &[
    "route.overflow",
    "sta.diverge",
    "eval.panic",
    "eco.legalize",
    "journal.write",
    "serve.runner_panic",
];

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// Fast gate: true iff any fault entry is armed or any thread holds an
/// active deadline. Injection points load this (relaxed) and return.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// True iff the armed config has at least one entry.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Number of threads currently holding an active deadline.
static DEADLINES: AtomicUsize = AtomicUsize::new(0);

fn recompute_enabled() {
    let on = ARMED.load(Ordering::Relaxed) || DEADLINES.load(Ordering::Relaxed) > 0;
    ENABLED.store(on, Ordering::Relaxed);
}

fn config() -> &'static Mutex<Spec> {
    static CONFIG: OnceLock<Mutex<Spec>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(Spec::default()))
}

/// Loads `GG_FAULTS` once per process. Called by the evaluation sandbox (and
/// harmless to call repeatedly); a malformed spec is reported and ignored
/// rather than aborting the host process.
pub fn ensure_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("GG_FAULTS") {
            if spec.trim().is_empty() {
                return;
            }
            match arm_spec(&spec) {
                Ok(()) => obs::diagln!("faults: armed GG_FAULTS={spec}"),
                Err(e) => obs::diagln!("faults: ignoring malformed GG_FAULTS ({e})"),
            }
        }
    });
}

/// Arms a fault spec (replacing any previous one). Programmatic counterpart
/// of `GG_FAULTS` for tests, avoiding process-global env-var races.
pub fn arm_spec(spec: &str) -> Result<(), String> {
    let parsed = Spec::parse(spec)?;
    let has_entries = !parsed.entries.is_empty();
    match config().lock() {
        Ok(mut c) => *c = parsed,
        Err(p) => return Err(format!("fault registry poisoned: {p}")),
    }
    ARMED.store(has_entries, Ordering::Relaxed);
    recompute_enabled();
    Ok(())
}

/// Disarms all fault entries (deadlines held by live guards stay active).
pub fn clear() {
    if let Ok(mut c) = config().lock() {
        *c = Spec::default();
    }
    ARMED.store(false, Ordering::Relaxed);
    recompute_enabled();
}

/// True iff any fault entry is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// How an armed entry decides whether to fire for a given context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fires at every armed check.
    Always,
    /// Fires for this fraction of candidates (deterministic hash of
    /// `(point, candidate key, seed, stage)`).
    Prob(f64),
    /// Fires for candidate 0 of this generation.
    Generation(u64),
    /// Fires for candidate `.1` of generation `.0`.
    GenCandidate(u64, u64),
}

/// One armed `point:trigger` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Injection-point name, e.g. `route.overflow`.
    pub point: String,
    /// Firing rule.
    pub trigger: Trigger,
    /// Fire on every degrade-chain stage (trailing `!`), not just stage 0.
    pub persistent: bool,
}

/// A parsed fault spec: armed entries plus the hash seed for `Prob`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Spec {
    /// Armed entries, in spec order.
    pub entries: Vec<Entry>,
    /// Seed mixed into probabilistic trigger hashes.
    pub seed: u64,
}

impl Spec {
    /// Parses the `GG_FAULTS` grammar (see crate docs).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Spec::default();
        for raw in s.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed=") {
                spec.seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed in {item:?}"))?;
                continue;
            }
            let (point, trig) = item
                .split_once(':')
                .ok_or_else(|| format!("missing ':' in {item:?}"))?;
            if point.is_empty() {
                return Err(format!("empty point name in {item:?}"));
            }
            let (trig, persistent) = match trig.strip_suffix('!') {
                Some(t) => (t, true),
                None => (trig, false),
            };
            let trigger = Self::parse_trigger(trig)
                .ok_or_else(|| format!("bad trigger {trig:?} in {item:?}"))?;
            spec.entries.push(Entry {
                point: point.to_string(),
                trigger,
                persistent,
            });
        }
        Ok(spec)
    }

    fn parse_trigger(t: &str) -> Option<Trigger> {
        if t == "always" {
            return Some(Trigger::Always);
        }
        if let Some(rest) = t.strip_prefix('g') {
            if let Some(gen) = rest.strip_prefix("en") {
                return gen.parse::<u64>().ok().map(Trigger::Generation);
            }
            if let Some((g, c)) = rest.split_once('c') {
                let (g, c) = (g.parse::<u64>().ok()?, c.parse::<u64>().ok()?);
                return Some(Trigger::GenCandidate(g, c));
            }
        }
        match t.parse::<f64>() {
            Ok(p) if p > 0.0 && p <= 1.0 => Some(Trigger::Prob(p)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation context + deadline (thread-local)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Ctx {
    generation: u64,
    candidate: u64,
    key: u64,
    stage: u8,
}

thread_local! {
    static CTX: Cell<Option<Ctx>> = const { Cell::new(None) };
    static DEADLINE: Cell<Option<(Instant, Duration)>> = const { Cell::new(None) };
}

/// Restores the previous evaluation context when dropped.
pub struct ContextGuard {
    prev: Option<Ctx>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Enters an evaluation context on this thread: triggers only fire between
/// `push_context` and the guard's drop. `key` identifies the candidate for
/// probabilistic triggers (the sandbox derives it from `(genome, seed)`);
/// `stage` is the degrade-chain stage (0 = incremental, 1 = full re-eval).
pub fn push_context(generation: u64, candidate: u64, key: u64, stage: u8) -> ContextGuard {
    let ctx = Ctx {
        generation,
        candidate,
        key,
        stage,
    };
    ContextGuard {
        prev: CTX.with(|c| c.replace(Some(ctx))),
    }
}

/// Clears the deadline (and drops the global refcount) when dropped.
pub struct DeadlineGuard {
    prev: Option<(Instant, Duration)>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.prev));
        if self.prev.is_none() {
            DEADLINES.fetch_sub(1, Ordering::Relaxed);
            recompute_enabled();
        }
    }
}

/// Arms a cooperative wall-clock budget for this thread's evaluation.
/// Injection points double as deadline checkpoints; overruns raise
/// [`FaultPayload::DeadlineExceeded`] at the next checkpoint.
pub fn set_deadline(budget: Duration) -> DeadlineGuard {
    let prev = DEADLINE.with(|d| d.replace(Some((Instant::now() + budget, budget))));
    if prev.is_none() {
        DEADLINES.fetch_add(1, Ordering::Relaxed);
        recompute_enabled();
    }
    DeadlineGuard { prev }
}

// ---------------------------------------------------------------------------
// Injection points
// ---------------------------------------------------------------------------

/// A named injection point. Declare one `static` per call site:
///
/// ```ignore
/// static OVERFLOW: faults::Point = faults::Point::new("route.overflow");
/// OVERFLOW.check(); // one relaxed load when nothing is armed
/// ```
pub struct Point {
    name: &'static str,
}

impl Point {
    /// Const constructor so points can live in statics.
    pub const fn new(name: &'static str) -> Self {
        Self { name }
    }

    /// The point's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Deadline checkpoint + armed-fault check. Panics (via `panic_any`,
    /// with a [`FaultPayload`]) when a deadline has expired or an armed
    /// trigger matches the current context; a no-op otherwise.
    #[inline]
    pub fn check(&self) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.check_slow();
    }

    #[cold]
    fn check_slow(&self) {
        if let Some((deadline, budget)) = DEADLINE.with(|d| d.get()) {
            if Instant::now() >= deadline {
                injected_metric().add(1);
                std::panic::panic_any(FaultPayload::DeadlineExceeded {
                    budget_ms: budget.as_millis() as u64,
                });
            }
        }
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let Some(ctx) = CTX.with(|c| c.get()) else {
            return;
        };
        let fire = match config().lock() {
            Ok(c) => c
                .entries
                .iter()
                .any(|e| e.point == self.name && fires(e, ctx, c.seed, self.name)),
            // A panic while the registry lock was held (e.g. a fault raised
            // from a previous check on another thread) must not cascade into
            // an unrelated candidate: treat as disarmed.
            Err(_) => false,
        };
        if fire {
            injected_metric().add(1);
            std::panic::panic_any(FaultPayload::Injected { point: self.name });
        }
    }
}

impl Point {
    /// Context-free firing decision for *service-level* points (journal
    /// appends, runner supervision) that run outside any evaluation
    /// sandbox. Unlike [`Point::check`] it never panics — it returns
    /// whether an armed trigger matches so the caller can convert the
    /// fault into its own failure mode (an `io::Error`, a deliberate
    /// runner death). `always` always matches, a probability hashes
    /// `(point, key, seed)` deterministically, and generation-addressed
    /// triggers never match out here (there is no generation).
    pub fn fires_external(&self, key: u64) -> bool {
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
        let fire = match config().lock() {
            Ok(c) => c.entries.iter().any(|e| {
                e.point == self.name
                    && match e.trigger {
                        Trigger::Always => true,
                        Trigger::Prob(p) => {
                            let h = splitmix64(hash_str(self.name) ^ key ^ c.seed.rotate_left(17));
                            unit(h) < p
                        }
                        Trigger::Generation(_) | Trigger::GenCandidate(_, _) => false,
                    }
            }),
            Err(_) => false,
        };
        if fire {
            injected_metric().add(1);
        }
        fire
    }
}

fn fires(e: &Entry, ctx: Ctx, seed: u64, point: &str) -> bool {
    if ctx.stage > 0 && !e.persistent {
        return false;
    }
    match e.trigger {
        Trigger::Always => true,
        Trigger::Generation(g) => ctx.generation == g && ctx.candidate == 0,
        Trigger::GenCandidate(g, c) => ctx.generation == g && ctx.candidate == c,
        Trigger::Prob(p) => {
            let h = splitmix64(
                hash_str(point) ^ ctx.key ^ seed.rotate_left(17) ^ u64::from(ctx.stage) << 56,
            );
            unit(h) < p
        }
    }
}

fn injected_metric() -> &'static obs::Counter {
    static M: OnceLock<obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("faults.injected"))
}

// ---------------------------------------------------------------------------
// Panic payload
// ---------------------------------------------------------------------------

/// Typed payload raised by firing points; the evaluation sandbox downcasts
/// unwind payloads to this to distinguish drills from genuine bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPayload {
    /// An armed injection point fired.
    Injected {
        /// The point that fired.
        point: &'static str,
    },
    /// The cooperative per-candidate deadline expired.
    DeadlineExceeded {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

/// Downcasts a caught unwind payload to a [`FaultPayload`], if it is one.
pub fn payload_of(p: &(dyn Any + Send)) -> Option<FaultPayload> {
    p.downcast_ref::<FaultPayload>().copied()
}

// ---------------------------------------------------------------------------
// Hashing (FNV-1a + SplitMix64 finalizer)
// ---------------------------------------------------------------------------

/// FNV-1a over a string, for point-name mixing.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer, for decorrelating hash inputs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault config is process-global; serialize the tests that arm it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parses_the_readme_spec() {
        let s = Spec::parse("route.overflow:0.01,sta.diverge:gen3,eval.panic:g2c5,seed=7")
            .expect("spec parses");
        assert_eq!(s.seed, 7);
        assert_eq!(s.entries.len(), 3);
        assert_eq!(s.entries[0].trigger, Trigger::Prob(0.01));
        assert_eq!(s.entries[1].trigger, Trigger::Generation(3));
        assert_eq!(s.entries[2].trigger, Trigger::GenCandidate(2, 5));
        assert!(s.entries.iter().all(|e| !e.persistent));

        let s = Spec::parse("eval.panic:always!").expect("persistent parses");
        assert_eq!(s.entries[0].trigger, Trigger::Always);
        assert!(s.entries[0].persistent);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "route.overflow", // no trigger
            ":always",        // no point
            "x.y:1.5",        // probability out of range
            "x.y:0",          // zero probability is a disarmed entry
            "x.y:genx",       // unparsable generation
            "seed=abc",       // unparsable seed
            "x.y:maybe",      // unknown word
        ] {
            assert!(Spec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn disabled_points_do_nothing() {
        let _g = lock();
        clear();
        static P: Point = Point::new("test.disabled");
        let _ctx = push_context(0, 0, 1, 0);
        for _ in 0..10_000 {
            P.check();
        }
    }

    #[test]
    fn fires_only_in_context_and_at_stage_zero() {
        let _g = lock();
        arm_spec("test.point:always").expect("arm");
        static P: Point = Point::new("test.point");

        // No context: never fires even when armed.
        P.check();

        // Stage 0: fires with a typed payload.
        let caught = std::panic::catch_unwind(|| {
            let _ctx = push_context(1, 2, 99, 0);
            P.check();
        })
        .expect_err("armed point should fire");
        assert_eq!(
            payload_of(&*caught),
            Some(FaultPayload::Injected {
                point: "test.point"
            })
        );

        // Stage 1: a non-persistent trigger stays quiet (degrade recovers).
        {
            let _ctx = push_context(1, 2, 99, 1);
            P.check();
        }

        // Persistent trigger fires at stage 1 too.
        arm_spec("test.point:always!").expect("arm");
        assert!(std::panic::catch_unwind(|| {
            let _ctx = push_context(1, 2, 99, 1);
            P.check();
        })
        .is_err());
        clear();
    }

    #[test]
    fn generation_triggers_address_one_candidate() {
        let _g = lock();
        arm_spec("test.gen:gen3,test.gc:g2c5").expect("arm");
        static GEN: Point = Point::new("test.gen");
        static GC: Point = Point::new("test.gc");

        let fires_at = |p: &'static Point, generation, candidate| {
            std::panic::catch_unwind(move || {
                let _ctx = push_context(generation, candidate, 7, 0);
                p.check();
            })
            .is_err()
        };
        assert!(fires_at(&GEN, 3, 0));
        assert!(!fires_at(&GEN, 3, 1), "genN addresses candidate 0 only");
        assert!(!fires_at(&GEN, 2, 0));
        assert!(fires_at(&GC, 2, 5));
        assert!(!fires_at(&GC, 2, 4));
        assert!(!fires_at(&GC, 3, 5));
        clear();
    }

    #[test]
    fn probability_is_deterministic_per_key_and_seed() {
        let _g = lock();
        arm_spec("test.prob:0.5,seed=11").expect("arm");
        static P: Point = Point::new("test.prob");
        let decide = |key| {
            std::panic::catch_unwind(move || {
                let _ctx = push_context(0, 0, key, 0);
                P.check();
            })
            .is_err()
        };
        let first: Vec<bool> = (0..64).map(decide).collect();
        let second: Vec<bool> = (0..64).map(decide).collect();
        assert_eq!(first, second, "same key/seed must decide identically");
        let hits = first.iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 keys, got {hits}");
        clear();
    }

    #[test]
    fn external_points_fire_without_a_context() {
        let _g = lock();
        arm_spec("journal.write:always").expect("arm");
        static J: Point = Point::new("journal.write");
        static OTHER: Point = Point::new("serve.runner_panic");
        // No push_context anywhere: the service-level API still decides.
        assert!(J.fires_external(0));
        assert!(!OTHER.fires_external(0), "only the armed point matches");

        // Probabilities are deterministic per (key, seed) and neither
        // always-on nor always-off at p=0.5.
        arm_spec("journal.write:0.5,seed=3").expect("arm");
        let first: Vec<bool> = (0..64).map(|k| J.fires_external(k)).collect();
        let second: Vec<bool> = (0..64).map(|k| J.fires_external(k)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 keys, got {hits}");

        // Generation-addressed triggers never match context-free checks.
        arm_spec("journal.write:gen0").expect("arm");
        assert!(!J.fires_external(0));
        clear();
        assert!(!J.fires_external(0), "disarmed spec never fires");
    }

    #[test]
    fn deadline_fires_at_checkpoints() {
        let _g = lock();
        clear();
        static P: Point = Point::new("test.deadline");
        let caught = std::panic::catch_unwind(|| {
            let _dl = set_deadline(Duration::from_millis(0));
            P.check();
        })
        .expect_err("expired deadline should fire");
        assert_eq!(
            payload_of(&*caught),
            Some(FaultPayload::DeadlineExceeded { budget_ms: 0 })
        );
        // Guard dropped: the gate is released again.
        P.check();
    }
}
