//! Proptest oracle pinning the paged usage planes to a flat reference:
//! under random add/rip/clone interleavings the tile-major paged storage
//! must read back cell-for-cell identical to a plain `y * nx + x` flat
//! vector, the row-major `for_each` walk must visit exactly that vector
//! in order, and the whole-grid overflow census must match a grid that
//! saw the same quanta without any page sharing history.

use geom::GcellPos;
use layout::Floorplan;
use proptest::prelude::*;
use route::{RouteGrid, GCELL_H_ROWS, GCELL_W_SITES};
use tech::{RouteRule, Technology, NUM_METAL_LAYERS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paged_planes_match_flat_reference(
        dims in (2u32..48, 2u32..34),
        ops in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 2usize..=10, 1i64..4000, any::<bool>()),
            1..80,
        ),
    ) {
        let tech = Technology::nangate45_like();
        let fp = Floorplan::new(dims.1 * GCELL_H_ROWS, dims.0 * GCELL_W_SITES);
        let mut grid = RouteGrid::new(&fp, &tech, &RouteRule::default());
        // An independent grid replaying the same quanta with no clone
        // history: page-sharing must be unobservable through every read.
        let mut fresh = RouteGrid::new(&fp, &tech, &RouteRule::default());
        let n = (grid.nx() * grid.ny()) as usize;
        let mut flat = vec![vec![0i64; n]; NUM_METAL_LAYERS];
        let mut snapshots: Vec<(RouteGrid, Vec<Vec<i64>>)> = Vec::new();
        for (step, &(x, y, m, q, rip)) in ops.iter().enumerate() {
            let g = GcellPos::new(x % grid.nx(), y % grid.ny());
            let i = (g.y * grid.nx() + g.x) as usize;
            // Rips never take a cell negative (mirrors the router, which
            // only rips quanta it previously committed).
            let q = if rip { -(q.min(flat[m - 1][i])) } else { q };
            grid.add_quanta(m, g, q);
            fresh.add_quanta(m, g, q);
            flat[m - 1][i] += q;
            // Periodic clones force page sharing; later writes must
            // copy-on-write without disturbing the snapshot.
            if step % 9 == 0 {
                snapshots.push((grid.clone(), flat.clone()));
                if snapshots.len() > 3 {
                    snapshots.remove(0);
                }
            }
        }
        for m in 2..=NUM_METAL_LAYERS {
            // Cell reads and the row-major walk agree with the flat
            // reference.
            let mut walked = vec![0i64; n];
            let mut last: i64 = -1;
            let mut ordered = true;
            grid.plane(m).for_each(|i, v| {
                ordered &= i as i64 > last;
                last = i as i64;
                walked[i] = v;
            });
            prop_assert!(ordered, "walk order broke on layer {}", m);
            prop_assert_eq!(last as usize, n - 1);
            prop_assert_eq!(&walked, &flat[m - 1], "layer {}", m);
            for y in 0..grid.ny() {
                for x in 0..grid.nx() {
                    prop_assert_eq!(
                        grid.quanta_at(m, x, y),
                        flat[m - 1][(y * grid.nx() + x) as usize],
                        "layer {} at ({}, {})", m, x, y
                    );
                }
            }
        }
        // Census equality with the sharing-free replay, including float
        // totals (same walk order, same summation order).
        prop_assert_eq!(grid.overflow_pairs(), fresh.overflow_pairs());
        prop_assert_eq!(grid.total_overflow(), fresh.total_overflow());
        prop_assert_eq!(grid.overflow_set().pairs(), fresh.overflow_set().pairs());
        prop_assert!(grid == fresh, "paged grids with identical quanta must compare equal");
        // Snapshots still read the values they were taken at.
        for (snap, at) in &snapshots {
            for m in 2..=NUM_METAL_LAYERS {
                for y in 0..snap.ny() {
                    for x in 0..snap.nx() {
                        prop_assert_eq!(
                            snap.quanta_at(m, x, y),
                            at[m - 1][(y * snap.nx() + x) as usize]
                        );
                    }
                }
            }
        }
    }
}
