//! Property suite: region-parallel rip-up-and-reroute is *bit-identical*
//! to the sequential reference path at every thread count.
//!
//! Randomized placements (seed, utilization, NDR scale) are routed through
//! Phase A once, then the same plan is finalized with the serial path and
//! with worker bounds 2 and 8. Every observable — the occupancy grid,
//! per-net segments, parasitics, and wirelength — must match exactly; the
//! round/victim/region trajectory is compared through the `obs` telemetry
//! counters that replaced the old per-call stats structs.

use std::sync::{Mutex, MutexGuard, PoisonError};

use layout::Layout;
use netlist::bench;
use proptest::prelude::*;
use route::{finalize_route_serial, finalize_route_with, plan_route, RoutingState};
use tech::{RouteRule, Technology};

/// Aggregate Phase-B trajectory of one `finalize_route_with` call, read
/// back from the process-global telemetry registry. Tests that compare
/// trajectories hold [`exclusive`] so no other routing runs interleave.
#[derive(Debug, PartialEq, Eq)]
struct Trajectory {
    rounds: u64,
    victims: u64,
    regions: u64,
}

fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::reset();
    obs::set_enabled(true);
    g
}

fn traced<R>(f: impl FnOnce() -> R) -> (R, Trajectory) {
    let before = obs::snapshot();
    let r = f();
    let after = obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    (
        r,
        Trajectory {
            rounds: delta("rrr.rounds"),
            victims: delta("rrr.victims"),
            regions: delta("rrr.regions"),
        },
    )
}

fn placed(seed: u64, util: f64, rule: RouteRule) -> (Technology, Layout) {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut layout = Layout::empty_floorplan(design, &tech, util);
    place::global_place(&mut layout, &tech, seed);
    place::refine_wirelength(&mut layout, &tech, 2, seed);
    layout.set_route_rule(rule);
    (tech, layout)
}

fn assert_bit_identical(
    serial: &RoutingState,
    par: &RoutingState,
    layout: &Layout,
    threads: usize,
) {
    assert!(
        serial.grid() == par.grid(),
        "route grid diverged at {threads} threads"
    );
    for (nid, _) in layout.design().nets_iter() {
        assert_eq!(
            serial.net_segs(nid),
            par.net_segs(nid),
            "segments of net {} diverged at {threads} threads",
            nid.0
        );
        assert_eq!(
            serial.net_rc(nid),
            par.net_rc(nid),
            "parasitics of net {} diverged at {threads} threads",
            nid.0
        );
    }
    assert_eq!(serial.total_wirelength_um(), par.total_wirelength_um());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_finalize_matches_serial(
        seed in 0u64..1_000_000,
        util_pct in 50u32..=80,
        scale_idx in 0usize..RouteRule::CANDIDATES.len(),
    ) {
        // Tight utilization plus a fat NDR forces real congestion, so the
        // rip-up-and-reroute rounds (the code under test) actually run.
        let _g = exclusive();
        let rule = RouteRule::uniform(RouteRule::CANDIDATES[scale_idx]);
        let (tech, layout) = placed(seed, f64::from(util_pct) / 100.0, rule);
        let plan = plan_route(&layout, &tech);
        let (serial, serial_traj) =
            traced(|| finalize_route_serial(&layout, &tech, plan.clone()));
        for threads in [2usize, 8] {
            let (par, par_traj) =
                traced(|| finalize_route_with(&layout, &tech, plan.clone(), threads));
            assert_bit_identical(&serial, &par, &layout, threads);
            // Same overflow census, same victim sets, same region
            // partition — only *how* the rounds executed may differ.
            prop_assert_eq!(&serial_traj, &par_traj, "trajectory diverged at {} threads", threads);
        }
        obs::set_enabled(false);
    }
}

/// A deliberately congested fixed case that is known to trigger rip-up
/// rounds, as a fast deterministic anchor alongside the property above.
/// (The tiny fixture's congestion always collapses into one region — the
/// maze halo is wide relative to its die — so the genuinely multi-region
/// parallel merge is pinned down by a synthetic-grid unit test in
/// `router.rs` instead.)
#[test]
fn congested_case_runs_rounds_and_stays_deterministic() {
    let _g = exclusive();
    let (tech, layout) = placed(5, 0.75, RouteRule::uniform(1.5));
    let plan = plan_route(&layout, &tech);
    let (serial, serial_traj) = traced(|| finalize_route_serial(&layout, &tech, plan.clone()));
    assert!(
        serial_traj.rounds > 0,
        "fixture must trigger rip-up-and-reroute rounds"
    );
    let (par8, par_traj) = traced(|| finalize_route_with(&layout, &tech, plan.clone(), 8));
    assert_bit_identical(&serial, &par8, &layout, 8);
    assert_eq!(serial_traj, par_traj);
    // Re-running the identical input reproduces the identical trajectory.
    let (_, again_traj) = traced(|| finalize_route_with(&layout, &tech, plan, 8));
    assert_eq!(par_traj, again_traj);
    obs::set_enabled(false);
}
