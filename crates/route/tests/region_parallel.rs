//! Property suite: region-parallel rip-up-and-reroute is *bit-identical*
//! to the sequential reference path at every thread count.
//!
//! Randomized placements (seed, utilization, NDR scale) are routed through
//! Phase A once, then the same plan is finalized with the serial path and
//! with worker bounds 2 and 8. Every observable — the occupancy grid,
//! per-net segments, parasitics, wirelength, and the per-round
//! overflow/victim/region trajectory — must match exactly; only the
//! `parallel` flag, thread bound, and wall time may differ.

use layout::Layout;
use netlist::bench;
use proptest::prelude::*;
use route::{finalize_route_serial, finalize_route_with, plan_route, RoutingState};
use tech::{RouteRule, Technology};

fn placed(seed: u64, util: f64, rule: RouteRule) -> (Technology, Layout) {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut layout = Layout::empty_floorplan(design, &tech, util);
    place::global_place(&mut layout, &tech, seed);
    place::refine_wirelength(&mut layout, &tech, 2, seed);
    layout.set_route_rule(rule);
    (tech, layout)
}

fn assert_bit_identical(
    serial: &RoutingState,
    par: &RoutingState,
    layout: &Layout,
    threads: usize,
) {
    assert!(
        serial.grid() == par.grid(),
        "route grid diverged at {threads} threads"
    );
    for (nid, _) in layout.design().nets_iter() {
        assert_eq!(
            serial.net_segs(nid),
            par.net_segs(nid),
            "segments of net {} diverged at {threads} threads",
            nid.0
        );
        assert_eq!(
            serial.net_rc(nid),
            par.net_rc(nid),
            "parasitics of net {} diverged at {threads} threads",
            nid.0
        );
    }
    assert_eq!(serial.total_wirelength_um(), par.total_wirelength_um());
    // The round trajectory must agree too — same overflow census, same
    // victim sets, same region partition — modulo the fields that record
    // *how* (not *what*) the rounds executed.
    let (a, b) = (&serial.stats().rounds, &par.stats().rounds);
    assert_eq!(
        a.len(),
        b.len(),
        "round count diverged at {threads} threads"
    );
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.round, rb.round);
        assert_eq!(ra.overflow_pairs, rb.overflow_pairs);
        assert_eq!(ra.total_overflow, rb.total_overflow);
        assert_eq!(ra.victims, rb.victims);
        assert_eq!(ra.regions, rb.regions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_finalize_matches_serial(
        seed in 0u64..1_000_000,
        util_pct in 50u32..=80,
        scale_idx in 0usize..RouteRule::CANDIDATES.len(),
    ) {
        // Tight utilization plus a fat NDR forces real congestion, so the
        // rip-up-and-reroute rounds (the code under test) actually run.
        let rule = RouteRule::uniform(RouteRule::CANDIDATES[scale_idx]);
        let (tech, layout) = placed(seed, f64::from(util_pct) / 100.0, rule);
        let plan = plan_route(&layout, &tech);
        let serial = finalize_route_serial(&layout, &tech, plan.clone());
        prop_assert_eq!(serial.stats().threads, 1);
        for threads in [2usize, 8] {
            let par = finalize_route_with(&layout, &tech, plan.clone(), threads);
            prop_assert_eq!(par.stats().threads, threads);
            assert_bit_identical(&serial, &par, &layout, threads);
        }
    }
}

/// A deliberately congested fixed case that is known to trigger rip-up
/// rounds, as a fast deterministic anchor alongside the property above.
/// (The tiny fixture's congestion always collapses into one region — the
/// maze halo is wide relative to its die — so the genuinely multi-region
/// parallel merge is pinned down by a synthetic-grid unit test in
/// `router.rs` instead.)
#[test]
fn congested_case_runs_rounds_and_stays_deterministic() {
    let (tech, layout) = placed(5, 0.75, RouteRule::uniform(1.5));
    let plan = plan_route(&layout, &tech);
    let serial = finalize_route_serial(&layout, &tech, plan.clone());
    assert!(
        !serial.stats().rounds.is_empty(),
        "fixture must trigger rip-up-and-reroute rounds"
    );
    let par8 = finalize_route_with(&layout, &tech, plan.clone(), 8);
    assert_bit_identical(&serial, &par8, &layout, 8);
    // Re-running the identical input reproduces the identical trajectory,
    // `parallel` flag and all.
    let again = finalize_route_with(&layout, &tech, plan, 8);
    assert_eq!(par8.stats().rounds, again.stats().rounds.clone());
}
