//! Proptest oracle pinning the radix bucket frontier to the reference
//! binary heap: on random grids, congestion blobs, windows, and penalty
//! escalations, both frontiers must drive the shared maze search body to
//! the identical path — the packed-entry order is the old heap's
//! tie-break order, so any divergence is a frontier bug, not a tie.

use geom::GcellPos;
use layout::Floorplan;
use proptest::prelude::*;
use route::{RouteGrid, GCELL_H_ROWS, GCELL_W_SITES};
use tech::{RouteRule, Technology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bucket_frontier_matches_binary_heap(
        dims in (2u32..40, 2u32..24),
        blobs in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 2usize..=10, 1i64..4000),
            0..40,
        ),
        ends in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        round in 0i32..5,
        wide in any::<bool>(),
    ) {
        let tech = Technology::nangate45_like();
        let rule = if wide {
            RouteRule::uniform(1.5)
        } else {
            RouteRule::default()
        };
        let fp = Floorplan::new(dims.1 * GCELL_H_ROWS, dims.0 * GCELL_W_SITES);
        let mut grid = RouteGrid::new(&fp, &tech, &rule);
        for (x, y, m, q) in blobs {
            grid.add_quanta(m, GcellPos::new(x % grid.nx(), y % grid.ny()), q);
        }
        let a = GcellPos::new(ends.0 % grid.nx(), ends.1 % grid.ny());
        let b = GcellPos::new(ends.2 % grid.nx(), ends.3 % grid.ny());
        // The penalty schedule rip-up-and-reroute actually escalates with.
        let penalty = 3.0f64.powi(round + 1);
        let dial = route::maze_route_dial_for_tests(&grid, a, b, penalty);
        let heap = route::maze_route_heap_for_tests(&grid, a, b, penalty);
        prop_assert_eq!(dial, heap, "{:?} -> {:?} penalty {}", a, b, penalty);
    }
}
