use std::sync::Arc;

use geom::{Dbu, GcellPos, SitePos};
use layout::Floorplan;
use tech::{LayerDir, RouteRule, Technology, NUM_METAL_LAYERS, SITE_H, SITE_W};

/// Width of a gcell in placement sites (3.8 µm).
pub const GCELL_W_SITES: u32 = 20;

/// Height of a gcell in core rows (4.2 µm).
pub const GCELL_H_ROWS: u32 = 3;

/// One quarter of an unscaled track-equivalent: the integer quantum in
/// which gcell usage is accounted. A run endpoint contributes 1 quantum,
/// an interior gcell 4 (the NDR width scale is applied at read time).
pub const QUANTA_PER_TRACK: i64 = 4;

/// Log2 of the page edge in gcells: usage planes are tiled into
/// 16×16-gcell pages so a copy-on-write write after a clone copies one
/// 2 KiB page instead of the whole plane.
const PAGE_SHIFT: u32 = 4;

/// Page edge in gcells.
const PAGE_W: u32 = 1 << PAGE_SHIFT;

/// Cells per page.
const PAGE_CELLS: usize = (PAGE_W * PAGE_W) as usize;

/// One 16×16-gcell tile of usage quanta.
type Page = [i64; PAGE_CELLS];

/// One layer's usage quanta, chunked into tile-major copy-on-write
/// pages. Cells outside the `nx × ny` grid (padding in edge pages) are
/// never written and stay zero, so derived `PartialEq` over pages is
/// exactly cell equality.
///
/// All pages of a fresh grid share a single zeroed allocation (across
/// layers too); a write un-shares only the page it lands in
/// ([`Arc::make_mut`]). Cloning a plane bumps one refcount per page —
/// warm candidate snapshots copy only the pages they actually touch
/// instead of whole planes.
#[derive(Debug, Clone, PartialEq)]
pub struct PagedPlane {
    nx: u32,
    ny: u32,
    /// Pages per row of tiles: `ceil(nx / 16)`.
    tiles_x: u32,
    /// Tile-major: page `(tx, ty)` at `ty * tiles_x + tx`.
    pages: Vec<Arc<Page>>,
}

impl PagedPlane {
    fn new(nx: u32, ny: u32, zero: &Arc<Page>) -> Self {
        let tiles_x = nx.div_ceil(PAGE_W).max(1);
        let tiles_y = ny.div_ceil(PAGE_W).max(1);
        Self {
            nx,
            ny,
            tiles_x,
            pages: vec![Arc::clone(zero); (tiles_x * tiles_y) as usize],
        }
    }

    #[inline]
    fn loc(&self, x: u32, y: u32) -> (usize, usize) {
        let t = ((y >> PAGE_SHIFT) * self.tiles_x + (x >> PAGE_SHIFT)) as usize;
        let off = (((y & (PAGE_W - 1)) << PAGE_SHIFT) | (x & (PAGE_W - 1))) as usize;
        (t, off)
    }

    /// Usage quanta at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> i64 {
        let (t, off) = self.loc(x, y);
        self.pages[t][off]
    }

    /// Adds `q` quanta at `(x, y)`, copying the page if shared. Returns
    /// the new value.
    #[inline]
    fn add(&mut self, x: u32, y: u32, q: i64) -> i64 {
        let (t, off) = self.loc(x, y);
        let page = Arc::make_mut(&mut self.pages[t]);
        page[off] += q;
        page[off]
    }

    /// Visits every cell in flat row-major order — `(y * nx + x, value)`
    /// with the flat index strictly increasing — the exact order the
    /// pre-paging dense planes iterated in, so float accumulations over
    /// this walk are bit-identical to theirs.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize, i64)) {
        for y in 0..self.ny {
            let ty = y >> PAGE_SHIFT;
            let py = ((y & (PAGE_W - 1)) << PAGE_SHIFT) as usize;
            let base = (y * self.nx) as usize;
            for tx in 0..self.tiles_x {
                let x0 = tx << PAGE_SHIFT;
                if x0 >= self.nx {
                    break;
                }
                let count = (self.nx - x0).min(PAGE_W) as usize;
                let page = &self.pages[(ty * self.tiles_x + tx) as usize];
                for (dx, &v) in page[py..py + count].iter().enumerate() {
                    f(base + x0 as usize + dx, v);
                }
            }
        }
    }

    /// Raw pointer identity of the page covering `(x, y)` — exposed so
    /// copy-on-write tests can assert page sharing.
    #[doc(hidden)]
    pub fn page_ptr(&self, x: u32, y: u32) -> *const () {
        let (t, _) = self.loc(x, y);
        Arc::as_ptr(&self.pages[t]) as *const ()
    }
}

/// The routing grid: gcell tiling of the core plus per-layer, per-gcell
/// track capacities and usage counters.
///
/// M1 is reserved for intra-cell routing and pin access and carries no
/// global-routing capacity; layers M2–M10 route signals in their preferred
/// direction.
///
/// Usage is stored in integer *quanta* (quarter-tracks before NDR
/// scaling) rather than floats. Integer adds commute exactly, so the
/// committed state of a set of nets is independent of the order they were
/// routed in, and applying the layer scale only at read time makes the
/// same stored segments valid under a different [`RouteRule`] — both
/// properties the incremental reroute path relies on to reproduce a
/// from-scratch route bit for bit.
///
/// Usage planes are copy-on-write at page granularity: each layer is a
/// [`PagedPlane`] of 16×16-gcell tiles behind `Arc`s, so cloning a grid
/// (plan memoization, best-state snapshots, region-worker scratch
/// grids) costs one refcount bump per page, and a write deep-copies
/// only the 2 KiB page it lands in ([`Arc::make_mut`] in
/// [`RouteGrid::add_quanta`]) — warm candidates no longer copy whole
/// planes.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteGrid {
    nx: u32,
    ny: u32,
    /// Capacity in tracks per gcell per layer (index 0 = M1, always 0.0).
    cap: [f64; NUM_METAL_LAYERS],
    /// Usage in quanta (quarter-tracks, unscaled), paged per layer.
    /// Copy-on-write per page; see [`PagedPlane`].
    usage: Vec<PagedPlane>,
    /// Active NDR scale per layer.
    scales: [f64; NUM_METAL_LAYERS],
    dirs: [LayerDir; NUM_METAL_LAYERS],
    /// Routable (M1-excluded) 1-based layers per direction, precomputed —
    /// layer selection sits on the maze router's innermost loop.
    h_layers: Vec<usize>,
    v_layers: Vec<usize>,
    /// Gcell span in DBU along x and y.
    span_x: Dbu,
    span_y: Dbu,
}

impl RouteGrid {
    /// Builds the grid for a floorplan under the given NDR rule.
    pub fn new(fp: &Floorplan, tech: &Technology, rule: &RouteRule) -> Self {
        let nx = fp.cols().div_ceil(GCELL_W_SITES).max(1);
        let ny = fp.rows().div_ceil(GCELL_H_ROWS).max(1);
        let span_x = GCELL_W_SITES as Dbu * SITE_W;
        let span_y = GCELL_H_ROWS as Dbu * SITE_H;
        // All layers start out sharing one zeroed page across every
        // tile; the first write on a page un-shares it (copy-on-write).
        let zero: Arc<Page> = Arc::new([0i64; PAGE_CELLS]);
        let usage = (0..NUM_METAL_LAYERS)
            .map(|_| PagedPlane::new(nx, ny, &zero))
            .collect();
        let mut grid = Self {
            nx,
            ny,
            cap: [0.0; NUM_METAL_LAYERS],
            usage,
            scales: [1.0; NUM_METAL_LAYERS],
            dirs: [LayerDir::Horizontal; NUM_METAL_LAYERS],
            h_layers: Vec::new(),
            v_layers: Vec::new(),
            span_x,
            span_y,
        };
        grid.set_rule(tech, rule);
        grid
    }

    /// Re-derives per-layer scales and capacities for a new NDR rule while
    /// keeping the committed usage quanta. Because usage is stored
    /// unscaled, the grid afterwards reads exactly as if every present
    /// segment had been committed under `rule` from the start.
    pub fn set_rule(&mut self, tech: &Technology, rule: &RouteRule) {
        for (i, layer) in tech.layers.iter().enumerate() {
            self.dirs[i] = layer.dir;
            self.scales[i] = rule.scale(i + 1);
            if i == 0 {
                continue; // M1: pin access only.
            }
            // A horizontal layer's tracks stack vertically across the gcell
            // height; a vertical layer's tracks stack across the width.
            let span = match layer.dir {
                LayerDir::Horizontal => self.span_y,
                LayerDir::Vertical => self.span_x,
            };
            self.cap[i] = layer.tracks_in_span(span, self.scales[i]) as f64;
        }
        self.h_layers.clear();
        self.v_layers.clear();
        for m in 2..=NUM_METAL_LAYERS {
            match self.dirs[m - 1] {
                LayerDir::Horizontal => self.h_layers.push(m),
                LayerDir::Vertical => self.v_layers.push(m),
            }
        }
    }

    /// Grid width in gcells.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Grid height in gcells.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Gcell span along x in DBU.
    pub fn span_x(&self) -> Dbu {
        self.span_x
    }

    /// Gcell span along y in DBU.
    pub fn span_y(&self) -> Dbu {
        self.span_y
    }

    /// Gcell containing a placement site.
    pub fn gcell_of_site(&self, pos: SitePos) -> GcellPos {
        GcellPos::new(
            (pos.col / GCELL_W_SITES).min(self.nx - 1),
            (pos.row / GCELL_H_ROWS).min(self.ny - 1),
        )
    }

    /// Gcell containing a DBU point.
    pub fn gcell_of_point(&self, p: geom::Point) -> GcellPos {
        GcellPos::new(
            ((p.x / self.span_x).max(0) as u32).min(self.nx - 1),
            ((p.y / self.span_y).max(0) as u32).min(self.ny - 1),
        )
    }

    /// Track capacity of 1-based layer `m` per gcell.
    pub fn capacity(&self, m: usize) -> f64 {
        self.cap[m - 1]
    }

    /// NDR scale of 1-based layer `m`.
    pub fn scale(&self, m: usize) -> f64 {
        self.scales[m - 1]
    }

    /// Preferred direction of 1-based layer `m`.
    pub fn dir(&self, m: usize) -> LayerDir {
        self.dirs[m - 1]
    }

    /// 1-based routable layers with the given direction (M1 excluded).
    pub fn layers_with_dir(&self, dir: LayerDir) -> &[usize] {
        match dir {
            LayerDir::Horizontal => &self.h_layers,
            LayerDir::Vertical => &self.v_layers,
        }
    }

    /// Track usage of layer `m` at `g`, in NDR-scaled track-equivalents.
    pub fn usage(&self, m: usize, g: GcellPos) -> f64 {
        self.scaled(m, self.usage[m - 1].get(g.x, g.y))
    }

    fn scaled(&self, m: usize, quanta: i64) -> f64 {
        quanta as f64 * self.scales[m - 1] / QUANTA_PER_TRACK as f64
    }

    /// Adds `q` usage quanta (quarter-tracks, unscaled) on layer `m` at
    /// `g`; negative values rip usage back out. First write after a clone
    /// deep-copies the 16×16-gcell page it lands in (copy-on-write).
    pub fn add_quanta(&mut self, m: usize, g: GcellPos, q: i64) {
        let v = self.usage[m - 1].add(g.x, g.y, q);
        debug_assert!(v >= 0, "usage went negative");
        let _ = v;
    }

    /// Unscaled usage quanta of layer `m` at gcell `(x, y)` — the paged
    /// replacement for indexing a flat plane slice; the maze router's
    /// congestion cost reads through this.
    #[inline]
    pub fn quanta_at(&self, m: usize, x: u32, y: u32) -> i64 {
        self.usage[m - 1].get(x, y)
    }

    /// Read-only view of layer `m`'s paged usage plane in unscaled
    /// quanta. Exposed so equivalence tests can compare two grids
    /// exactly and assert page-level copy-on-write sharing.
    pub fn plane(&self, m: usize) -> &PagedPlane {
        &self.usage[m - 1]
    }

    /// Resident heap bytes of the usage planes, with pages shared
    /// between layers (or with other grid clones already counted by the
    /// caller's walk of this grid) counted once via pointer identity.
    pub fn planes_bytes(&self) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0u64;
        for plane in &self.usage {
            bytes += (plane.pages.capacity() * size_of::<Arc<Page>>()) as u64;
            for p in &plane.pages {
                if seen.insert(Arc::as_ptr(p)) {
                    bytes += size_of::<Page>() as u64;
                }
            }
        }
        bytes
    }

    /// Resident page bytes of this grid *not* shared with `base`: pages
    /// whose `Arc`s diverged through copy-on-write writes, deduplicated
    /// by pointer within this grid. Approximately what dropping this
    /// grid frees while `base` stays alive.
    pub fn unshared_planes_bytes(&self, base: &RouteGrid) -> u64 {
        let mut base_pages = std::collections::HashSet::new();
        for plane in &base.usage {
            for p in &plane.pages {
                base_pages.insert(Arc::as_ptr(p));
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0u64;
        for plane in &self.usage {
            for p in &plane.pages {
                let ptr = Arc::as_ptr(p);
                if !base_pages.contains(&ptr) && seen.insert(ptr) {
                    bytes += size_of::<Page>() as u64;
                }
            }
        }
        bytes
    }

    /// Free tracks on layer `m` at `g` (clamped at zero when overflowed).
    pub fn free_tracks(&self, m: usize, g: GcellPos) -> f64 {
        (self.cap[m - 1] - self.usage(m, g)).max(0.0)
    }

    /// Free tracks summed over all routable layers at `g` — the quantity
    /// ERtracks aggregates over exploitable regions.
    pub fn free_tracks_all_layers(&self, g: GcellPos) -> f64 {
        (2..=NUM_METAL_LAYERS).map(|m| self.free_tracks(m, g)).sum()
    }

    /// Total capacity over all routable layers at one gcell.
    pub fn capacity_all_layers(&self) -> f64 {
        (2..=NUM_METAL_LAYERS).map(|m| self.cap[m - 1]).sum()
    }

    /// Number of `(layer, gcell)` pairs whose usage exceeds capacity by
    /// more than `tol` tracks. Detailed routing absorbs fractional
    /// overflows; only deep overflow surfaces as DRC violations.
    pub fn deep_overflow_pairs(&self, tol: f64) -> u32 {
        let mut n = 0;
        for m in 2..=NUM_METAL_LAYERS {
            self.usage[m - 1].for_each(|_, u| {
                if self.scaled(m, u) > self.cap[m - 1] + tol {
                    n += 1;
                }
            });
        }
        n
    }

    /// Number of `(layer, gcell)` pairs whose usage exceeds capacity.
    pub fn overflow_pairs(&self) -> u32 {
        let mut n = 0;
        for m in 2..=NUM_METAL_LAYERS {
            self.usage[m - 1].for_each(|_, u| {
                if self.scaled(m, u) > self.cap[m - 1] + 1e-9 {
                    n += 1;
                }
            });
        }
        n
    }

    /// Total usage above capacity, in track-equivalents.
    pub fn total_overflow(&self) -> f64 {
        let mut t = 0.0;
        for m in 2..=NUM_METAL_LAYERS {
            self.usage[m - 1].for_each(|_, u| {
                t += (self.scaled(m, u) - self.cap[m - 1]).max(0.0);
            });
        }
        t
    }

    /// One-pass overflow census: a membership bitset over overflowed
    /// `(layer, gcell)` pairs plus the pair count and total overflow.
    ///
    /// Uses the same epsilon and the same layer-major summation order as
    /// [`RouteGrid::overflow_pairs`] / [`RouteGrid::total_overflow`], so
    /// `set.pairs()` and `set.total_overflow()` are bit-identical to
    /// those methods on the same grid — rip-up-and-reroute scores rounds
    /// off this census instead of re-reading usage per victim segment.
    pub fn overflow_set(&self) -> OverflowSet {
        let n_cells = (self.nx * self.ny) as usize;
        let n_routable = NUM_METAL_LAYERS - 1;
        let mut set = OverflowSet {
            nx: self.nx,
            n_cells,
            words: vec![0u64; (n_routable * n_cells).div_ceil(64)],
            cell_words: vec![0u64; n_cells.div_ceil(64)],
            pairs: 0,
            total: 0.0,
        };
        for m in 2..=NUM_METAL_LAYERS {
            let cap = self.cap[m - 1];
            self.usage[m - 1].for_each(|i, u| {
                let scaled = self.scaled(m, u);
                set.total += (scaled - cap).max(0.0);
                if scaled > cap + 1e-9 {
                    set.pairs += 1;
                    let bit = (m - 2) * n_cells + i;
                    set.words[bit / 64] |= 1 << (bit % 64);
                    set.cell_words[i / 64] |= 1 << (i % 64);
                }
            });
        }
        set
    }
}

/// Bitset census of overflowed `(layer, gcell)` pairs, built once per
/// rip-up-and-reroute round by [`RouteGrid::overflow_set`]. Victim
/// scanning tests membership here instead of re-deriving scaled usage per
/// segment cell, and the 2-D projection seeds the congestion-region
/// partitioner.
#[derive(Debug, Clone)]
pub struct OverflowSet {
    nx: u32,
    n_cells: usize,
    /// Per-(layer, gcell) bits; bit index `(m - 2) * n_cells + idx`.
    words: Vec<u64>,
    /// 2-D projection: gcells overflowed on *any* routable layer.
    cell_words: Vec<u64>,
    pairs: u32,
    total: f64,
}

impl OverflowSet {
    /// True when no `(layer, gcell)` pair overflows.
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// Number of overflowed `(layer, gcell)` pairs; bit-identical to
    /// [`RouteGrid::overflow_pairs`] on the source grid.
    pub fn pairs(&self) -> u32 {
        self.pairs
    }

    /// Total overflow in track-equivalents; bit-identical to
    /// [`RouteGrid::total_overflow`] on the source grid.
    pub fn total_overflow(&self) -> f64 {
        self.total
    }

    /// Whether 1-based layer `m` overflows at `g`.
    pub fn contains(&self, m: usize, g: GcellPos) -> bool {
        let idx = (g.y * self.nx + g.x) as usize;
        let bit = (m - 2) * self.n_cells + idx;
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Gcells overflowed on at least one layer, in row-major order — the
    /// seeds of the congestion-region partition.
    pub fn cells_2d(&self) -> Vec<GcellPos> {
        let mut cells = Vec::new();
        for (w, &word) in self.cell_words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let idx = w * 64 + b;
                cells.push(GcellPos::new(
                    (idx % self.nx as usize) as u32,
                    (idx / self.nx as usize) as u32,
                ));
                bits &= bits - 1;
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RouteGrid {
        let tech = Technology::nangate45_like();
        let fp = Floorplan::new(21, 200);
        RouteGrid::new(&fp, &tech, &RouteRule::default())
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 7);
        assert_eq!(g.capacity(1), 0.0, "M1 carries no global routing");
        assert!(g.capacity(2) > 0.0);
    }

    #[test]
    fn ndr_reduces_capacity() {
        let tech = Technology::nangate45_like();
        let fp = Floorplan::new(20, 200);
        let base = RouteGrid::new(&fp, &tech, &RouteRule::default());
        let wide = RouteGrid::new(&fp, &tech, &RouteRule::uniform(1.5));
        for m in 2..=NUM_METAL_LAYERS {
            assert!(wide.capacity(m) <= base.capacity(m), "layer {m}");
        }
        assert!(wide.capacity_all_layers() < base.capacity_all_layers());
    }

    #[test]
    fn usage_and_overflow_accounting() {
        let mut g = grid();
        let p = GcellPos::new(3, 4);
        assert_eq!(g.overflow_pairs(), 0);
        let cap2 = g.capacity(2);
        // Default rule (scale 1.0): each quantum reads as a quarter track.
        let q = ((cap2 + 2.0) * QUANTA_PER_TRACK as f64) as i64;
        g.add_quanta(2, p, q);
        assert!((g.usage(2, p) - (cap2 + 2.0)).abs() < 1e-9);
        assert_eq!(g.overflow_pairs(), 1);
        assert!((g.total_overflow() - 2.0).abs() < 1e-9);
        assert_eq!(g.free_tracks(2, p), 0.0);
        assert!(g.free_tracks_all_layers(p) > 0.0, "other layers still free");
        // Negative quanta rip usage back out exactly.
        g.add_quanta(2, p, -q);
        assert_eq!(g.usage(2, p), 0.0);
        assert_eq!(g.overflow_pairs(), 0);
    }

    #[test]
    fn set_rule_rescales_existing_usage() {
        let tech = Technology::nangate45_like();
        let fp = Floorplan::new(21, 200);
        let mut g = RouteGrid::new(&fp, &tech, &RouteRule::default());
        let p = GcellPos::new(1, 1);
        g.add_quanta(3, p, 8); // two unscaled tracks
        assert!((g.usage(3, p) - 2.0).abs() < 1e-12);
        g.set_rule(&tech, &RouteRule::uniform(1.5));
        // The same stored quanta now read under the new scale, exactly as
        // if the segments had been committed under the wide rule.
        assert!((g.usage(3, p) - 3.0).abs() < 1e-12);
        assert!((g.scale(3) - 1.5).abs() < 1e-12);
        let fresh = RouteGrid::new(&fp, &tech, &RouteRule::uniform(1.5));
        for m in 2..=NUM_METAL_LAYERS {
            assert_eq!(g.capacity(m), fresh.capacity(m), "layer {m}");
        }
    }

    #[test]
    fn site_to_gcell_mapping() {
        let g = grid();
        assert_eq!(g.gcell_of_site(SitePos::new(0, 0)), GcellPos::new(0, 0));
        assert_eq!(g.gcell_of_site(SitePos::new(20, 199)), GcellPos::new(9, 6));
        assert_eq!(g.gcell_of_site(SitePos::new(3, 45)), GcellPos::new(2, 1));
    }

    #[test]
    fn direction_partition_covers_m2_to_m10() {
        let g = grid();
        let h = g.layers_with_dir(LayerDir::Horizontal);
        let v = g.layers_with_dir(LayerDir::Vertical);
        assert_eq!(h.len() + v.len(), 9);
        assert!(!h.contains(&1) && !v.contains(&1));
    }

    #[test]
    fn usage_planes_are_copy_on_write() {
        let mut g = grid();
        let p = GcellPos::new(1, 1);
        g.add_quanta(2, p, 4);
        g.add_quanta(3, p, 4);
        let snap = g.clone();
        // A clone shares every page with its source.
        for m in 2..=NUM_METAL_LAYERS {
            assert_eq!(
                snap.plane(m).page_ptr(p.x, p.y),
                g.plane(m).page_ptr(p.x, p.y),
                "layer {m}"
            );
        }
        // Writing one layer un-shares exactly the page written.
        g.add_quanta(2, p, 4);
        assert_ne!(
            snap.plane(2).page_ptr(p.x, p.y),
            g.plane(2).page_ptr(p.x, p.y)
        );
        assert_eq!(
            snap.plane(3).page_ptr(p.x, p.y),
            g.plane(3).page_ptr(p.x, p.y)
        );
        // The clone kept the pre-write value; the source sees the write.
        assert!((snap.usage(2, p) - 1.0).abs() < 1e-12);
        assert!((g.usage(2, p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_planes_share_one_zero_page_across_layers() {
        let g = grid();
        let p0 = g.plane(2).page_ptr(0, 0);
        for m in 2..=NUM_METAL_LAYERS {
            assert_eq!(g.plane(m).page_ptr(0, 0), p0, "layer {m}");
        }
        // The shared-page accounting reports one page plus the Arc
        // tables (the 10×7 grid is a single 16×16 tile per layer).
        assert_eq!(
            g.planes_bytes(),
            (PAGE_CELLS * size_of::<i64>()) as u64
                + (NUM_METAL_LAYERS * size_of::<Arc<Page>>()) as u64
        );
    }

    #[test]
    fn paged_for_each_walks_row_major() {
        // A grid wider than one page exercises the tile-crossing walk.
        let tech = Technology::nangate45_like();
        let fp = Floorplan::new(120, 800); // nx = 40 gcells, ny = 40
        let mut g = RouteGrid::new(&fp, &tech, &RouteRule::default());
        assert!(g.nx() > PAGE_W && g.ny() > PAGE_W);
        // Scatter writes across pages, mirror into a flat shadow plane.
        let mut shadow = vec![0i64; (g.nx() * g.ny()) as usize];
        for k in 0..200u32 {
            let x = (k * 7) % g.nx();
            let y = (k * 13) % g.ny();
            let q = (k % 9) as i64 + 1;
            g.add_quanta(3, GcellPos::new(x, y), q);
            shadow[(y * g.nx() + x) as usize] += q;
        }
        let mut walked = vec![0i64; shadow.len()];
        let mut last: i64 = -1;
        g.plane(3).for_each(|i, v| {
            assert!(i as i64 > last, "flat index not strictly increasing");
            last = i as i64;
            walked[i] = v;
        });
        assert_eq!(
            last as usize,
            shadow.len() - 1,
            "walk must visit every cell"
        );
        assert_eq!(walked, shadow);
        for y in 0..g.ny() {
            for x in 0..g.nx() {
                assert_eq!(
                    g.quanta_at(3, x, y),
                    shadow[(y * g.nx() + x) as usize],
                    "({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn overflow_set_matches_grid_census() {
        let mut g = grid();
        // Overflow two cells on different layers, plus near-capacity noise.
        for i in 0..40 {
            g.add_quanta(2, GcellPos::new(1, 2), 4);
            g.add_quanta(5, GcellPos::new(3, 4), 4);
            if i < 10 {
                g.add_quanta(4, GcellPos::new(0, 0), 4);
            }
        }
        let set = g.overflow_set();
        assert_eq!(set.pairs(), g.overflow_pairs());
        assert_eq!(set.total_overflow(), g.total_overflow());
        assert!(!set.is_empty());
        let mut cells = Vec::new();
        for m in 2..=NUM_METAL_LAYERS {
            for y in 0..g.ny() {
                for x in 0..g.nx() {
                    let gp = GcellPos::new(x, y);
                    let over = g.usage(m, gp) > g.capacity(m) + 1e-9;
                    assert_eq!(set.contains(m, gp), over, "layer {m} at {gp:?}");
                    if over && !cells.contains(&gp) {
                        cells.push(gp);
                    }
                }
            }
        }
        let mut proj = set.cells_2d();
        proj.sort_by_key(|g| (g.y, g.x));
        cells.sort_by_key(|g| (g.y, g.x));
        assert_eq!(proj, cells);
    }
}
