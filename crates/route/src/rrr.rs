//! Congestion-region partitioning for region-parallel rip-up-and-reroute.
//!
//! Phase B tears out every net crossing an overflowed `(layer, gcell)`
//! pair and reroutes it. A victim's *footprint* — the union of its MST
//! edges' bounding boxes expanded by the maze detour margin — contains
//! every gcell the reroute can read or write: the maze search window, the
//! pattern-router's ±1 row/column detours, and the old segments being
//! ripped (which were themselves produced inside the same windows).
//! Victims whose footprints are disjoint therefore commute: processing
//! them in any order, or concurrently against private usage, yields a
//! grid and segment set bit-identical to the fully sequential pass.
//!
//! [`partition`] groups victims into connected components of footprint
//! overlap by stamping each footprint onto a gcell label grid and
//! union-finding on collisions — exact cell-level overlap, not a
//! conservative bounding-box test. Components are returned in ascending
//! order of their smallest victim index with members ascending, so the
//! grouping itself is a pure function of the victim set.

use geom::GcellPos;

/// Inclusive gcell rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rect {
    pub x0: u32,
    pub y0: u32,
    pub x1: u32,
    pub y1: u32,
}

impl Rect {
    /// Bounding box of an MST edge expanded by `margin`, clamped to the
    /// `nx × ny` grid.
    pub(crate) fn from_edge(a: GcellPos, b: GcellPos, margin: u32, nx: u32, ny: u32) -> Rect {
        Rect {
            x0: a.x.min(b.x).saturating_sub(margin),
            y0: a.y.min(b.y).saturating_sub(margin),
            x1: (a.x.max(b.x) + margin).min(nx - 1),
            y1: (a.y.max(b.y) + margin).min(ny - 1),
        }
    }
}

/// Union-find with path halving.
pub(crate) struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    pub(crate) fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root under the smaller so roots are
            // stable identifiers (the smallest member of the component).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Groups victims into connected components of footprint overlap.
///
/// `footprints[v]` is victim `v`'s rectangle set. Returns the components
/// as lists of victim indices, members ascending, components ordered by
/// smallest member. Two victims land in the same component iff some chain
/// of pairwise-overlapping footprints connects them; victims in different
/// components share no gcell and may be rerouted concurrently.
pub(crate) fn partition(footprints: &[Vec<Rect>], nx: u32, ny: u32) -> Vec<Vec<usize>> {
    let n = footprints.len();
    if n == 0 {
        return Vec::new();
    }
    // Dominant-footprint shortcut: if some victim's footprint covers the
    // whole grid, every other (non-empty) footprint overlaps it and the
    // partition is one component. Small dies hit this on nearly every
    // round (the maze margin exceeds the die), so skipping the O(area)
    // stamping below is a real win; the result is exactly what stamping
    // would produce.
    let whole = Rect {
        x0: 0,
        y0: 0,
        x1: nx - 1,
        y1: ny - 1,
    };
    if footprints.iter().all(|rects| !rects.is_empty())
        && footprints.iter().any(|rects| rects.contains(&whole))
    {
        return vec![(0..n).collect()];
    }
    let mut dsu = Dsu::new(n);
    // Stamp footprints onto a gcell label grid; a collision means the two
    // victims' footprints share this cell, so they must not run in
    // parallel. Overlapping rects of one victim self-collide harmlessly.
    const NO_OWNER: u32 = u32::MAX;
    let mut label = vec![NO_OWNER; (nx * ny) as usize];
    for (v, rects) in footprints.iter().enumerate() {
        for r in rects {
            for y in r.y0..=r.y1 {
                let row = (y * nx) as usize;
                for x in r.x0..=r.x1 {
                    let cell = &mut label[row + x as usize];
                    if *cell == NO_OWNER {
                        *cell = v as u32;
                    } else if *cell != v as u32 {
                        dsu.union(v, *cell as usize);
                    }
                }
            }
        }
    }
    // Bucket members under their root. Roots are the smallest member of
    // each component, so ascending-root order == ascending-min-victim.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of = vec![usize::MAX; n];
    for v in 0..n {
        let root = dsu.find(v);
        if group_of[root] == usize::MAX {
            group_of[root] = groups.len();
            groups.push(Vec::new());
        }
        groups[group_of[root]].push(v);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: u32, y0: u32, x1: u32, y1: u32) -> Rect {
        Rect { x0, y0, x1, y1 }
    }

    #[test]
    fn disjoint_footprints_stay_separate() {
        let fps = vec![vec![rect(0, 0, 3, 3)], vec![rect(10, 10, 13, 13)]];
        let groups = partition(&fps, 20, 20);
        assert_eq!(groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn overlap_merges_transitively() {
        // 0 overlaps 1, 1 overlaps 2, 3 is far away.
        let fps = vec![
            vec![rect(0, 0, 4, 4)],
            vec![rect(4, 4, 8, 8)],
            vec![rect(8, 8, 12, 12)],
            vec![rect(17, 17, 19, 19)],
        ];
        let groups = partition(&fps, 20, 20);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn edge_rect_clamps_to_grid() {
        let r = Rect::from_edge(GcellPos::new(1, 1), GcellPos::new(3, 2), 8, 10, 10);
        assert_eq!(r, rect(0, 0, 9, 9));
    }

    #[test]
    fn whole_grid_footprint_collapses_to_one_group() {
        // Victim 1 covers the die, so the dominant-footprint shortcut
        // must return the same single component stamping would.
        let fps = vec![
            vec![rect(5, 5, 6, 6)],
            vec![rect(0, 0, 19, 19)],
            vec![rect(15, 15, 16, 16)],
        ];
        assert_eq!(partition(&fps, 20, 20), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn groups_are_ordered_and_ascending() {
        // 2 overlaps 0; 1 is alone. Component of {0, 2} leads because its
        // smallest member is 0.
        let fps = vec![
            vec![rect(0, 0, 2, 2)],
            vec![rect(10, 0, 12, 2)],
            vec![rect(2, 2, 4, 4)],
        ];
        let groups = partition(&fps, 20, 20);
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }
}
