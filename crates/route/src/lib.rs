//! Capacitated global router over the ten-metal-layer stack, with
//! congestion-aware layer assignment, NDR width scaling, overflow-based DRC
//! accounting, and RC extraction for timing.
//!
//! The core area is tiled into *gcells*; every metal layer contributes a
//! per-gcell track capacity derived from its pitch and the active
//! [`tech::RouteRule`] width scale. Nets are decomposed into minimum
//! spanning tree edges and routed with congestion-aware L-shapes; each
//! committed segment consumes `scale_M[layer]` tracks per gcell it crosses.
//! The two quantities the security analysis needs fall out directly:
//! per-gcell *free tracks* (for ERtracks) and overflow counts (for DRC).
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! let routing = route::route_design(&layout, &tech);
//! assert!(routing.total_wirelength_um() > 0.0);
//! ```

mod grid;
mod router;
mod rrr;

pub use grid::{OverflowSet, PagedPlane, RouteGrid, GCELL_H_ROWS, GCELL_W_SITES, QUANTA_PER_TRACK};
pub use router::{
    dirty_between, finalize_route, finalize_route_serial, finalize_route_with, plan_route,
    plan_update, route_design, DirtySet, NetRc, RoutePlan, RouteSeg, RoutingState,
};
#[doc(hidden)]
pub use router::{maze_route_dial_for_tests, maze_route_heap_for_tests};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread bound for region-parallel rip-up-and-reroute; 0 = auto
/// (follow `rayon`'s machine-derived count).
static PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Worker threads [`finalize_route`] uses for region-parallel rip-up-and-
/// reroute: the value last passed to [`set_parallelism`], or rayon's
/// machine-derived thread count when unset. The result of a fixed-seed
/// run is bit-identical at every value — this only bounds concurrency.
pub fn parallelism() -> usize {
    match PARALLELISM.load(Ordering::Relaxed) {
        0 => rayon::current_num_threads(),
        n => n,
    }
}

/// Sets the process-wide routing thread bound (0 restores auto).
///
/// Outer parallel loops (e.g. NSGA-II candidate evaluation) call this
/// with [`budget_for_workers`] so the candidate-level and region-level
/// pools compose instead of oversubscribing the machine.
pub fn set_parallelism(threads: usize) {
    PARALLELISM.store(threads, Ordering::Relaxed);
    static GAUGE: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
    GAUGE
        .get_or_init(|| obs::gauge("route.parallelism"))
        .set(threads as f64);
}

/// Floor of the per-worker routing thread budget. Region-parallel Phase B
/// is bit-identical at any thread count, so granting at least two threads
/// even on machines the evaluation workers already saturate only shapes
/// scheduling — it never changes results, and it keeps the recorded bench
/// exercising (and timing) the region-parallel path everywhere.
const MIN_ROUTE_THREADS: usize = 2;

/// Per-worker routing thread budget when `workers` evaluation workers run
/// concurrently: the machine's thread count divided evenly, floored at
/// `MIN_ROUTE_THREADS` (2).
pub fn budget_for_workers(workers: usize) -> usize {
    (rayon::current_num_threads() / workers.max(1)).max(MIN_ROUTE_THREADS)
}
