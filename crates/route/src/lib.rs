//! Capacitated global router over the ten-metal-layer stack, with
//! congestion-aware layer assignment, NDR width scaling, overflow-based DRC
//! accounting, and RC extraction for timing.
//!
//! The core area is tiled into *gcells*; every metal layer contributes a
//! per-gcell track capacity derived from its pitch and the active
//! [`tech::RouteRule`] width scale. Nets are decomposed into minimum
//! spanning tree edges and routed with congestion-aware L-shapes; each
//! committed segment consumes `scale_M[layer]` tracks per gcell it crosses.
//! The two quantities the security analysis needs fall out directly:
//! per-gcell *free tracks* (for ERtracks) and overflow counts (for DRC).
//!
//! # Examples
//!
//! ```
//! use netlist::bench;
//! use tech::Technology;
//! use layout::Layout;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::tiny_spec(), &tech);
//! let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
//! place::global_place(&mut layout, &tech, 1);
//! let routing = route::route_design(&layout, &tech);
//! assert!(routing.total_wirelength_um() > 0.0);
//! ```

mod grid;
mod router;

pub use grid::{RouteGrid, GCELL_H_ROWS, GCELL_W_SITES, QUANTA_PER_TRACK};
pub use router::{
    dirty_between, finalize_route, plan_route, plan_update, route_design, DirtySet, NetRc,
    RoutePlan, RouteSeg, RoutingState,
};
