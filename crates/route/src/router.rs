use std::sync::{Arc, Mutex, OnceLock};

use geom::GcellPos;
use layout::Layout;
use netlist::{NetDriver, NetId, Sink};
use tech::{LayerDir, Technology};

use crate::grid::{OverflowSet, RouteGrid};
use crate::rrr::{self, Rect};

/// One committed straight global-routing run on a single layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSeg {
    /// 1-based metal layer.
    pub layer: usize,
    /// Start gcell.
    pub from: GcellPos,
    /// End gcell (same row for horizontal layers, same column for vertical).
    pub to: GcellPos,
}

impl RouteSeg {
    /// Number of gcells crossed (inclusive of both ends).
    pub fn gcells(&self) -> u32 {
        self.from.manhattan(self.to) + 1
    }
}

/// Lumped parasitics of one routed net.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetRc {
    /// Total wire resistance in kΩ.
    pub res: f64,
    /// Total wire capacitance in fF.
    pub cap: f64,
}

/// Result of routing a layout: per-net segments and parasitics plus the
/// occupied routing grid.
///
/// Per-net segment lists are `Arc`-shared so cloning a routing state (or
/// snapshotting the best rip-up-and-reroute round) is a refcount bump per
/// net, never a deep copy; rerouting a net replaces its `Arc` wholesale.
#[derive(Debug, Clone)]
pub struct RoutingState {
    grid: RouteGrid,
    segs: Vec<Arc<Vec<RouteSeg>>>,
    rc: Vec<NetRc>,
    wirelength_um: f64,
    /// Sorted, deduplicated ids of every net Phase B ripped up in any
    /// round — a superset of the nets whose final segments differ from
    /// the plan's (best-state restore only ever *discards* reroutes).
    /// Shared by `Arc` so cloning a state stays a refcount bump.
    touched: Arc<Vec<NetId>>,
}

/// The router's registry-backed observability handles (replacing the old
/// `RouteStats`/`RoundStats`/`PhaseBTotals` one-offs): phase walls come
/// from the `route.phase_a` / `route.phase_a_patch` / `route.phase_b`
/// spans; these are the scalar counters alongside them. Resolved once per
/// process; each touch afterwards is one relaxed atomic op.
struct RouteMetrics {
    /// `finalize_route` calls that entered Phase B.
    rrr_calls: obs::Counter,
    /// Rip-up-and-reroute rounds executed.
    rrr_rounds: obs::Counter,
    /// Victim nets ripped and rerouted.
    rrr_victims: obs::Counter,
    /// Disjoint congestion regions processed.
    rrr_regions: obs::Counter,
    /// Rounds that took the region-parallel path.
    rrr_parallel_rounds: obs::Counter,
    /// Heap pops per maze (Dijkstra) search — the router's unit of work.
    maze_pops: obs::Histogram,
    /// Entries redistributed between radix-frontier buckets per maze
    /// search — the bookkeeping overhead Dial's algorithm trades the
    /// binary heap's `log n` reorders for.
    maze_bucket_scans: obs::Histogram,
}

/// Injection point covering Phase-B congestion resolution: checked once per
/// RRR round and every 1024 maze pops (which is also the router-side
/// granularity of the cooperative eval deadline).
static ROUTE_OVERFLOW: faults::Point = faults::Point::new("route.overflow");

fn metrics() -> &'static RouteMetrics {
    static METRICS: OnceLock<RouteMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RouteMetrics {
        rrr_calls: obs::counter("rrr.calls"),
        rrr_rounds: obs::counter("rrr.rounds"),
        rrr_victims: obs::counter("rrr.victims"),
        rrr_regions: obs::counter("rrr.regions"),
        rrr_parallel_rounds: obs::counter("rrr.parallel_rounds"),
        maze_pops: obs::histogram("maze.pops"),
        maze_bucket_scans: obs::histogram("maze.bucket_scans"),
    })
}

/// The set of nets whose routes a layout edit invalidated, plus whether
/// the NDR rule changed. Everything not listed keeps its Phase-A pattern
/// verbatim in an incremental update.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    /// Nets with at least one terminal in a different gcell than before.
    pub nets: Vec<NetId>,
    /// The active [`tech::RouteRule`] differs from the plan's.
    pub rule_changed: bool,
}

impl DirtySet {
    /// True when nothing routed needs to change.
    pub fn is_clean(&self) -> bool {
        self.nets.is_empty() && !self.rule_changed
    }
}

/// The Phase-A (pattern-route) state of a design: every net's MST edges
/// and congestion-oblivious pattern segments committed on the grid.
///
/// Each net's contribution is a pure function of its terminal gcells, and
/// usage is integer quanta, so patching only the nets named by a
/// [`DirtySet`] (see [`plan_update`]) yields a plan bit-identical to
/// re-planning the edited layout from scratch. [`finalize_route`] then
/// runs the deterministic rip-up-and-reroute refinement plus parasitic
/// extraction on top.
///
/// Per-net segment and edge lists are `Arc`-shared: cloning a plan (the
/// hot path of incremental evaluation, which patches a cached base plan
/// per candidate) bumps one refcount per net instead of copying geometry,
/// and re-planning a dirty net swaps in a fresh `Arc`.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    grid: RouteGrid,
    segs: Vec<Arc<Vec<RouteSeg>>>,
    edges: Vec<Arc<Vec<(GcellPos, GcellPos)>>>,
}

impl RoutePlan {
    /// Re-derives track scales and capacities for `rule`. Stored usage is
    /// unscaled quanta and patterns are congestion-oblivious, so the plan
    /// stays exact under the new rule — this is the whole rule handling of
    /// [`plan_update`], exposed for callers that cache plans across
    /// rule-only variations.
    pub fn set_rule(&mut self, tech: &Technology, rule: &tech::RouteRule) {
        self.grid.set_rule(tech, rule);
    }

    /// The plan's usage grid (Phase-A pattern usage).
    pub fn grid(&self) -> &RouteGrid {
        &self.grid
    }

    /// Approximate resident heap bytes of this plan *not* shared with
    /// `base`: diverged usage pages plus per-net segment/edge lists
    /// whose `Arc`s differ from the base plan's (patched nets own their
    /// lists; untouched nets share the base's). This is roughly what
    /// evicting this plan frees while `base` stays cached — the eval
    /// cache's byte-budget unit.
    pub fn approx_unshared_bytes(&self, base: &RoutePlan) -> u64 {
        let mut bytes = self.grid.unshared_planes_bytes(&base.grid);
        for (i, s) in self.segs.iter().enumerate() {
            let shared = base.segs.get(i).is_some_and(|b| Arc::ptr_eq(s, b));
            if !shared {
                bytes += (s.capacity() * size_of::<RouteSeg>()) as u64;
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            let shared = base.edges.get(i).is_some_and(|b| Arc::ptr_eq(e, b));
            if !shared {
                bytes += (e.capacity() * size_of::<(GcellPos, GcellPos)>()) as u64;
            }
        }
        bytes
    }
}

/// Extra wire modeled per pin for pin escape / via stacks, in DBU of M2.
const PIN_STUB_DBU: i64 = 500;

/// Congestion cost multipliers for layer selection.
const OVERFLOW_PENALTY: f64 = 12.0;
const CONGESTION_WEIGHT: f64 = 4.0;
const LAYER_MISMATCH_WEIGHT: f64 = 0.75;

impl RoutingState {
    /// The routing grid with final usage.
    pub fn grid(&self) -> &RouteGrid {
        &self.grid
    }

    /// Committed segments of a net.
    pub fn net_segs(&self, net: NetId) -> &[RouteSeg] {
        &self.segs[net.0 as usize]
    }

    /// Sorted ids of every net the rip-up-and-reroute refinement ripped
    /// up, in any round. Nets not listed carry their Phase-A pattern
    /// segments verbatim (the list is a superset of the nets that
    /// actually changed: a best-state restore discards late reroutes but
    /// never introduces new diffs). Incremental STA uses this to bound
    /// its RC diff to router-touched nets.
    pub fn touched_nets(&self) -> &[NetId] {
        &self.touched
    }

    /// Lumped parasitics of a net.
    pub fn net_rc(&self, net: NetId) -> NetRc {
        self.rc[net.0 as usize]
    }

    /// Total routed wirelength in µm.
    pub fn total_wirelength_um(&self) -> f64 {
        self.wirelength_um
    }

    /// Design-rule violation count: routing overflows plus pin-access
    /// violations in gcells that are both nearly full of cells and heavily
    /// wired. The thresholds are calibrated so a clean baseline reports ~0
    /// and a fill-everything defense reports tens of violations, matching
    /// the magnitudes of Table II.
    pub fn drc_violations(&self, layout: &Layout) -> u32 {
        let mut v = self.grid.deep_overflow_pairs(1.0);
        let occ = layout.occupancy();
        let fp = layout.floorplan();
        for gy in 0..self.grid.ny() {
            for gx in 0..self.grid.nx() {
                let g = GcellPos::new(gx, gy);
                let row0 = gy * crate::GCELL_H_ROWS;
                let row1 = ((gy + 1) * crate::GCELL_H_ROWS).min(fp.rows());
                let col0 = gx * crate::GCELL_W_SITES;
                let col1 = ((gx + 1) * crate::GCELL_W_SITES).min(fp.cols());
                if row0 >= row1 || col0 >= col1 {
                    continue;
                }
                let density = occ.density_in(row0, row1, col0, col1);
                let cap = self.grid.capacity_all_layers();
                let used = cap - self.grid.free_tracks_all_layers(g);
                if density > 0.985 && used / cap > 0.55 {
                    v += 1;
                }
            }
        }
        v
    }
}

/// Gcell terminals of a net: driver and sink cell locations (deduplicated),
/// ignoring IO-only connections.
fn net_terminals(
    layout: &Layout,
    tech: &Technology,
    grid: &RouteGrid,
    net: NetId,
) -> Vec<GcellPos> {
    let design = layout.design();
    let n = design.net(net);
    let mut t: Vec<GcellPos> = Vec::new();
    let mut push = |cell: netlist::CellId| {
        if layout.cell_pos(cell).is_some() {
            let g = grid.gcell_of_point(layout.cell_center(cell, tech));
            if !t.contains(&g) {
                t.push(g);
            }
        }
    };
    if let NetDriver::Cell(c) = n.driver {
        push(c);
    }
    for s in &n.sinks {
        match s {
            Sink::CellInput { cell, .. } | Sink::CellClock(cell) => push(*cell),
            Sink::PrimaryOutput(_) => {}
        }
    }
    t
}

/// Prim MST over terminal gcells; returns the edge list.
fn mst_edges(terminals: &[GcellPos]) -> Vec<(GcellPos, GcellPos)> {
    let k = terminals.len();
    if k < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; k];
    let mut dist = vec![u32::MAX; k];
    let mut parent = vec![0usize; k];
    in_tree[0] = true;
    for (i, t) in terminals.iter().enumerate().skip(1) {
        dist[i] = terminals[0].manhattan(*t);
    }
    let mut edges = Vec::with_capacity(k - 1);
    for _ in 1..k {
        let (next, _) = dist
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by_key(|(_, d)| **d)
            .expect("k - 1 nodes remain");
        in_tree[next] = true;
        edges.push((terminals[parent[next]], terminals[next]));
        for (i, t) in terminals.iter().enumerate() {
            if !in_tree[i] {
                let d = terminals[next].manhattan(*t);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = next;
                }
            }
        }
    }
    edges
}

/// Preferred layer index (into the direction's layer list) for a run of
/// `len` gcells: short wires stay low, long wires climb the stack.
fn ideal_layer_rank(len: u32, num_ranks: usize) -> usize {
    let rank = match len {
        0..=3 => 0,
        4..=10 => 1,
        11..=25 => 2,
        _ => 3,
    };
    rank.min(num_ranks - 1)
}

/// Cost of routing a straight run on `layer` across `cells`, with the
/// overflow penalty scaled by `penalty_mult` (rip-up-and-reroute rounds
/// escalate it).
fn run_cost(
    grid: &RouteGrid,
    layer: usize,
    cells: &[GcellPos],
    ideal_rank: usize,
    rank: usize,
    penalty_mult: f64,
) -> f64 {
    let scale = grid.scale(layer);
    let cap = grid.capacity(layer);
    let mut cost = 0.0;
    for &g in cells {
        let u = grid.usage(layer, g);
        cost += 1.0;
        if u + scale > cap {
            cost += OVERFLOW_PENALTY * penalty_mult;
        } else if cap > 0.0 {
            cost += CONGESTION_WEIGHT * (u / cap);
        }
    }
    cost + LAYER_MISMATCH_WEIGHT * (rank.abs_diff(ideal_rank) as f64) * cells.len() as f64
}

/// Gcells of a horizontal run at `y` from `x0` to `x1` inclusive.
fn h_run(y: u32, x0: u32, x1: u32) -> Vec<GcellPos> {
    let (a, b) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    (a..=b).map(|x| GcellPos::new(x, y)).collect()
}

/// Gcells of a vertical run at `x` from `y0` to `y1` inclusive.
fn v_run(x: u32, y0: u32, y1: u32) -> Vec<GcellPos> {
    let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
    (a..=b).map(|y| GcellPos::new(x, y)).collect()
}

/// Picks the cheapest layer of `dir` for the run and returns
/// `(layer, cost)`.
fn pick_layer(
    grid: &RouteGrid,
    dir: LayerDir,
    cells: &[GcellPos],
    len: u32,
    penalty_mult: f64,
) -> (usize, f64) {
    let layers = grid.layers_with_dir(dir);
    let ideal = ideal_layer_rank(len, layers.len());
    layers
        .iter()
        .enumerate()
        .map(|(rank, &m)| (m, run_cost(grid, m, cells, ideal, rank, penalty_mult)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("each direction has layers")
}

/// A candidate path for one MST edge: a list of straight runs, each tagged
/// with its required direction.
fn candidate_paths(
    a: GcellPos,
    b: GcellPos,
    nx: u32,
    ny: u32,
    detours: bool,
) -> Vec<Vec<(LayerDir, Vec<GcellPos>)>> {
    use LayerDir::{Horizontal as H, Vertical as V};
    let dx = a.x != b.x;
    let dy = a.y != b.y;
    if dx && dy {
        let mut cands = vec![
            // Two L-shapes.
            vec![(H, h_run(a.y, a.x, b.x)), (V, v_run(b.x, a.y, b.y))],
            vec![(V, v_run(a.x, a.y, b.y)), (H, h_run(b.y, a.x, b.x))],
        ];
        // Two Z-shapes through the midpoints, for congestion escape.
        let xm = (a.x + b.x) / 2;
        if xm != a.x && xm != b.x {
            cands.push(vec![
                (H, h_run(a.y, a.x, xm)),
                (V, v_run(xm, a.y, b.y)),
                (H, h_run(b.y, xm, b.x)),
            ]);
        }
        let ym = (a.y + b.y) / 2;
        if ym != a.y && ym != b.y {
            cands.push(vec![
                (V, v_run(a.x, a.y, ym)),
                (H, h_run(ym, a.x, b.x)),
                (V, v_run(b.x, ym, b.y)),
            ]);
        }
        cands
    } else if dx {
        // Straight horizontal edge plus U-shaped detours through the
        // neighboring gcell rows — the only lateral escape for a congested
        // row.
        let mut cands = vec![vec![(H, h_run(a.y, a.x, b.x))]];
        if !detours {
            return cands;
        }
        for dy in [-1i64, 1] {
            let y = a.y as i64 + dy;
            if y >= 0 && (y as u32) < ny {
                let y = y as u32;
                cands.push(vec![
                    (V, v_run(a.x, a.y, y)),
                    (H, h_run(y, a.x, b.x)),
                    (V, v_run(b.x, y, a.y)),
                ]);
            }
        }
        cands
    } else if dy {
        let mut cands = vec![vec![(V, v_run(a.x, a.y, b.y))]];
        if !detours {
            return cands;
        }
        for dx in [-1i64, 1] {
            let x = a.x as i64 + dx;
            if x >= 0 && (x as u32) < nx {
                let x = x as u32;
                cands.push(vec![
                    (H, h_run(a.y, a.x, x)),
                    (V, v_run(x, a.y, b.y)),
                    (H, h_run(b.y, x, a.x)),
                ]);
            }
        }
        cands
    } else {
        Vec::new()
    }
}

/// Integer step-cost unit: one thousandth of [`run_cost`]'s unit cost.
/// Quantizing to milli-units makes maze distances exact integers (no
/// epsilon in the relaxation test) and keys them for the radix frontier.
const MILLI: f64 = 1000.0;

/// Marginal cost of pushing one more track through each gcell of one
/// Step cost of entering one gcell in direction `dir` — the cheapest
/// same-direction layer's congestion cost (mirroring [`run_cost`]
/// without the layer-preference term) — quantized to integer
/// milli-units.
///
/// Computed per cell, on first touch: a maze search relaxes only a few
/// dozen cells, so filling whole window rows (the previous scheme)
/// computed many times more costs than the search ever read — the row
/// fills were ~40% of the maze wall. The per-layer min-fold runs in the
/// same order over the same `f64` expressions as the row fill did, so
/// every cost the search reads is bit-identical.
#[inline]
fn cell_cost(
    grid: &RouteGrid,
    dir: LayerDir,
    consts: &[LayerConsts],
    penalty_mult: f64,
    y: u32,
    x: u32,
) -> u32 {
    let over = 1.0 + OVERFLOW_PENALTY * penalty_mult;
    let mut best = f64::INFINITY;
    for &m in grid.layers_with_dir(dir) {
        let k = &consts[m - 1]; // layers are 1-based
        let c = if k.cap > 0.0 {
            let u = grid.quanta_at(m, x, y) as f64 * k.per_quantum;
            if u + k.scale > k.cap {
                over
            } else {
                1.0 + k.congestion * u
            }
        } else {
            over
        };
        best = best.min(c);
    }
    (best * MILLI).round() as u32
}

/// Per-layer constants of [`cell_cost`]'s congestion cost, hoisted
/// out of the row fills: the two divides are invariant for the duration
/// of a maze call, and a typical rip-up window row is only a handful of
/// cells wide, so recomputing them per (row, layer) visit was a
/// measurable slice of the fill. The hoisted values are produced by the
/// identical expressions, so every filled cost is bit-identical.
#[derive(Clone, Copy, Default)]
struct LayerConsts {
    cap: f64,
    scale: f64,
    /// `scale / QUANTA_PER_TRACK`: usage units per stored quantum.
    per_quantum: f64,
    /// `CONGESTION_WEIGHT / cap` (0 when the layer has no capacity).
    congestion: f64,
}

impl LayerConsts {
    fn of(grid: &RouteGrid, m: usize) -> Self {
        let cap = grid.capacity(m);
        let scale = grid.scale(m);
        if cap > 0.0 {
            LayerConsts {
                cap,
                scale,
                per_quantum: scale / crate::QUANTA_PER_TRACK as f64,
                congestion: CONGESTION_WEIGHT / cap,
            }
        } else {
            LayerConsts {
                cap,
                scale,
                ..Default::default()
            }
        }
    }
}

/// Detour margin of the maze search window around an edge's bounding box.
///
/// Also the halo of a victim's *footprint* in region-parallel rip-up-and-
/// reroute: every gcell a victim's reroute can read or write — the maze
/// window, the ±1-row/column pattern detours, and old segments produced
/// by earlier rounds inside the same windows — lies within its MST edges'
/// bounding boxes expanded by this margin, which is what makes
/// disjoint-footprint victims commute (see `rrr`).
const MAZE_MARGIN: u32 = 8;

/// A maze frontier entry packed into one `u128` whose natural ascending
/// order is exactly the old `BinaryHeap<Reverse<(u64, u32, u32, u8)>>`
/// tie-break order — distance first, then x, then y, then axis:
///
/// ```text
/// bit 33..     | bit 17..32 | bit 1..16 | bit 0
/// milli dist   | x          | y         | axis
/// ```
///
/// Coordinates get 16 bits each (a gcell grid axis beyond 65 536 cells is
/// multiple metres of silicon), leaving 95 bits of distance headroom.
#[inline]
const fn pack_entry(d: u64, x: u32, y: u32, axis: u8) -> u128 {
    ((d as u128) << 33) | ((x as u128) << 17) | ((y as u128) << 1) | axis as u128
}

#[inline]
const fn unpack_entry(e: u128) -> (u64, u32, u32, u8) {
    (
        (e >> 33) as u64,
        ((e >> 17) & 0xFFFF) as u32,
        ((e >> 1) & 0xFFFF) as u32,
        (e & 1) as u8,
    )
}

/// The priority queue driving one maze search, abstracted so the
/// equivalence proptest can run the identical search body with the
/// reference binary heap swapped in for the radix frontier.
trait MazeFrontier {
    fn fclear(&mut self);
    fn fpush(&mut self, e: u128);
    fn fpop(&mut self) -> Option<u128>;
    /// Entries redistributed between buckets (0 for the reference heap).
    fn scans(&self) -> u64 {
        0
    }
}

/// Bucket frontier over packed entries — a radix heap, the Dial-family
/// monotone priority queue. Entry `e` lives in bucket
/// `position of the highest bit where e differs from the last popped
/// minimum, plus one` (bucket 0 holds entries equal to the minimum), so a
/// pop either takes bucket 0 directly or drains the lowest non-empty
/// bucket, whose members provably re-bucket strictly lower once the new
/// minimum is fixed. Every push costs O(1); each entry is redistributed
/// at most 128 times over its lifetime (in practice ~1: see the
/// `maze.bucket_scans` histogram), replacing the binary heap's per-op
/// `log n` compare-and-swap chains.
///
/// Monotonicity — no push below the last popped minimum — holds because
/// every step costs at least one full milli-quantized unit, so relaxed
/// keys never drop below the popped key (the A* term shrinks by at most
/// one step's lower bound per move).
struct RadixFrontier {
    /// `1 + 128` buckets: equal-to-minimum plus one per possible highest
    /// differing bit of a `u128` key.
    buckets: Vec<Vec<u128>>,
    /// The minimum most recently popped (all live entries are >= it).
    last: u128,
    /// Live entry count across all buckets.
    len: usize,
    /// Occupancy bitmask, one bit per bucket (bit `b` of word `b / 64`).
    /// Pops find the lowest non-empty bucket with a trailing-zeros scan
    /// over three words instead of walking up to 129 `Vec` lengths, and
    /// clears touch only buckets that actually held entries — both matter
    /// because a typical rip-up window search pops a dozen entries, so the
    /// frontier's fixed costs rival its useful work.
    mask: [u64; 3],
    /// Entries redistributed since the last `fclear`.
    scans: u64,
}

impl RadixFrontier {
    const BUCKETS: usize = 129;

    const fn new() -> Self {
        RadixFrontier {
            buckets: Vec::new(),
            last: 0,
            len: 0,
            mask: [0; 3],
            scans: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, e: u128) -> usize {
        // 0 when e == last (xor has 128 leading zeros), else 1 + the
        // highest differing bit's position.
        (128 - (e ^ self.last).leading_zeros()) as usize
    }

    #[inline]
    fn lowest_occupied(&self) -> usize {
        for (w, &word) in self.mask.iter().enumerate() {
            if word != 0 {
                return w * 64 + word.trailing_zeros() as usize;
            }
        }
        unreachable!("len > 0 implies an occupied bucket");
    }
}

impl MazeFrontier for RadixFrontier {
    fn fclear(&mut self) {
        if self.buckets.len() < Self::BUCKETS {
            self.buckets.resize_with(Self::BUCKETS, Vec::new);
        }
        for (w, word) in self.mask.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                self.buckets[b].clear();
                bits &= bits - 1;
            }
            *word = 0;
        }
        self.last = 0;
        self.len = 0;
        self.scans = 0;
    }

    #[inline]
    fn fpush(&mut self, e: u128) {
        debug_assert!(e >= self.last, "radix frontier requires monotone keys");
        let b = self.bucket_of(e);
        self.buckets[b].push(e);
        self.mask[b / 64] |= 1 << (b % 64);
        self.len += 1;
    }

    fn fpop(&mut self) -> Option<u128> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.mask[0] & 1 != 0 {
            let e = self.buckets[0].pop().expect("occupancy bit 0 set");
            if self.buckets[0].is_empty() {
                self.mask[0] &= !1;
            }
            return Some(e);
        }
        let i = self.lowest_occupied();
        let mut bucket = std::mem::take(&mut self.buckets[i]);
        self.mask[i / 64] &= !(1 << (i % 64));
        let min = *bucket.iter().min().expect("bucket is non-empty");
        self.last = min;
        self.scans += bucket.len() as u64 - 1;
        // Members of bucket `i` agree with the old minimum above bit
        // `i - 1` and all flip bit `i - 1`, so they agree with `min` on
        // every bit >= i - 1: each re-buckets strictly below `i`, which
        // is what lets the lowest-non-empty-bucket scan resume from the
        // bottom and bounds redistribution per entry.
        let mut min_taken = false;
        for e in bucket.drain(..) {
            if !min_taken && e == min {
                min_taken = true; // returned to the caller, not re-bucketed
                continue;
            }
            let b = self.bucket_of(e);
            debug_assert!(b < i);
            self.buckets[b].push(e);
            self.mask[b / 64] |= 1 << (b % 64);
        }
        self.buckets[i] = bucket;
        Some(min)
    }

    fn scans(&self) -> u64 {
        self.scans
    }
}

/// The pre-rework reference frontier, kept for the kernel-equivalence
/// proptest: `Reverse<u128>` pops in ascending packed order, which is the
/// tuple order the heap popped in before entries were packed.
impl MazeFrontier for std::collections::BinaryHeap<std::cmp::Reverse<u128>> {
    fn fclear(&mut self) {
        self.clear();
    }

    fn fpush(&mut self, e: u128) {
        self.push(std::cmp::Reverse(e));
    }

    fn fpop(&mut self) -> Option<u128> {
        self.pop().map(|r| r.0)
    }
}

/// Reusable per-thread maze state. Rip-up-and-reroute issues tens of
/// thousands of maze calls per evaluation; without reuse, the
/// window-sized arrays and the frontier are reallocated on every one of
/// them. Entries are validated per call by a generation stamp, so reuse
/// never changes a search result — a stale cell reads as untouched.
struct MazeScratch {
    /// Per (cell, incoming axis) best distance in milli-units
    /// (`u64::MAX` = unreached).
    dist: Vec<[u64; 2]>,
    /// Per (cell, incoming axis) predecessor `(x, y, axis)`.
    prev: Vec<[(u32, u32, u8); 2]>,
    /// Per-cell step-cost planes, one per move axis, filled one cell at
    /// a time on first touch (`cell_cost`).
    cost_h: Vec<u32>,
    cost_v: Vec<u32>,
    /// Which generation last filled each cell of each cost plane.
    cost_stamp: Vec<[u32; 2]>,
    /// Which generation last wrote each cell's `dist`/`prev` entries.
    stamp: Vec<u32>,
    /// Reconstructed path of the last successful search, reused across
    /// calls so reconstruction never allocates on the hot path.
    path: Vec<GcellPos>,
    /// Direction-tagged straight runs of `path`, as inclusive index
    /// ranges (`path[lo..=hi]`); adjacent runs share their corner cell,
    /// exactly like the materialized run lists they replace.
    runs: Vec<(LayerDir, u32, u32)>,
    generation: u32,
    frontier: RadixFrontier,
}

impl MazeScratch {
    const fn new() -> Self {
        MazeScratch {
            dist: Vec::new(),
            prev: Vec::new(),
            cost_h: Vec::new(),
            cost_v: Vec::new(),
            cost_stamp: Vec::new(),
            stamp: Vec::new(),
            path: Vec::new(),
            runs: Vec::new(),
            generation: 0,
            frontier: RadixFrontier::new(),
        }
    }

    /// Window size below which the scratch never shrinks: re-growing
    /// small arrays is cheap, and typical rip-up windows all fit here.
    const SHRINK_FLOOR: usize = 1 << 15;

    /// Prepares the scratch for a window of `cells` cells: grows the
    /// arrays if needed and invalidates every previous entry in O(1) by
    /// bumping the generation (O(n) only on the rare counter wrap).
    ///
    /// Grow-only reuse would let one full-chip window (100k+ gcells on
    /// the scaled suite) pin window-sized arrays in every router thread
    /// for the rest of the process; when the retained arrays dwarf the
    /// current window, the scratch is released back to it, so steady-
    /// state per-thread memory tracks the windows actually in use
    /// rather than the largest window ever seen.
    fn begin(&mut self, cells: usize) {
        let retained = self.stamp.len();
        if retained > Self::SHRINK_FLOOR && retained / 4 > cells {
            let keep = cells.max(Self::SHRINK_FLOOR);
            self.dist.truncate(keep);
            self.dist.shrink_to_fit();
            self.prev.truncate(keep);
            self.prev.shrink_to_fit();
            self.cost_h.truncate(keep);
            self.cost_h.shrink_to_fit();
            self.cost_v.truncate(keep);
            self.cost_v.shrink_to_fit();
            self.stamp.truncate(keep);
            self.stamp.shrink_to_fit();
            self.cost_stamp.truncate(keep);
            self.cost_stamp.shrink_to_fit();
        }
        if self.stamp.len() < cells {
            self.dist.resize(cells, [u64::MAX; 2]);
            self.prev.resize(cells, [(u32::MAX, u32::MAX, 0); 2]);
            self.cost_h.resize(cells, 0);
            self.cost_v.resize(cells, 0);
            self.stamp.resize(cells, u32::MAX);
            self.cost_stamp.resize(cells, [u32::MAX; 2]);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.cost_stamp.fill([0; 2]);
            self.generation = 1;
        }
    }

    /// Resets cell `i` to pristine state unless this generation already
    /// touched it.
    #[inline]
    fn touch(&mut self, i: usize) {
        if self.stamp[i] != self.generation {
            self.stamp[i] = self.generation;
            self.dist[i] = [u64::MAX; 2];
            self.prev[i] = [(u32::MAX, u32::MAX, 0); 2];
        }
    }
}

thread_local! {
    static MAZE_SCRATCH: std::cell::RefCell<MazeScratch> =
        const { std::cell::RefCell::new(MazeScratch::new()) };
}

impl Default for RadixFrontier {
    fn default() -> Self {
        Self::new()
    }
}

/// Turn penalty in milli-units (`0.5` in [`run_cost`]'s unit).
const TURN_COST_MILLI: u64 = 500;

/// Per-gcell A* heuristic weight for [`maze_search`], in milli-units.
///
/// Any single step costs at least one full unit (the congestion cost is
/// `1.0 + <non-negative>` per gcell, i.e. 1000 milli-units), so
/// Manhattan distance times 1000 would already be admissible and
/// consistent. The weight is 999 — one milli-unit short of the true
/// lower bound — so that every relaxation strictly increases the key's
/// distance field: with an exact 1000 a toward-target step can leave
/// `g + h` unchanged, and the packed entry's coordinate tiebreak bits
/// may then move *backwards*, violating the radix frontier's monotone
/// full-key invariant. The pruning loss is at most 0.1% of the bound.
const ASTAR_H_MILLI: u64 = 999;

/// Maze (A*) search between two gcells with congestion-aware step costs
/// and a small turn penalty. The frontier is ordered by `g + h` with
/// `h = ASTAR_H_MILLI * manhattan(cell, b)`; `h` is consistent (each
/// move changes it by less than any step's cost), so keys stay strictly
/// monotone for the radix frontier and the first pop of `b` is optimal,
/// while searches across quiet regions expand near-linearly along the
/// corridor instead of flooding the window. On success the reconstructed path and
/// its direction-tagged straight runs are left in `s.path`/`s.runs`
/// (scratch-resident, so the hot path never allocates); returns whether
/// `b` was reached. Used for rip-up-and-reroute victims, where the fixed
/// L/Z/U candidate shapes have been exhausted.
fn maze_search(
    s: &mut MazeScratch,
    fr: &mut impl MazeFrontier,
    grid: &RouteGrid,
    a: GcellPos,
    b: GcellPos,
    penalty_mult: f64,
) -> bool {
    debug_assert!(
        grid.nx() <= 1 << 16 && grid.ny() <= 1 << 16,
        "packed frontier entries carry 16-bit coordinates"
    );
    // Search window: the edge's bounding box plus the detour margin. Full-
    // grid Dijkstra would dominate rip-up-and-reroute on large designs.
    let wx0 = a.x.min(b.x).saturating_sub(MAZE_MARGIN);
    let wy0 = a.y.min(b.y).saturating_sub(MAZE_MARGIN);
    let wx1 = (a.x.max(b.x) + MAZE_MARGIN).min(grid.nx() - 1);
    let wy1 = (a.y.max(b.y) + MAZE_MARGIN).min(grid.ny() - 1);
    let wnx = (wx1 - wx0 + 1) as usize;
    let wny = (wy1 - wy0 + 1) as usize;
    let idx = |g: GcellPos| (g.y - wy0) as usize * wnx + (g.x - wx0) as usize;
    // Window-local state lives in the per-thread scratch; the grid is
    // immutable for the duration of one call, so each (cell, axis) step
    // cost is computed at most once, on first touch.
    let mut consts = [LayerConsts::default(); tech::NUM_METAL_LAYERS];
    for (i, k) in consts.iter_mut().enumerate() {
        *k = LayerConsts::of(grid, i + 1); // layers are 1-based
    }
    s.begin(wnx * wny);
    fr.fclear();
    let h = |x: u32, y: u32| (x.abs_diff(b.x) as u64 + y.abs_diff(b.y) as u64) * ASTAR_H_MILLI;
    s.touch(idx(a));
    s.dist[idx(a)] = [0, 0];
    fr.fpush(pack_entry(h(a.x, a.y), a.x, a.y, 0));
    fr.fpush(pack_entry(h(a.x, a.y), a.x, a.y, 1));
    let mut pops: u64 = 0;
    while let Some(e) = fr.fpop() {
        let (f, x, y, axis) = unpack_entry(e);
        let d = f - h(x, y);
        pops += 1;
        if pops & 0x3FF == 0 {
            ROUTE_OVERFLOW.check();
        }
        let g = GcellPos::new(x, y);
        // Integer distances are exact, so any entry above the recorded
        // best is stale (superseded by a later relaxation).
        if d > s.dist[idx(g)][axis as usize] {
            continue;
        }
        if g == b {
            break;
        }
        let moves: [(i64, i64, u8); 4] = [(1, 0, 0), (-1, 0, 0), (0, 1, 1), (0, -1, 1)];
        for (mx, my, maxis) in moves {
            let (tx, ty) = (x as i64 + mx, y as i64 + my);
            if tx < wx0 as i64 || ty < wy0 as i64 || tx > wx1 as i64 || ty > wy1 as i64 {
                continue;
            }
            let t = GcellPos::new(tx as u32, ty as u32);
            let ti = idx(t);
            s.touch(ti);
            let ma = maxis as usize;
            if s.cost_stamp[ti][ma] != s.generation {
                s.cost_stamp[ti][ma] = s.generation;
                let dir = if maxis == 0 {
                    LayerDir::Horizontal
                } else {
                    LayerDir::Vertical
                };
                let c = cell_cost(grid, dir, &consts, penalty_mult, t.y, t.x);
                if maxis == 0 {
                    s.cost_h[ti] = c;
                } else {
                    s.cost_v[ti] = c;
                }
            }
            let step = if maxis == 0 {
                s.cost_h[ti]
            } else {
                s.cost_v[ti]
            } as u64;
            let mut nd = d + step;
            if maxis != axis {
                nd += TURN_COST_MILLI;
            }
            if nd < s.dist[ti][ma] {
                s.dist[ti][ma] = nd;
                s.prev[ti][ma] = (x, y, axis);
                fr.fpush(pack_entry(nd + h(t.x, t.y), t.x, t.y, maxis));
            }
        }
    }
    metrics().maze_pops.record(pops);
    metrics().maze_bucket_scans.record(fr.scans());
    // Reconstruct from the cheaper arrival state at b.
    s.touch(idx(b));
    let mut axis = if s.dist[idx(b)][0] <= s.dist[idx(b)][1] {
        0u8
    } else {
        1u8
    };
    if s.dist[idx(b)][axis as usize] == u64::MAX {
        return false; // unreachable; caller falls back to patterns
    }
    s.path.clear();
    s.path.push(b);
    let mut cur = b;
    while cur != a {
        let (px, py, paxis) = s.prev[idx(cur)][axis as usize];
        if px == u32::MAX {
            break;
        }
        cur = GcellPos::new(px, py);
        axis = paxis;
        s.path.push(cur);
    }
    s.path.reverse();
    // Split into direction-tagged straight runs (as ranges into `path`).
    s.runs.clear();
    for i in 1..s.path.len() {
        let dir = if s.path[i - 1].y == s.path[i].y {
            LayerDir::Horizontal
        } else {
            LayerDir::Vertical
        };
        match s.runs.last_mut() {
            Some((d, _, hi)) if *d == dir => *hi = i as u32,
            _ => s.runs.push((dir, i as u32 - 1, i as u32)),
        }
    }
    !s.runs.is_empty()
}

/// The scratch-resident runs of the last successful [`maze_search`],
/// materialized in the pre-rework return shape (used by the test hooks).
fn materialize_runs(s: &MazeScratch) -> Vec<(LayerDir, Vec<GcellPos>)> {
    s.runs
        .iter()
        .map(|&(d, lo, hi)| (d, s.path[lo as usize..=hi as usize].to_vec()))
        .collect()
}

/// Test hook: one maze search on a fresh scratch through the production
/// radix frontier. Pinned against [`maze_route_heap_for_tests`] by the
/// kernel-equivalence proptest.
#[doc(hidden)]
pub fn maze_route_dial_for_tests(
    grid: &RouteGrid,
    a: GcellPos,
    b: GcellPos,
    penalty_mult: f64,
) -> Vec<(LayerDir, Vec<GcellPos>)> {
    let mut s = MazeScratch::new();
    let mut fr = RadixFrontier::new();
    if !maze_search(&mut s, &mut fr, grid, a, b, penalty_mult) {
        return Vec::new();
    }
    materialize_runs(&s)
}

/// Test hook: the identical search driven by the reference binary heap.
#[doc(hidden)]
pub fn maze_route_heap_for_tests(
    grid: &RouteGrid,
    a: GcellPos,
    b: GcellPos,
    penalty_mult: f64,
) -> Vec<(LayerDir, Vec<GcellPos>)> {
    let mut s = MazeScratch::new();
    let mut fr: std::collections::BinaryHeap<std::cmp::Reverse<u128>> =
        std::collections::BinaryHeap::new();
    if !maze_search(&mut s, &mut fr, grid, a, b, penalty_mult) {
        return Vec::new();
    }
    materialize_runs(&s)
}

/// Routes one MST edge through the maze router (rip-up-and-reroute path);
/// commits usage. Returns false when no path exists.
fn route_edge_maze(
    grid: &mut RouteGrid,
    a: GcellPos,
    b: GcellPos,
    penalty_mult: f64,
    segs: &mut Vec<RouteSeg>,
) -> bool {
    if a == b {
        return true;
    }
    MAZE_SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        // The frontier steps out of the scratch for the duration of the
        // search so the search body can borrow both mutably.
        let mut fr = std::mem::take(&mut s.frontier);
        let found = maze_search(s, &mut fr, grid, a, b, penalty_mult);
        s.frontier = fr;
        if !found {
            return false;
        }
        for &(dir, lo, hi) in &s.runs {
            let cells = &s.path[lo as usize..=hi as usize];
            let len = cells.len() as u32 - 1;
            let (layer, _) = pick_layer(grid, dir, cells, len, penalty_mult);
            commit(grid, layer, cells, segs);
        }
        true
    })
}

/// Routes one MST edge along the cheapest candidate path; commits usage and
/// appends the segments.
fn route_edge(
    grid: &mut RouteGrid,
    a: GcellPos,
    b: GcellPos,
    penalty_mult: f64,
    segs: &mut Vec<RouteSeg>,
) {
    #[allow(clippy::type_complexity)] // (cost, per-run layer assignment) candidate
    let mut best: Option<(f64, Vec<(usize, Vec<GcellPos>)>)> = None;
    for cand in candidate_paths(a, b, grid.nx(), grid.ny(), penalty_mult > 1.0) {
        let mut cost = 0.0;
        let mut runs: Vec<(usize, Vec<GcellPos>)> = Vec::with_capacity(cand.len());
        for (dir, cells) in cand {
            let len = cells.len() as u32 - 1;
            let (layer, c) = pick_layer(grid, dir, &cells, len, penalty_mult);
            cost += c;
            runs.push((layer, cells));
        }
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, runs));
        }
    }
    if let Some((_, runs)) = best {
        for (layer, cells) in runs {
            commit(grid, layer, &cells, segs);
        }
    }
}

/// Track demand of a run's cells in usage quanta: endpoints count a
/// quarter track (they terminate on pin access rather than crossing the
/// gcell), interior cells count a full track. The NDR scale is applied by
/// the grid at read time, never here.
fn run_usage(cells: &[GcellPos]) -> impl Iterator<Item = (GcellPos, i64)> + '_ {
    let last = cells.len() - 1;
    cells.iter().enumerate().map(move |(i, &g)| {
        let q = if i == 0 || i == last {
            1
        } else {
            crate::QUANTA_PER_TRACK
        };
        (g, q)
    })
}

fn commit(grid: &mut RouteGrid, layer: usize, cells: &[GcellPos], segs: &mut Vec<RouteSeg>) {
    for (g, q) in run_usage(cells) {
        grid.add_quanta(layer, g, q);
    }
    segs.push(RouteSeg {
        layer,
        from: cells[0],
        to: *cells.last().expect("runs are non-empty"),
    });
}

/// The `(gcell, usage quanta)` pairs of a committed segment, in
/// normalized order, without materializing a cell list — equivalent to
/// [`run_usage`] over the segment's cells, but rip-up and merge run it
/// for tens of thousands of segments per evaluation, so the hot path
/// iterates coordinates directly. `run_usage` is symmetric in run
/// direction, so the quanta match those added when the run was first
/// committed regardless of segment orientation.
fn seg_usage(grid: &RouteGrid, s: &RouteSeg) -> impl Iterator<Item = (GcellPos, i64)> {
    let (fixed, lo, hi, horizontal) = match grid.dir(s.layer) {
        LayerDir::Horizontal => (s.from.y, s.from.x.min(s.to.x), s.from.x.max(s.to.x), true),
        LayerDir::Vertical => (s.from.x, s.from.y.min(s.to.y), s.from.y.max(s.to.y), false),
    };
    (lo..=hi).map(move |c| {
        let g = if horizontal {
            GcellPos::new(c, fixed)
        } else {
            GcellPos::new(fixed, c)
        };
        let q = if c == lo || c == hi {
            1
        } else {
            crate::QUANTA_PER_TRACK
        };
        (g, q)
    })
}

/// Removes a net's committed usage from the grid (the exact mirror of
/// [`commit`]'s endpoint-discounted quanta).
fn rip_up(grid: &mut RouteGrid, segs: &[RouteSeg]) {
    for s in segs {
        for (g, q) in seg_usage(grid, s) {
            grid.add_quanta(s.layer, g, -q);
        }
    }
}

/// Re-applies already-routed segments to a grid: the positive mirror of
/// [`rip_up`], used when merging region-locally rerouted nets back into
/// the master grid. Adds exactly the quanta [`commit`] added when the
/// segments were produced.
fn commit_segs(grid: &mut RouteGrid, segs: &[RouteSeg]) {
    for s in segs {
        for (g, q) in seg_usage(grid, s) {
            grid.add_quanta(s.layer, g, q);
        }
    }
}

/// Number of rip-up-and-reroute refinement rounds.
const RRR_ROUNDS: usize = 5;

/// The Phase-A runs of one MST edge: one straight run, or an L-shape whose
/// orientation is a parity hash of the endpoints (so roughly half the
/// bends go each way without consulting congestion — the choice must stay
/// a pure function of the edge for incremental re-planning).
fn pattern_runs(a: GcellPos, b: GcellPos) -> Vec<(LayerDir, Vec<GcellPos>)> {
    use LayerDir::{Horizontal as H, Vertical as V};
    let dx = a.x != b.x;
    let dy = a.y != b.y;
    if dx && dy {
        if (a.x ^ a.y ^ b.x ^ b.y) & 1 == 0 {
            vec![(H, h_run(a.y, a.x, b.x)), (V, v_run(b.x, a.y, b.y))]
        } else {
            vec![(V, v_run(a.x, a.y, b.y)), (H, h_run(b.y, a.x, b.x))]
        }
    } else if dx {
        vec![(H, h_run(a.y, a.x, b.x))]
    } else if dy {
        vec![(V, v_run(a.x, a.y, b.y))]
    } else {
        Vec::new()
    }
}

/// Commits one edge's pattern route on its length-ideal layer. Unlike
/// [`route_edge`] this never reads usage, capacity, or scale: the result
/// depends only on the edge itself.
fn pattern_route_edge(grid: &mut RouteGrid, a: GcellPos, b: GcellPos, segs: &mut Vec<RouteSeg>) {
    for (dir, cells) in pattern_runs(a, b) {
        let layers = grid.layers_with_dir(dir);
        let len = cells.len() as u32 - 1;
        let layer = layers[ideal_layer_rank(len, layers.len())];
        commit(grid, layer, &cells, segs);
    }
}

/// Pattern-routes one net from scratch into `plan` (terminals, MST,
/// per-edge pattern commit).
fn plan_net(plan: &mut RoutePlan, layout: &Layout, tech: &Technology, nid: NetId) {
    let terminals = net_terminals(layout, tech, &plan.grid, nid);
    let net_edges = mst_edges(&terminals);
    let mut net_segs = Vec::new();
    for &(a, b) in &net_edges {
        pattern_route_edge(&mut plan.grid, a, b, &mut net_segs);
    }
    plan.segs[nid.0 as usize] = Arc::new(net_segs);
    plan.edges[nid.0 as usize] = Arc::new(net_edges);
}

/// Phase A: builds the pattern-route plan of the whole layout. The clock
/// net is excluded (a dedicated clock tree distributes it), as are nets
/// touching fewer than two placed cells.
pub fn plan_route(layout: &Layout, tech: &Technology) -> RoutePlan {
    obs::span("route.phase_a", |_| {
        let design = layout.design();
        let n_nets = design.nets.len();
        // `vec![arc; n]` clones the Arc, so every unrouted net shares one
        // empty list — entries are only ever replaced wholesale, never
        // mutated through.
        #[allow(clippy::rc_clone_in_vec_init)]
        let mut plan = RoutePlan {
            grid: RouteGrid::new(layout.floorplan(), tech, layout.route_rule()),
            segs: vec![Arc::new(Vec::new()); n_nets],
            edges: vec![Arc::new(Vec::new()); n_nets],
        };
        for (nid, _net) in design.nets_iter() {
            if Some(nid) == design.clock {
                continue;
            }
            plan_net(&mut plan, layout, tech, nid);
        }
        plan
    })
}

/// Incremental Phase A: patches a cached base plan for an edited layout.
///
/// Only the nets named by `dirty` are ripped out and re-patterned; a rule
/// change merely re-derives scales and capacities (stored usage quanta are
/// unscaled, so they remain exact). Because each net's pattern is a pure
/// function of its terminals and integer usage commutes, the result is
/// bit-identical to `plan_route(layout, tech)`.
pub fn plan_update(
    base: &RoutePlan,
    layout: &Layout,
    tech: &Technology,
    dirty: &DirtySet,
) -> RoutePlan {
    obs::span("route.phase_a_patch", |_| {
        let design = layout.design();
        let mut plan = base.clone();
        if dirty.rule_changed {
            plan.grid.set_rule(tech, layout.route_rule());
        }
        for &nid in &dirty.nets {
            if Some(nid) == design.clock {
                continue;
            }
            let old = Arc::clone(&plan.segs[nid.0 as usize]);
            rip_up(&mut plan.grid, &old);
            plan_net(&mut plan, layout, tech, nid);
        }
        plan
    })
}

/// Diffs an edited layout against the baseline the plan was built from.
///
/// A net is dirty when any terminal cell's *gcell* changed (moves within
/// one gcell leave the global route untouched); a [`tech::RouteRule`]
/// mismatch is reported separately since it invalidates capacities and
/// scales but no pattern geometry.
pub fn dirty_between(
    plan: &RoutePlan,
    base: &Layout,
    edited: &Layout,
    tech: &Technology,
) -> DirtySet {
    let design = base.design();
    let grid = &plan.grid;
    let mut net_dirty = vec![false; design.nets.len()];
    for (cid, cell) in design.cells_iter() {
        let moved = match (base.cell_pos(cid), edited.cell_pos(cid)) {
            (None, None) => false,
            (Some(_), None) | (None, Some(_)) => true,
            (Some(_), Some(_)) => {
                grid.gcell_of_point(base.cell_center(cid, tech))
                    != grid.gcell_of_point(edited.cell_center(cid, tech))
            }
        };
        if moved {
            for &inp in &cell.inputs {
                net_dirty[inp.0 as usize] = true;
            }
            if let Some(out) = cell.output {
                net_dirty[out.0 as usize] = true;
            }
        }
    }
    DirtySet {
        nets: net_dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NetId(i as u32))
            .collect(),
        rule_changed: base.route_rule() != edited.route_rule(),
    }
}

/// Routes every signal net of the layout under its active NDR rule.
///
/// Phase A pattern-routes each net obliviously of congestion
/// ([`plan_route`]); [`finalize_route`] then runs a few rip-up-and-reroute
/// rounds that tear out every net crossing an overflowed `(layer, gcell)`
/// pair and reroute it under an escalated overflow penalty — the standard
/// negotiated-congestion recipe — and extracts parasitics.
pub fn route_design(layout: &Layout, tech: &Technology) -> RoutingState {
    finalize_route(layout, tech, plan_route(layout, tech))
}

/// Whether a committed segment crosses any overflowed gcell on its layer,
/// per the round's one-pass overflow census. Membership in the census
/// uses the same epsilon as the old per-segment usage re-read, so victim
/// sets are bit-identical to the sequential scan this replaces.
fn seg_crosses_overflow(oset: &OverflowSet, grid: &RouteGrid, s: &RouteSeg) -> bool {
    match grid.dir(s.layer) {
        LayerDir::Horizontal => {
            let (x0, x1) = (s.from.x.min(s.to.x), s.from.x.max(s.to.x));
            (x0..=x1).any(|x| oset.contains(s.layer, GcellPos::new(x, s.from.y)))
        }
        LayerDir::Vertical => {
            let (y0, y1) = (s.from.y.min(s.to.y), s.from.y.max(s.to.y));
            (y0..=y1).any(|y| oset.contains(s.layer, GcellPos::new(s.from.x, y)))
        }
    }
}

/// Reroutes one victim's MST edges against `grid` (maze router first,
/// pattern fallback when the window is exhausted); returns the fresh
/// segments.
fn reroute_net(
    grid: &mut RouteGrid,
    edges: &[(GcellPos, GcellPos)],
    penalty: f64,
) -> Vec<RouteSeg> {
    let mut net_segs = Vec::new();
    for &(a, b) in edges {
        if !route_edge_maze(grid, a, b, penalty, &mut net_segs) {
            route_edge(grid, a, b, penalty, &mut net_segs);
        }
    }
    net_segs
}

/// Reroutes footprint-disjoint victim components concurrently, then
/// merges the results into the master grid deterministically.
///
/// Each component clones the master grid — a refcount bump per usage
/// plane under copy-on-write; only planes the component writes un-share —
/// and reroutes its victims sequentially in net-id order against that
/// region-local view. Components share no gcell, so each observes exactly
/// the usage the sequential pass would show it regardless of scheduling.
/// The merge replays every victim in (component, net-id) order onto the
/// master: integer rip-up/commit quanta commute, so the merged state is
/// bit-identical to the sequential path at any thread count.
fn reroute_groups_parallel(
    grid: &mut RouteGrid,
    segs: &mut [Arc<Vec<RouteSeg>>],
    edges: &[Arc<Vec<(GcellPos, GcellPos)>>],
    victims: &[u32],
    groups: &[Vec<usize>],
    penalty: f64,
    threads: usize,
) {
    // Per-component output slot: (net id, new segments) in reroute order.
    type GroupResult = Mutex<Vec<(u32, Vec<RouteSeg>)>>;
    let results: Vec<GroupResult> = groups.iter().map(|_| Mutex::new(Vec::new())).collect();
    let master = &*grid;
    let segs_ref = &*segs;
    rayon::scope_with(threads, |s| {
        for (slot, group) in results.iter().zip(groups) {
            s.spawn(move |_| {
                let mut local = master.clone();
                let mut out = Vec::with_capacity(group.len());
                for &vi in group {
                    let net = victims[vi] as usize;
                    rip_up(&mut local, &segs_ref[net]);
                    out.push((net as u32, reroute_net(&mut local, &edges[net], penalty)));
                }
                *slot.lock().expect("region result slot") = out;
            });
        }
    });
    for slot in &results {
        for (net, new_segs) in slot.lock().expect("region result slot").drain(..) {
            let net = net as usize;
            rip_up(grid, &segs[net]);
            commit_segs(grid, &new_segs);
            segs[net] = Arc::new(new_segs);
        }
    }
}

/// Phase B plus extraction: refines a pattern plan with deterministic
/// rip-up-and-reroute and computes per-net parasitics. Disjoint
/// congestion regions reroute in parallel on up to [`crate::parallelism`]
/// worker threads; results are bit-identical at any thread count (see
/// [`finalize_route_with`]).
pub fn finalize_route(layout: &Layout, tech: &Technology, plan: RoutePlan) -> RoutingState {
    finalize_route_with(layout, tech, plan, crate::parallelism())
}

/// [`finalize_route`] pinned to one worker thread: the sequential
/// reference path, processing victims strictly in net-id order against
/// the live master grid.
pub fn finalize_route_serial(layout: &Layout, tech: &Technology, plan: RoutePlan) -> RoutingState {
    finalize_route_with(layout, tech, plan, 1)
}

/// [`finalize_route`] with an explicit worker-thread bound.
///
/// Determinism is load-bearing: for a fixed layout and plan the returned
/// state is bit-identical for every `threads` value. Per round, victims
/// are grouped into connected components of footprint overlap (`rrr`);
/// components reroute concurrently against region-local copy-on-write
/// grids and merge back in (component, net-id) order. A victim whose
/// footprint touches several congestion regions merges those regions into
/// one component rather than being deferred, which preserves sequential
/// equivalence; in the worst case everything collapses into a single
/// component and the round degenerates to the serial pass.
pub fn finalize_route_with(
    layout: &Layout,
    tech: &Technology,
    plan: RoutePlan,
    threads: usize,
) -> RoutingState {
    let design = layout.design();
    let clock = design.clock;
    let n_nets = design.nets.len();
    let RoutePlan {
        mut grid,
        mut segs,
        edges,
    } = plan;
    let threads = threads.max(1);
    let m = metrics();
    m.rrr_calls.incr();

    // Rip-up and reroute, keeping the best state seen (late rounds can
    // regress once detours start compounding). Usage planes and per-net
    // segment lists are Arc-shared, so the snapshot costs a refcount bump
    // per plane and per net, never a deep copy. The rounds loop (not the
    // extraction below) is Phase B proper, hence the span boundary.
    let (grid, segs, ripped) = obs::span("route.phase_b", move |_| {
        type BestState = (f64, RouteGrid, Vec<Arc<Vec<RouteSeg>>>);
        let mut best: Option<BestState> = None;
        // Union of all rounds' victims. Restoring the best state only
        // discards reroutes, so any net whose final segments differ from
        // the plan was a victim in some round — the union is a valid
        // (and cheap) superset for the incremental-STA dirty handoff.
        let mut ripped = vec![false; n_nets];
        for round in 0..RRR_ROUNDS {
            ROUTE_OVERFLOW.check();
            // One-pass overflow census: round scoring and victim scanning
            // test membership here instead of re-deriving scaled usage per
            // victim segment cell.
            let oset = grid.overflow_set();
            // Nothing overflows: the current state is final, and any best
            // state recorded earlier cannot beat an overflow score of zero.
            if oset.is_empty() {
                best = None;
                break;
            }
            let victims: Vec<u32> = (0..n_nets as u32)
                .filter(|&i| {
                    segs[i as usize]
                        .iter()
                        .any(|s| seg_crosses_overflow(&oset, &grid, s))
                })
                .collect();
            if victims.is_empty() {
                break;
            }
            for &i in &victims {
                ripped[i as usize] = true;
            }
            let score = oset.total_overflow();
            if best.as_ref().is_none_or(|(b, _, _)| score < *b) {
                best = Some((score, grid.clone(), segs.clone()));
            } else if round > 1 {
                break; // regressing: stop and restore the best state
            }
            let penalty = 3.0f64.powi(round as i32 + 1);
            let footprints: Vec<Vec<Rect>> = victims
                .iter()
                .map(|&i| {
                    edges[i as usize]
                        .iter()
                        .map(|&(a, b)| Rect::from_edge(a, b, MAZE_MARGIN, grid.nx(), grid.ny()))
                        .collect()
                })
                .collect();
            let groups = rrr::partition(&footprints, grid.nx(), grid.ny());
            let parallel = threads > 1 && groups.len() > 1;
            if parallel {
                reroute_groups_parallel(
                    &mut grid, &mut segs, &edges, &victims, &groups, penalty, threads,
                );
            } else {
                // Sequential reference path: each victim is torn out and
                // immediately rerouted against the live usage of every other
                // net, which keeps the process convergent (unsynchronized
                // parallel rip-up oscillates).
                for &i in &victims {
                    let old = Arc::clone(&segs[i as usize]);
                    rip_up(&mut grid, &old);
                    segs[i as usize] =
                        Arc::new(reroute_net(&mut grid, &edges[i as usize], penalty));
                }
            }
            m.rrr_rounds.incr();
            m.rrr_victims.add(victims.len() as u64);
            m.rrr_regions.add(groups.len() as u64);
            if parallel {
                m.rrr_parallel_rounds.incr();
            }
            obs::trace(obs::Topic::Route, || {
                format!(
                    "rrr round {round}: overflow_pairs {} total {score:.0} victims {} regions {}{}",
                    oset.pairs(),
                    victims.len(),
                    groups.len(),
                    if parallel { " (parallel)" } else { "" },
                )
            });
        }
        if let Some((score, bg, bs)) = best {
            if score < grid.total_overflow() {
                grid = bg;
                segs = bs;
            }
        }
        (grid, segs, ripped)
    });
    let touched: Vec<NetId> = ripped
        .iter()
        .enumerate()
        .filter_map(|(i, &r)| r.then_some(NetId(i as u32)))
        .collect();

    // Parasitics: routed length per layer plus per-pin escape stubs.
    let mut rc: Vec<NetRc> = vec![NetRc::default(); n_nets];
    let mut wl_um = 0.0;
    for (nid, net) in design.nets_iter() {
        if Some(nid) == clock {
            continue;
        }
        let mut res = 0.0;
        let mut cap = 0.0;
        for s in segs[nid.0 as usize].iter() {
            let layer = tech.layer(s.layer);
            let scale = grid.scale(s.layer);
            let len_dbu = match layer.dir {
                LayerDir::Horizontal => (s.gcells() as i64 - 1).max(0) * grid.span_x(),
                LayerDir::Vertical => (s.gcells() as i64 - 1).max(0) * grid.span_y(),
            } + grid.span_x() / 2;
            res += layer.wire_res(len_dbu, scale);
            cap += layer.wire_cap(len_dbu, scale);
            wl_um += geom::dbu_to_um(len_dbu);
        }
        let n_pins = net.sinks.len() + 1;
        if n_pins >= 2 && !net.sinks.is_empty() {
            let m2 = tech.layer(2);
            let stub = PIN_STUB_DBU * n_pins as i64;
            res += m2.wire_res(stub, 1.0);
            cap += m2.wire_cap(stub, 1.0);
            wl_um += geom::dbu_to_um(stub);
        }
        rc[nid.0 as usize] = NetRc { res, cap };
    }

    RoutingState {
        grid,
        segs,
        rc,
        wirelength_um: wl_um,
        touched: Arc::new(touched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layout::Layout;
    use netlist::bench;
    use tech::{RouteRule, Technology};

    fn routed(rule: RouteRule) -> (Technology, Layout, RoutingState) {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 5);
        place::refine_wirelength(&mut layout, &tech, 2, 5);
        layout.set_route_rule(rule);
        let routing = route_design(&layout, &tech);
        (tech, layout, routing)
    }

    #[test]
    fn routes_all_multi_pin_nets() {
        let (_, layout, routing) = routed(RouteRule::default());
        let clock = layout.design().clock;
        for (nid, net) in layout.design().nets_iter() {
            if Some(nid) == clock {
                assert!(routing.net_segs(nid).is_empty(), "clock must not route");
                continue;
            }
            let placed_pins = net.sinks.len() + 1;
            if placed_pins >= 2 && !net.sinks.is_empty() {
                let rc = routing.net_rc(nid);
                assert!(rc.cap > 0.0, "net {} has no capacitance", nid.0);
            }
        }
        assert!(routing.total_wirelength_um() > 0.0);
    }

    #[test]
    fn mst_spans_terminals() {
        let ts = [
            GcellPos::new(0, 0),
            GcellPos::new(5, 0),
            GcellPos::new(5, 5),
            GcellPos::new(0, 5),
        ];
        let edges = mst_edges(&ts);
        assert_eq!(edges.len(), 3);
        let total: u32 = edges.iter().map(|(a, b)| a.manhattan(*b)).sum();
        assert_eq!(total, 15, "square MST is three sides");
    }

    #[test]
    fn ndr_scaling_reduces_free_tracks_and_resistance() {
        let (_, _, base) = routed(RouteRule::default());
        let (_, layoutw, wide) = routed(RouteRule::uniform(1.5));
        let mut base_free = 0.0;
        let mut wide_free = 0.0;
        for gy in 0..base.grid().ny() {
            for gx in 0..base.grid().nx() {
                let g = GcellPos::new(gx, gy);
                base_free += base.grid().free_tracks_all_layers(g);
                wide_free += wide.grid().free_tracks_all_layers(g);
            }
        }
        assert!(
            wide_free < base_free,
            "wider wires must consume more tracks: {wide_free} vs {base_free}"
        );
        // Resistance of routed nets drops with wider wires.
        let clock = layoutw.design().clock;
        let (mut rb, mut rw) = (0.0, 0.0);
        for (nid, _) in layoutw.design().nets_iter() {
            if Some(nid) == clock {
                continue;
            }
            rb += base.net_rc(nid).res;
            rw += wide.net_rc(nid).res;
        }
        assert!(rw < rb, "wider wires must be less resistive");
    }

    #[test]
    fn baseline_drc_is_clean_or_nearly() {
        let (_, layout, routing) = routed(RouteRule::default());
        let v = routing.drc_violations(&layout);
        assert!(v <= 3, "baseline should be nearly DRC-clean, got {v}");
    }

    /// Benchmark-scale grids usually collapse into one congestion region
    /// (the maze halo is wide relative to the die), so the multi-group
    /// path of [`reroute_groups_parallel`] is exercised here directly: a
    /// wide synthetic grid with two far-apart hotspots must partition
    /// into two components and merge back bit-identical to the
    /// sequential reference at every thread bound.
    #[test]
    fn parallel_group_merge_matches_serial_on_disjoint_regions() {
        let tech = Technology::nangate45_like();
        let rule = RouteRule::default();
        let fp = layout::Floorplan::new(12 * crate::GCELL_H_ROWS, 60 * crate::GCELL_W_SITES);
        let mut grid = RouteGrid::new(&fp, &tech, &rule);
        assert!(grid.nx() >= 60 && grid.ny() >= 10);

        // Two nets per hotspot; the hotspots sit far enough apart that
        // their maze footprints (edge bbox + MAZE_MARGIN) cannot touch.
        let edges: Vec<Arc<Vec<(GcellPos, GcellPos)>>> = vec![
            Arc::new(vec![(GcellPos::new(2, 2), GcellPos::new(9, 8))]),
            Arc::new(vec![(GcellPos::new(3, 9), GcellPos::new(8, 3))]),
            Arc::new(vec![(GcellPos::new(46, 2), GcellPos::new(53, 8))]),
            Arc::new(vec![(GcellPos::new(47, 9), GcellPos::new(52, 3))]),
        ];
        let segs: Vec<Arc<Vec<RouteSeg>>> = edges
            .iter()
            .map(|e| Arc::new(reroute_net(&mut grid, e, 1.0)))
            .collect();
        // Saturate a column inside each hotspot so rerouting has real
        // congestion to negotiate instead of replaying the same pattern.
        for gx in [5u32, 49] {
            for gy in 2..=8 {
                for layer in 2..=5 {
                    grid.add_quanta(layer, GcellPos::new(gx, gy), 1000);
                }
            }
        }

        let victims: Vec<u32> = vec![0, 1, 2, 3];
        let footprints: Vec<Vec<Rect>> = victims
            .iter()
            .map(|&i| {
                edges[i as usize]
                    .iter()
                    .map(|&(a, b)| Rect::from_edge(a, b, MAZE_MARGIN, grid.nx(), grid.ny()))
                    .collect()
            })
            .collect();
        let groups = rrr::partition(&footprints, grid.nx(), grid.ny());
        assert_eq!(groups.len(), 2, "hotspots must form two disjoint regions");

        // Sequential reference: victims in net-id order on the live grid.
        let mut sg = grid.clone();
        let mut ss = segs.clone();
        for &i in &victims {
            let old = Arc::clone(&ss[i as usize]);
            rip_up(&mut sg, &old);
            ss[i as usize] = Arc::new(reroute_net(&mut sg, &edges[i as usize], 3.0));
        }
        assert!(
            ss.iter().zip(&segs).any(|(a, b)| a != b),
            "reroute must change something"
        );

        for threads in [2usize, 8] {
            let mut pg = grid.clone();
            let mut ps = segs.clone();
            reroute_groups_parallel(&mut pg, &mut ps, &edges, &victims, &groups, 3.0, threads);
            assert!(pg == sg, "grid diverged at {threads} threads");
            for (net, (a, b)) in ss.iter().zip(&ps).enumerate() {
                assert_eq!(a, b, "segments of net {net} diverged at {threads} threads");
            }
        }

        // Span nesting stays well-formed across the region-parallel
        // fan-out: the caller's stack is untouched by worker threads, and
        // the maze searches on the workers still aggregate. Delta-based
        // assertions: obs state is process-global and other tests in this
        // binary may be recording concurrently.
        obs::set_enabled(true);
        let pops_before = {
            let snap = obs::snapshot();
            snap.histograms
                .iter()
                .find(|h| h.name == "maze.pops")
                .map_or(0, |h| h.count)
        };
        let mut pg = grid.clone();
        let mut ps = segs.clone();
        obs::span("route.rrr_span_test", |_| {
            assert_eq!(obs::current_span_depth(), 1);
            reroute_groups_parallel(&mut pg, &mut ps, &edges, &victims, &groups, 3.0, 4);
            assert_eq!(
                obs::current_span_depth(),
                1,
                "workers must not touch this stack"
            );
        });
        assert_eq!(obs::current_span_depth(), 0);
        let snap = obs::snapshot();
        assert!(snap.span_count("route.rrr_span_test") >= 1);
        let pops_after = snap
            .histograms
            .iter()
            .find(|h| h.name == "maze.pops")
            .map_or(0, |h| h.count);
        assert!(
            pops_after > pops_before,
            "worker-side maze searches must aggregate"
        );
        obs::set_enabled(false);
    }

    #[test]
    fn segments_are_axis_aligned_and_on_matching_layers() {
        let (tech, layout, routing) = routed(RouteRule::default());
        for (nid, _) in layout.design().nets_iter() {
            for s in routing.net_segs(nid) {
                match tech.layer(s.layer).dir {
                    LayerDir::Horizontal => assert_eq!(s.from.y, s.to.y),
                    LayerDir::Vertical => assert_eq!(s.from.x, s.to.x),
                }
                assert!(s.layer >= 2, "M1 must not carry global routes");
            }
        }
    }
}
