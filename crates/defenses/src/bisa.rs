//! BISA — built-in self-authentication (Xiao & Tehranipoor, HOST 2013).
//!
//! Fills *every* unused placement site in the layout with functional logic
//! wired into a self-authentication chain, leaving an attacker no room to
//! place Trojan gates anywhere. The price, which Table II quantifies: the
//! added gates burn leakage and switching power everywhere, and their
//! chain wiring congests routing, hurting timing and design rules.

use gdsii_guard::prelude::*;
use geom::Interval;
use tech::Technology;

use crate::fill::fill_runs;

/// Applies BISA to a baseline snapshot and re-analyzes the result.
pub fn apply_bisa(base: &Snapshot, tech: &Technology) -> Snapshot {
    let layout = &base.layout;
    let runs: Vec<(u32, Interval)> = (0..layout.floorplan().rows())
        .flat_map(|r| {
            layout
                .occupancy()
                .empty_runs(r)
                .into_iter()
                .map(move |iv| (r, iv))
        })
        .collect();
    let (filled, _added) = fill_runs(layout, tech, &runs);
    evaluate_unchecked(filled, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsii_guard::pipeline::implement_baseline;
    use netlist::bench;

    #[test]
    fn bisa_crushes_security_but_costs_power() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let hardened = apply_bisa(&base, &tech);
        let sec = secmetrics::security_score(&hardened.security, &base.security, 0.5);
        assert!(
            sec < 0.12,
            "BISA should remove nearly all free space: {sec}"
        );
        assert!(
            hardened.power_mw() > base.power_mw() * 1.1,
            "fill logic must cost notable power: {} vs {}",
            hardened.power_mw(),
            base.power_mw()
        );
        // Utilization is now essentially full.
        assert!(hardened.layout.utilization() > 0.95);
    }
}
