//! ICAS-style defense — undirected CAD parameter tuning (Trippel et al.,
//! IEEE S&P 2020).
//!
//! ICAS itself is an estimation framework; as a defense the paper uses its
//! recommended knob, re-running global placement and routing at higher
//! core density so less contiguous free space survives. The approach is
//! security-agnostic (no knowledge of the critical cells) and pays with
//! the longest runtime of all compared defenses: every candidate density
//! is a full re-place-and-route.

use gdsii_guard::prelude::*;
use layout::Layout;
use tech::Technology;

/// Utilization increments over the baseline swept by the tuning loop.
pub const DENSITY_SWEEP_DELTA: [f64; 3] = [0.06, 0.10, 0.14];

/// Maximum tolerated DRC increase over the baseline before a density
/// candidate is rejected as unroutable.
pub const MAX_DRC_INCREASE: u32 = 30;

/// Applies the ICAS density-tuning defense: re-implements the design at
/// each sweep density (full global P&R) and keeps the densest candidate
/// that still routes acceptably. Falls back to the baseline if none does.
pub fn apply_icas(base: &Snapshot, tech: &Technology) -> Snapshot {
    let design = base.layout.design().clone();
    let critical = design.critical_cells.clone();
    let seed = 0x1CA5u64;
    let base_util = base.layout.utilization();
    let mut best: Option<Snapshot> = None;
    let mut least_violating: Option<Snapshot> = None;
    for &delta in DENSITY_SWEEP_DELTA.iter() {
        let util = (base_util + delta).min(0.88);
        let mut layout = Layout::empty_floorplan(design.clone(), tech, util);
        place::global_place(&mut layout, tech, seed);
        place::refine_wirelength(&mut layout, tech, 4, seed);
        place::bank_cells(&mut layout, tech, &critical, 0.85, seed);
        for &c in &critical {
            layout.occupancy_mut().lock(c);
        }
        place::refine_wirelength(&mut layout, tech, 3, seed ^ 0xBA2);
        for &c in &critical {
            layout.occupancy_mut().unlock(c);
        }
        let snap = evaluate_unchecked(layout, tech);
        if snap.drc <= base.drc + MAX_DRC_INCREASE {
            best = Some(snap); // sweep is ascending: densest acceptable wins
        } else if least_violating.as_ref().is_none_or(|s| snap.drc < s.drc) {
            // Keep the least-violating densified candidate: an undirected
            // tuner ships the best result it can get, then hand-fixes the
            // remaining violations (the paper tolerates minor DRC/power
            // degradation for exactly this reason).
            least_violating = Some(snap);
        }
    }
    best.or(least_violating).unwrap_or_else(|| base.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsii_guard::pipeline::implement_baseline;
    use netlist::bench;

    #[test]
    fn icas_raises_density_and_reduces_free_space() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let hardened = apply_icas(&base, &tech);
        assert!(
            hardened.layout.utilization() > base.layout.utilization() + 0.05,
            "ICAS should densify: {} vs {}",
            hardened.layout.utilization(),
            base.layout.utilization()
        );
        let sec = secmetrics::security_score(&hardened.security, &base.security, 0.5);
        assert!(sec < 0.9, "denser placement must reduce free space: {sec}");
        // Undirected tuning cannot reach fill-based coverage.
        assert!(sec > 0.005, "ICAS does not eliminate everything: {sec}");
    }
}
