//! Shared netlist surgery for fill-based defenses: appending functional
//! fill gates to a finalized design and chaining them into a
//! built-in-self-authentication network.

use geom::{Interval, SitePos};
use layout::Layout;
use netlist::{Cell, CellId, Design, Net, NetDriver, NetId, Sink};
use tech::{KindId, Technology};

/// Running state of the self-authentication chain: fill gates consume the
/// most recent chain outputs, so consecutive (physically adjacent) fill
/// cells wire to each other with short nets.
pub(crate) struct FillChain {
    /// Most recent chain output.
    prev: NetId,
    /// Second most recent, for 2-input gates.
    prev2: NetId,
    /// Number of gates added.
    pub added: usize,
}

impl FillChain {
    /// Starts a chain from a fresh `test_en` primary input.
    pub fn new(design: &mut Design) -> Self {
        let idx = design.primary_inputs.len() as u32;
        let net = NetId(design.nets.len() as u32);
        design.nets.push(Net {
            name: format!("bisa_test_en{idx}"),
            driver: NetDriver::PrimaryInput(idx),
            sinks: Vec::new(),
        });
        design.primary_inputs.push(net);
        Self {
            prev: net,
            prev2: net,
            added: 0,
        }
    }

    /// Appends one fill gate of `kind` to the design and returns its id.
    pub fn push_gate(&mut self, design: &mut Design, tech: &Technology, kind: KindId) -> CellId {
        let master = tech.library.kind(kind);
        let id = CellId(design.cells.len() as u32);
        let out = NetId(design.nets.len() as u32);
        let inputs: Vec<NetId> = match master.inputs {
            1 => vec![self.prev],
            2 => vec![self.prev, self.prev2],
            n => {
                let mut v = vec![self.prev, self.prev2];
                v.extend(std::iter::repeat_n(self.prev, n as usize - 2));
                v
            }
        };
        design.nets.push(Net {
            name: format!("bisa_n{}", out.0),
            driver: NetDriver::Cell(id),
            sinks: Vec::new(),
        });
        for (pin, &net) in inputs.iter().enumerate() {
            design.nets[net.0 as usize].sinks.push(Sink::CellInput {
                cell: id,
                pin: pin as u8,
            });
        }
        design.cells.push(Cell {
            name: format!("bisa_fill{}", id.0),
            kind,
            inputs,
            output: Some(out),
            clock: None,
        });
        self.prev2 = self.prev;
        self.prev = out;
        self.added += 1;
        id
    }

    /// Terminates the chain at a fresh primary output (the authentication
    /// signature pin).
    pub fn finish(self, design: &mut Design) {
        let idx = design.primary_outputs.len() as u32;
        design.nets[self.prev.0 as usize]
            .sinks
            .push(Sink::PrimaryOutput(idx));
        design.primary_outputs.push(self.prev);
    }
}

/// Greedy tiling of a free run with functional gates (INV = 2 sites,
/// NAND2 = 3 sites): every length ≥ 2 tiles exactly; single-site slivers
/// are unfillable by functional logic and remain — the residue the paper
/// measures for BISA.
pub(crate) fn tile_widths(len: u32) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut left = len;
    while left >= 2 {
        if left == 2 || left == 4 {
            out.push("INV_X1");
            left -= 2;
        } else {
            out.push("NAND2_X1");
            left -= 3;
        }
    }
    out
}

/// Fills the given free runs of a layout with chained functional gates.
/// Returns `(extended layout, gates added)`.
pub(crate) fn fill_runs(
    base_layout: &Layout,
    tech: &Technology,
    runs: &[(u32, Interval)],
) -> (Layout, usize) {
    let mut design = base_layout.design().clone();
    let mut chain = FillChain::new(&mut design);
    // Collect (position, kind) first so the design surgery happens in one
    // deterministic sweep.
    let mut placements: Vec<(SitePos, KindId, u32)> = Vec::new();
    for &(row, iv) in runs {
        let mut col = iv.lo;
        for name in tile_widths(iv.len()) {
            let kind = tech.library.kind_by_name(name).expect("fill kind");
            let w = tech.library.kind(kind).width_sites;
            placements.push((SitePos::new(row, col), kind, w));
            col += w;
        }
    }
    let mut gate_ids = Vec::with_capacity(placements.len());
    for &(_, kind, _) in &placements {
        gate_ids.push(chain.push_gate(&mut design, tech, kind));
    }
    let added = chain.added;
    chain.finish(&mut design);
    let mut layout = base_layout.with_extended_design(design);
    layout.occupancy_mut().clear_fillers();
    for (i, &(pos, _, w)) in placements.iter().enumerate() {
        layout
            .occupancy_mut()
            .place_cell(gate_ids[i], w, pos)
            .expect("run was free");
    }
    debug_assert!(layout.check_consistency(tech).is_ok());
    (layout, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::Technology;

    #[test]
    fn tile_widths_cover_everything_but_slivers() {
        for len in 2..60 {
            let tech = Technology::nangate45_like();
            let total: u32 = tile_widths(len)
                .iter()
                .map(|n| {
                    tech.library
                        .kind(tech.library.kind_by_name(n).unwrap())
                        .width_sites
                })
                .sum();
            assert_eq!(total, len, "len {len} mistiled");
        }
        assert!(tile_widths(1).is_empty());
        assert!(tile_widths(0).is_empty());
    }

    #[test]
    fn chain_produces_valid_design() {
        let tech = Technology::nangate45_like();
        let mut design = bench::generate(&bench::tiny_spec(), &tech);
        let n_cells = design.cells.len();
        let mut chain = FillChain::new(&mut design);
        for _ in 0..10 {
            chain.push_gate(
                &mut design,
                &tech,
                tech.library.kind_by_name("NAND2_X1").unwrap(),
            );
        }
        chain.finish(&mut design);
        assert_eq!(design.cells.len(), n_cells + 10);
        design
            .validate(&tech)
            .expect("surgery preserves invariants");
    }

    #[test]
    fn fill_runs_places_and_extends() {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = layout::Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 3);
        let runs: Vec<(u32, Interval)> = (0..layout.floorplan().rows())
            .flat_map(|r| {
                layout
                    .occupancy()
                    .empty_runs(r)
                    .into_iter()
                    .map(move |iv| (r, iv))
            })
            .collect();
        let (filled, added) = fill_runs(&layout, &tech, &runs);
        assert!(added > 0);
        filled.design().validate(&tech).expect("valid after fill");
        // Only 1-site slivers remain empty.
        for r in 0..filled.floorplan().rows() {
            for run in filled.occupancy().empty_runs(r) {
                assert_eq!(run.len(), 1, "run {run} should have been filled");
            }
        }
    }
}
