//! Ba et al. — local layout filling (ECCTD 2015 / ISVLSI 2016).
//!
//! Improves on BISA by appending the tamper-evident logic only *near* the
//! security-critical cells (inside the exploitable regions), targeting at
//! least 90 % local placement density. Cheaper than BISA, but the
//! defensive coverage is discounted: the last tail of every run stays
//! open, and free space outside the analyzed neighborhood is not treated
//! at all.

use gdsii_guard::prelude::*;
use geom::Interval;
use tech::Technology;

use crate::fill::fill_runs;

/// Fraction of each exploitable run that Ba et al. fills (≥90 % local
/// density target; the remainder is the coverage discount the paper
/// observes).
pub const LOCAL_FILL_FRACTION: f64 = 0.9;

/// Applies the Ba et al. defense to a baseline snapshot.
pub fn apply_ba(base: &Snapshot, tech: &Technology) -> Snapshot {
    // Fill only the runs composing the baseline's exploitable regions,
    // truncating each run at the 90 % mark.
    let mut runs: Vec<(u32, Interval)> = Vec::new();
    for region in &base.security.regions {
        for &(row, iv) in &region.rows {
            let keep = (iv.len() as f64 * LOCAL_FILL_FRACTION).floor() as u32;
            if keep >= 2 {
                runs.push((row, Interval::new(iv.lo, iv.lo + keep)));
            }
        }
    }
    runs.sort_unstable();
    let (filled, _added) = fill_runs(&base.layout, tech, &runs);
    evaluate_unchecked(filled, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisa::apply_bisa;
    use gdsii_guard::pipeline::implement_baseline;
    use netlist::bench;

    #[test]
    fn ba_sits_between_baseline_and_bisa() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let ba = apply_ba(&base, &tech);
        let bisa = apply_bisa(&base, &tech);
        let sec_ba = secmetrics::security_score(&ba.security, &base.security, 0.5);
        let sec_bisa = secmetrics::security_score(&bisa.security, &base.security, 0.5);
        assert!(
            sec_ba < 0.7,
            "Ba should remove most exploitable space: {sec_ba}"
        );
        assert!(
            sec_bisa <= sec_ba + 0.05,
            "BISA coverage ≥ Ba coverage: {sec_bisa} vs {sec_ba}"
        );
        // Ba adds fewer cells, hence less power than BISA.
        assert!(ba.power_mw() <= bisa.power_mw());
        assert!(ba.power_mw() >= base.power_mw());
    }

    #[test]
    fn ba_only_touches_exploitable_neighborhoods() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let ba = apply_ba(&base, &tech);
        let added = ba.layout.design().cells.len() - base.layout.design().cells.len();
        // Strictly fewer fill cells than a whole-core fill would need.
        let bisa = apply_bisa(&base, &tech);
        let added_bisa = bisa.layout.design().cells.len() - base.layout.design().cells.len();
        assert!(added > 0);
        assert!(added < added_bisa);
    }
}
