//! State-of-the-art layout-level anti-Trojan defenses the paper compares
//! against (§IV-A):
//!
//! * [`icas`] — Trippel et al., *ICAS* (IEEE S&P 2020): undirected CAD
//!   parameter tuning, chiefly re-running global P&R at higher core
//!   density to squeeze free space.
//! * [`bisa`] — Xiao & Tehranipoor, *BISA* (HOST 2013): fill every unused
//!   site with functional, tamper-evident logic wired into a built-in
//!   self-authentication chain.
//! * [`ba`] — Ba et al. (ECCTD'15 / ISVLSI'16): BISA-style filling applied
//!   locally around the security-critical cells, at ≥90 % local density.
//!
//! Every defense consumes a baseline [`gdsii_guard::Snapshot`] and returns
//! the hardened snapshot re-analyzed by the same pipeline, so Fig. 4 and
//! Table II comparisons are apples-to-apples.

pub mod ba;
pub mod bisa;
mod fill;
pub mod icas;

pub use ba::apply_ba;
pub use bisa::apply_bisa;
pub use icas::apply_icas;
