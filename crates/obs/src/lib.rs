//! Workspace-wide observability: a dependency-free span tracer, metrics
//! registry, and trace-event switchboard.
//!
//! Every hot layer of the GDSII-Guard flow (routing, placement, STA,
//! NSGA-II, the evaluation pipeline) reports through this one crate
//! instead of per-crate debug flags and one-off stats structs. Three
//! independent facilities:
//!
//! - **Spans** — [`span`] wraps a phase in monotonic wall timing and
//!   aggregates `(count, total_nanos)` per dotted call path
//!   (`"eval.incremental/route.phase_b"`). Nesting is tracked per thread;
//!   aggregation is process-global and thread-safe, so spans recorded
//!   from rayon workers and evaluation threads merge losslessly.
//! - **Metrics** — [`counter`], [`gauge`], and [`histogram`] hand out
//!   cheap atomic-backed handles registered by name
//!   (`"rrr.rounds"`, `"maze.pops"`, `"eval.cache_hits"`). Histograms
//!   use fixed power-of-two log-bucketing.
//! - **Trace events** — [`trace`] replaces the retired `GG_ROUTE_DEBUG` /
//!   `GG_LDA_DEBUG` eprintln paths: each event carries a [`Topic`], and
//!   topics are switched on either programmatically ([`enable`]) or with
//!   the single documented `GG_TRACE=route,lda,…` environment variable.
//!
//! Spans and metrics are **off by default** and gated by one process-wide
//! atomic ([`set_enabled`]): when disabled, a counter bump is a single
//! relaxed load and a span is two monotonic clock reads — unmeasurable on
//! the paths this crate instruments. [`snapshot`] drains an immutable
//! [`MetricsSnapshot`] that renders as a human tree ([`MetricsSnapshot::render`])
//! or machine-readable JSON ([`MetricsSnapshot::to_json`]).
//!
//! # Examples
//!
//! ```
//! obs::set_enabled(true);
//! let hits = obs::counter("doc.cache_hits");
//! let total = obs::span("doc.phase", |_| {
//!     hits.incr();
//!     2 + 2
//! });
//! assert_eq!(total, 4);
//! let snap = obs::snapshot();
//! assert!(snap.counter("doc.cache_hits") >= 1);
//! assert!(snap.span_count("doc.phase") >= 1);
//! obs::set_enabled(false);
//! obs::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Master enable switch (spans + metrics)
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span timing and metric recording on or off process-wide.
///
/// Off (the default), instrumented code pays one relaxed atomic load per
/// metric touch; no allocation, locking, or clock read happens beyond the
/// two monotonic reads a [`span`] always performs for its handle.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing and metric recording are on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Trace topics (the GG_TRACE switchboard)
// ---------------------------------------------------------------------------

/// A trace-event category, replacing the per-crate debug env vars.
///
/// `route` carries the rip-up-and-reroute round trace that used to hide
/// behind `GG_ROUTE_DEBUG`; `lda` carries the LDA/ECO-placement phase
/// timings that used to hide behind `GG_LDA_DEBUG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topic {
    /// Routing: per-round rip-up-and-reroute records.
    Route,
    /// LDA operator and its ECO placement phases.
    Lda,
    /// Static timing analysis.
    Sta,
    /// NSGA-II exploration.
    Nsga2,
    /// Benchmark harnesses.
    Bench,
}

impl Topic {
    /// Every topic, in display order.
    pub const ALL: [Topic; 5] = [
        Topic::Route,
        Topic::Lda,
        Topic::Sta,
        Topic::Nsga2,
        Topic::Bench,
    ];

    /// The topic's `GG_TRACE` name.
    pub fn name(self) -> &'static str {
        match self {
            Topic::Route => "route",
            Topic::Lda => "lda",
            Topic::Sta => "sta",
            Topic::Nsga2 => "nsga2",
            Topic::Bench => "bench",
        }
    }

    /// Parses a `GG_TRACE` topic name.
    pub fn from_name(s: &str) -> Option<Topic> {
        Topic::ALL
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(s))
    }

    fn bit(self) -> u32 {
        1 << self as u32
    }
}

static TRACE_TOPICS: AtomicU32 = AtomicU32::new(0);
static TRACE_ENV_INIT: Once = Once::new();

/// Folds the `GG_TRACE` environment variable (comma-separated topic
/// names, or `all`) into the active topic set, once per process. Called
/// lazily from [`trace_enabled`]; unknown names are diagnosed, not fatal.
fn init_trace_from_env() {
    TRACE_ENV_INIT.call_once(|| {
        let Some(raw) = std::env::var_os("GG_TRACE") else {
            return;
        };
        let raw = raw.to_string_lossy();
        let mut bits = 0u32;
        for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part.eq_ignore_ascii_case("all") {
                bits = u32::MAX;
            } else if let Some(t) = Topic::from_name(part) {
                bits |= t.bit();
            } else {
                diag(format_args!(
                    "obs: unknown GG_TRACE topic '{part}' (known: route, lda, sta, nsga2, bench, all)"
                ));
            }
        }
        TRACE_TOPICS.fetch_or(bits, Ordering::Relaxed);
    });
}

/// Programmatically switches a trace topic on (the code-level equivalent
/// of listing it in `GG_TRACE`).
pub fn enable(topic: Topic) {
    init_trace_from_env();
    TRACE_TOPICS.fetch_or(topic.bit(), Ordering::Relaxed);
}

/// Switches a trace topic off.
pub fn disable(topic: Topic) {
    init_trace_from_env();
    TRACE_TOPICS.fetch_and(!topic.bit(), Ordering::Relaxed);
}

/// Whether events of `topic` are currently emitted.
#[inline]
pub fn trace_enabled(topic: Topic) -> bool {
    init_trace_from_env();
    TRACE_TOPICS.load(Ordering::Relaxed) & topic.bit() != 0
}

/// Emits one trace event on `topic`. The message closure only runs (and
/// only allocates) when the topic is enabled.
pub fn trace(topic: Topic, msg: impl FnOnce() -> String) {
    if trace_enabled(topic) {
        eprintln!("[{}] {}", topic.name(), msg());
    }
}

/// Unconditional diagnostic line on the observability sink (stderr).
///
/// This is the one blessed way user-facing tools in this workspace write
/// diagnostics, so every byte of non-result output flows through a single
/// redirectable seam. Prefer [`trace`] for anything gated by a topic.
pub fn diag(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// [`diag`] with `format!`-style arguments.
#[macro_export]
macro_rules! diagln {
    ($($t:tt)*) => { $crate::diag(format_args!($($t)*)) };
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Number of log buckets a [`Histogram`] carries. Bucket 0 counts zero
/// values; bucket `k ≥ 1` counts values in `[2^(k-1), 2^k)`; the last
/// bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_nanos: u64,
}

#[derive(Debug)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistCells>>,
    spans: BTreeMap<String, SpanAgg>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
    spans: BTreeMap::new(),
});

/// Registry access is panic-robust: a thread that panicked inside a span
/// poisons nothing of consequence (aggregation is monotone counters), so
/// the poison flag is deliberately cleared instead of propagated.
fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A named monotone counter. Cloning shares the underlying cell; updates
/// from any number of threads are lossless.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when recording is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when recording is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named last-value gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` when recording is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A named histogram with fixed power-of-two log-bucketing
/// (see [`HIST_BUCKETS`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCells>);

/// The log bucket of a value (shared by recording and snapshotting).
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Exclusive upper bound of bucket `k` (`u64::MAX` for the overflow
/// bucket).
fn bucket_bound(k: usize) -> u64 {
    if k + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << k
    }
}

impl Histogram {
    /// Records one observation when recording is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// Returns the shared counter registered under `name`, creating it on
/// first use. Call once per site and keep the handle (a `OnceLock` at the
/// call site): the lookup takes the registry lock, the handle never does.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    Counter(Arc::clone(
        reg.counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0))),
    ))
}

/// Returns the shared gauge registered under `name` (see [`counter`] for
/// the handle-caching contract).
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    Gauge(Arc::clone(
        reg.gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0))),
    ))
}

/// Returns the shared histogram registered under `name` (see [`counter`]
/// for the handle-caching contract).
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    Histogram(Arc::clone(
        reg.histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCells::new())),
    ))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// The current thread's open-span name stack. Worker threads start
    /// with an empty stack, so spans opened inside a thread pool
    /// aggregate under their own root path — by design: the cross-thread
    /// parent is not observable without paying for context passing on
    /// every hot call.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Timing handle passed to a [`span`] body; valid whether or not
/// recording is enabled, so trace messages can report wall time
/// unconditionally.
#[derive(Debug)]
pub struct SpanHandle {
    t0: Instant,
}

impl SpanHandle {
    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }
}

/// Pops the stack and aggregates on drop, so a panicking span body
/// (proptest shrinking, assertion failures under test) cannot corrupt
/// the per-thread nesting.
struct SpanGuard {
    t0: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let total_nanos = self.t0.elapsed().as_nanos() as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut reg = registry();
        let agg = reg.spans.entry(path).or_default();
        agg.count += 1;
        agg.total_nanos += total_nanos;
    }
}

/// Runs `f` inside a named span.
///
/// When recording is enabled the span pushes `name` onto the calling
/// thread's stack, times the body on the monotonic clock, and merges
/// `(count, total_nanos)` into the process-wide aggregate under the full
/// `/`-joined path. Disabled, it degenerates to calling `f` directly.
/// Aggregation happens in a drop guard, so nesting stays well-formed even
/// if `f` panics.
pub fn span<R>(name: &'static str, f: impl FnOnce(&SpanHandle) -> R) -> R {
    let handle = SpanHandle { t0: Instant::now() };
    if !enabled() {
        return f(&handle);
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    let _guard = SpanGuard { t0: handle.t0 };
    f(&handle)
}

/// Number of spans currently open on this thread (0 outside any span);
/// test hook for nesting well-formedness.
pub fn current_span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

// ---------------------------------------------------------------------------
// Snapshot, reset, rendering, JSON export
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(exclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time aggregate of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Full `/`-joined call path (`"eval.incremental/route.phase_b"`).
    pub path: String,
    /// Completed executions.
    pub count: u64,
    /// Summed wall time in nanoseconds.
    pub total_nanos: u64,
}

/// An immutable copy of the whole registry, ready to render or export.
/// Zero-valued counters/gauges and empty histograms are omitted, so a
/// fully disabled run snapshots as empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per non-zero counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per non-zero gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Non-empty histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every recorded span path, path-sorted.
    pub spans: Vec<SpanSnapshot>,
}

/// Copies the current registry state out (recording continues unchanged).
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .filter(|&(_, v)| v != 0)
        .collect();
    let gauges = reg
        .gauges
        .iter()
        .map(|(n, g)| (n.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
        .filter(|&(_, v)| v != 0.0)
        .collect();
    let histograms = reg
        .histograms
        .iter()
        .filter_map(|(n, h)| {
            let buckets: Vec<(u64, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .map(|(k, b)| (bucket_bound(k), b.load(Ordering::Relaxed)))
                .filter(|&(_, c)| c != 0)
                .collect();
            let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
            (count != 0).then(|| HistogramSnapshot {
                name: n.clone(),
                count,
                sum: h.sum.load(Ordering::Relaxed),
                buckets,
            })
        })
        .collect();
    let spans = reg
        .spans
        .iter()
        .map(|(p, a)| SpanSnapshot {
            path: p.clone(),
            count: a.count,
            total_nanos: a.total_nanos,
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
        spans,
    }
}

/// Zeroes every counter, gauge, and histogram and clears the span
/// aggregates. Handles held by call sites stay valid (the cells are
/// zeroed in place, never replaced), so benchmark harnesses can bracket
/// a measured region with `reset()` … `snapshot()`.
pub fn reset() {
    let mut reg = registry();
    for c in reg.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
    }
    reg.spans.clear();
}

/// Formats nanoseconds as a compact human duration.
fn fmt_nanos(n: u64) -> String {
    let s = n as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of a gauge, when recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Whether a span path's *leaf* name matches `leaf` — span call paths
    /// vary with the caller (`"eval.incremental/route.phase_b"` vs
    /// `"route.phase_b"`), so per-phase queries aggregate by leaf.
    fn leaf_matches(path: &str, leaf: &str) -> bool {
        path.rsplit('/').next() == Some(leaf)
    }

    /// Total executions of the span named `leaf`, summed over every call
    /// path it appears in.
    pub fn span_count(&self, leaf: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| Self::leaf_matches(&s.path, leaf))
            .map(|s| s.count)
            .sum()
    }

    /// Total wall nanoseconds of the span named `leaf`, summed over every
    /// call path it appears in. Summed across threads, so with parallel
    /// callers this can exceed elapsed time.
    pub fn span_total_nanos(&self, leaf: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| Self::leaf_matches(&s.path, leaf))
            .map(|s| s.total_nanos)
            .sum()
    }

    /// Renders the human `--verbose` tree: spans indented by call depth,
    /// then counters, gauges, and histograms.
    pub fn render(&self) -> String {
        let mut out = String::from("telemetry\n");
        if !self.spans.is_empty() {
            out.push_str("  spans (count, total, mean)\n");
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
                let mean = s.total_nanos / s.count.max(1);
                out.push_str(&format!(
                    "  {:indent$}{leaf:<w$} {:>8}  {:>10}  {:>10}\n",
                    "",
                    s.count,
                    fmt_nanos(s.total_nanos),
                    fmt_nanos(mean),
                    indent = 2 + 2 * depth,
                    w = 36usize.saturating_sub(2 * depth),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("    {n:<38} {v:>10}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauges\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("    {n:<38} {v:>10}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "    {:<38} count {} sum {}\n      buckets:",
                    h.name, h.count, h.sum
                ));
                for &(bound, c) in &h.buckets {
                    if bound == u64::MAX {
                        out.push_str(&format!(" inf:{c}"));
                    } else {
                        out.push_str(&format!(" <{bound}:{c}"));
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the snapshot as a self-contained JSON object (the
    /// machine-readable export merged into `BENCH_explore.json`).
    pub fn to_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        fn finite(v: f64) -> f64 {
            if v.is_finite() {
                v
            } else {
                0.0
            }
        }
        let mut out = String::from("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(n, &mut out);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(n, &mut out);
            out.push_str(&format!(":{:?}", finite(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(&h.name, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            for (j, &(bound, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(&s.path, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_nanos\":{}}}",
                s.count, s.total_nanos
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and the enabled flag are process-global; tests that
    /// flip them are serialized on this lock (and reset on entry).
    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(false);
        reset();
        g
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = exclusive();
        let c = counter("t.disabled");
        let h = histogram("t.disabled_h");
        let ga = gauge("t.disabled_g");
        span("t.disabled_span", |_| {
            c.add(5);
            h.record(9);
            ga.set(1.5);
        });
        assert!(snapshot().is_empty());
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_gauges_histograms_round_through_snapshot() {
        let _g = exclusive();
        set_enabled(true);
        let c = counter("t.counter");
        c.add(3);
        c.incr();
        gauge("t.gauge").set(2.25);
        let h = histogram("t.hist");
        for v in [0u64, 1, 1, 2, 3, 100, u64::MAX] {
            h.record(v);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), 4);
        assert_eq!(snap.gauge("t.gauge"), Some(2.25));
        let hs = snap.histograms.iter().find(|h| h.name == "t.hist").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 107u64.wrapping_add(u64::MAX));
        // Bucket bounds: 0 lands below 1; 1 lands below 2; 2..3 below 4.
        assert_eq!(hs.buckets.iter().find(|b| b.0 == 1).map(|b| b.1), Some(1));
        assert_eq!(hs.buckets.iter().find(|b| b.0 == 2).map(|b| b.1), Some(2));
        assert_eq!(hs.buckets.iter().find(|b| b.0 == 4).map(|b| b.1), Some(2));
        assert_eq!(hs.buckets.last().map(|b| b.0), Some(u64::MAX));
        set_enabled(false);
    }

    #[test]
    fn bucket_of_is_monotone_and_bounded() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 20, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone");
            assert!(b < HIST_BUCKETS);
            if b + 1 < HIST_BUCKETS {
                assert!(v < bucket_bound(b), "{v} must fall under its bound");
            }
            last = b;
        }
    }

    #[test]
    fn spans_nest_by_thread_and_aggregate_by_path() {
        let _g = exclusive();
        set_enabled(true);
        span("outer", |_| {
            assert_eq!(current_span_depth(), 1);
            span("inner", |_| assert_eq!(current_span_depth(), 2));
            span("inner", |_| ());
        });
        span("outer", |_| ());
        assert_eq!(current_span_depth(), 0);
        let snap = snapshot();
        let by_path = |p: &str| snap.spans.iter().find(|s| s.path == p).map(|s| s.count);
        assert_eq!(by_path("outer"), Some(2));
        assert_eq!(by_path("outer/inner"), Some(2));
        assert_eq!(snap.span_count("inner"), 2);
        assert!(snap.span_total_nanos("outer") >= snap.span_total_nanos("inner"));
        set_enabled(false);
    }

    #[test]
    fn span_stack_survives_panicking_bodies() {
        let _g = exclusive();
        set_enabled(true);
        let r = std::panic::catch_unwind(|| span("panicky", |_| span("deep", |_| panic!("boom"))));
        assert!(r.is_err());
        assert_eq!(current_span_depth(), 0, "guard must unwind the stack");
        let snap = snapshot();
        assert_eq!(snap.span_count("deep"), 1);
        assert_eq!(snap.span_count("panicky"), 1);
        set_enabled(false);
    }

    #[test]
    fn reset_zeroes_in_place_and_keeps_handles_live() {
        let _g = exclusive();
        set_enabled(true);
        let c = counter("t.reset");
        c.add(7);
        span("t.reset_span", |_| ());
        reset();
        assert!(snapshot().is_empty());
        c.add(2);
        assert_eq!(snapshot().counter("t.reset"), 2);
        set_enabled(false);
    }

    #[test]
    fn trace_topics_parse_and_toggle() {
        assert_eq!(Topic::from_name("route"), Some(Topic::Route));
        assert_eq!(Topic::from_name("LDA"), Some(Topic::Lda));
        assert_eq!(Topic::from_name("bogus"), None);
        for t in Topic::ALL {
            assert_eq!(Topic::from_name(t.name()), Some(t));
        }
        enable(Topic::Bench);
        assert!(trace_enabled(Topic::Bench));
        disable(Topic::Bench);
        assert!(!trace_enabled(Topic::Bench));
    }

    #[test]
    fn render_and_json_cover_every_section() {
        let _g = exclusive();
        set_enabled(true);
        counter("t.render_c").add(1);
        gauge("t.render_g").set(0.5);
        histogram("t.render_h").record(3);
        span("t.render_outer", |_| span("t.render_inner", |_| ()));
        let snap = snapshot();
        let tree = snap.render();
        for needle in ["t.render_c", "t.render_g", "t.render_h", "t.render_inner"] {
            assert!(tree.contains(needle), "render misses {needle}:\n{tree}");
        }
        let json = snap.to_json();
        assert!(json.contains("\"t.render_outer/t.render_inner\""));
        assert!(json.contains("\"counters\""));
        set_enabled(false);
    }
}
