//! Lossless aggregation under concurrency: counter and histogram updates
//! fanned out across rayon workers must sum exactly, and span nesting
//! must stay well-formed on every worker thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use proptest::prelude::*;

/// obs state is process-global; every test (and proptest case) in this
/// binary serializes on this lock and starts from a clean registry.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::reset();
    obs::set_enabled(true);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_counter_updates_are_lossless(
        increments in proptest::collection::vec(1u64..1000, 1..64),
        workers in 1usize..8,
    ) {
        let _g = exclusive();
        let c = obs::counter("cc.losses");
        rayon::scope_with(workers, |s| {
            for &n in &increments {
                let c = c.clone();
                s.spawn(move |_| c.add(n));
            }
        });
        let expect: u64 = increments.iter().sum();
        prop_assert_eq!(c.get(), expect);
        prop_assert_eq!(obs::snapshot().counter("cc.losses"), expect);
        obs::set_enabled(false);
    }

    #[test]
    fn concurrent_histogram_updates_are_lossless(
        values in proptest::collection::vec(0u64..1_000_000, 1..64),
        workers in 1usize..8,
    ) {
        let _g = exclusive();
        let h = obs::histogram("cc.hist");
        rayon::scope_with(workers, |s| {
            for &v in &values {
                let h = h.clone();
                s.spawn(move |_| h.record(v));
            }
        });
        let snap = obs::snapshot();
        let hs = snap.histograms.iter().find(|h| h.name == "cc.hist").unwrap();
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        let bucketed: u64 = hs.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucketed, hs.count, "every observation lands in exactly one bucket");
        obs::set_enabled(false);
    }
}

#[test]
fn spans_stay_well_formed_on_every_worker() {
    let _g = exclusive();
    const TASKS: u64 = 32;
    let bad_depth = AtomicU64::new(0);
    rayon::scope_with(4, |s| {
        for _ in 0..TASKS {
            let bad_depth = &bad_depth;
            s.spawn(move |_| {
                // Worker threads start with an empty span stack; nesting
                // within the task must be exact regardless of what other
                // workers are doing.
                obs::span("cc.task", |_| {
                    if obs::current_span_depth() != 1 {
                        bad_depth.fetch_add(1, Ordering::Relaxed);
                    }
                    obs::span("cc.leaf", |_| {
                        if obs::current_span_depth() != 2 {
                            bad_depth.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                });
                if obs::current_span_depth() != 0 {
                    bad_depth.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(bad_depth.load(Ordering::Relaxed), 0);
    let snap = obs::snapshot();
    assert_eq!(snap.span_count("cc.task"), TASKS);
    assert_eq!(snap.span_count("cc.leaf"), TASKS);
    // Nested leaves aggregate under the full path, never at the root.
    assert!(snap.spans.iter().any(|s| s.path == "cc.task/cc.leaf"));
    assert!(!snap.spans.iter().any(|s| s.path == "cc.leaf"));
    obs::set_enabled(false);
}
