//! The machine-readable export must be strict JSON: `ggjson`'s parser
//! (the consumer that merges telemetry into `BENCH_explore.json`) has to
//! read back every section of the snapshot losslessly.

use std::sync::{Mutex, MutexGuard, PoisonError};

use ggjson::Json;

/// obs state is process-global; the tests in this binary serialize on
/// this lock and start from a clean registry.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::set_enabled(false);
    obs::reset();
    g
}

#[test]
fn snapshot_json_parses_back_losslessly() {
    let _g = exclusive();
    obs::set_enabled(true);
    obs::counter("rt.counter").add(42);
    obs::gauge("rt.gauge").set(6.5);
    let h = obs::histogram("rt.hist");
    for v in [0u64, 1, 5, 5, 300] {
        h.record(v);
    }
    obs::span("rt.outer", |_| obs::span("rt.inner \"quoted\"", |_| ()));
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let parsed = ggjson::parse(&snap.to_json()).expect("export must be strict JSON");

    // ggjson stores numbers as f64; everything recorded here is far below
    // 2^53, so exact equality is the right assertion.
    let counters = parsed.get("counters").expect("counters section");
    assert_eq!(
        counters.get("rt.counter").and_then(Json::as_num),
        Some(42.0)
    );
    let gauges = parsed.get("gauges").expect("gauges section");
    assert_eq!(gauges.get("rt.gauge").and_then(Json::as_num), Some(6.5));

    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("rt.hist"))
        .expect("histogram entry");
    assert_eq!(hist.get("count").and_then(Json::as_num), Some(5.0));
    assert_eq!(hist.get("sum").and_then(Json::as_num), Some(311.0));
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "rt.hist")
        .unwrap();
    let Some(Json::Arr(buckets)) = hist.get("buckets") else {
        panic!("buckets must be an array");
    };
    assert_eq!(buckets.len(), hs.buckets.len());
    for (parsed_b, &(bound, count)) in buckets.iter().zip(&hs.buckets) {
        let Json::Arr(pair) = parsed_b else {
            panic!("bucket must be a [bound, count] pair");
        };
        assert_eq!(pair[0].as_num(), Some(bound as f64));
        assert_eq!(pair[1].as_num(), Some(count as f64));
    }

    // Span paths — including escaped quotes — survive the round trip.
    let spans = parsed.get("spans").expect("spans section");
    let inner = spans
        .get("rt.outer/rt.inner \"quoted\"")
        .expect("escaped span path");
    assert_eq!(inner.get("count").and_then(Json::as_num), Some(1.0));
    let outer = spans.get("rt.outer").expect("root span path");
    assert!(outer.get("total_nanos").and_then(Json::as_num).is_some());
}

#[test]
fn empty_snapshot_exports_empty_sections() {
    let _g = exclusive();
    obs::counter("rt.never").add(1);
    obs::span("rt.never_span", |_| ());
    let snap = obs::snapshot();
    assert!(snap.is_empty(), "disabled recording must leave no trace");
    let parsed = ggjson::parse(&snap.to_json()).expect("empty export is still strict JSON");
    for section in ["counters", "gauges", "histograms", "spans"] {
        let Some(Json::Obj(members)) = parsed.get(section) else {
            panic!("{section} must be an object");
        };
        assert!(members.is_empty());
    }
}
