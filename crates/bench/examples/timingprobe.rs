use gdsii_guard::prelude::*;
use std::time::Instant;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("AES_1").unwrap();
    let t = Instant::now();
    let base = implement_baseline(&spec, &tech).unwrap();
    println!("baseline {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let _icas = defenses::apply_icas(&base, &tech);
    println!("icas {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let _bisa = defenses::apply_bisa(&base, &tech);
    println!("bisa {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let _ba = defenses::apply_ba(&base, &tech);
    println!("ba {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let m = gdsii_guard::flow::FlowRun::new(&base, &tech, &gdsii_guard::FlowConfig::lda_default())
        .unchecked()
        .metrics();
    println!(
        "one LDA eval {:.1}s (sec {:.3})",
        t.elapsed().as_secs_f64(),
        m.security
    );
    let t = Instant::now();
    let m = gdsii_guard::flow::FlowRun::new(
        &base,
        &tech,
        &gdsii_guard::FlowConfig::cell_shift_default(),
    )
    .unchecked()
    .metrics();
    println!(
        "one CS eval {:.1}s (sec {:.3})",
        t.elapsed().as_secs_f64(),
        m.security
    );
}
