//! Criterion bench: the three anti-Trojan ECO operators (Cell Shift, LDA,
//! RWS re-route) in isolation on a small design — the per-candidate cost
//! structure behind the §IV-D runtime comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use gdsii_guard::cell_shift::cell_shift;
use gdsii_guard::lda::{local_density_adjustment, LdaParams};
use gdsii_guard::prelude::*;
use secmetrics::THRESH_ER;
use tech::{RouteRule, Technology};

fn bench_operators(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("PRESENT").expect("known design");
    let base = implement_baseline(&spec, &tech).unwrap();
    let mut group = c.benchmark_group("flow_operators");

    group.bench_function("cell_shift/PRESENT", |b| {
        b.iter_batched(
            || layout::Layout::clone(&base.layout),
            |mut layout| {
                cell_shift(&mut layout, &tech, THRESH_ER);
                std::hint::black_box(layout)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("lda_n8/PRESENT", |b| {
        b.iter_batched(
            || layout::Layout::clone(&base.layout),
            |mut layout| {
                local_density_adjustment(&mut layout, &tech, LdaParams { n: 8, n_iter: 1 }, 1);
                std::hint::black_box(layout)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("rws_reroute/PRESENT", |b| {
        b.iter_batched(
            || {
                let mut l = layout::Layout::clone(&base.layout);
                l.set_route_rule(RouteRule::uniform(1.2));
                l
            },
            |layout| std::hint::black_box(route::route_design(&layout, &tech)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_operators
}
criterion_main!(benches);
