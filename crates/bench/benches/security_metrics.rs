//! Criterion bench: cost of the security analysis itself — exploitable
//! distance + region extraction + ERsites/ERtracks — on a placed-and-routed
//! design. This is the inner loop the flow optimizer pays on every
//! candidate evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use gdsii_guard::prelude::*;
use secmetrics::{analyze_regions, THRESH_ER};
use tech::Technology;

fn bench_security_metrics(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let mut group = c.benchmark_group("security_metrics");
    for name in ["PRESENT", "CAST"] {
        let spec = netlist::bench::spec_by_name(name).expect("known design");
        let snap = implement_baseline(&spec, &tech).unwrap();
        group.bench_function(format!("analyze_regions/{name}"), |b| {
            b.iter(|| {
                let a = analyze_regions(
                    std::hint::black_box(&snap.layout),
                    &snap.routing,
                    &snap.timing,
                    &tech,
                    THRESH_ER,
                );
                std::hint::black_box(a.er_sites)
            })
        });
        group.bench_function(format!("attack_battery/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(secmetrics::attack::battery_success_rate(
                    &snap.security,
                    &tech,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_security_metrics
}
criterion_main!(benches);
