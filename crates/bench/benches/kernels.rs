//! Criterion micro-benches for the two kernels the incremental replay
//! spends its wall time in: frontier-driven incremental STA
//! (`sta::analyze_incremental`) and the bucket-frontier A* maze search.
//!
//! `BENCH_explore.json` records the whole-replay speedup; these pin the
//! per-call cost of the kernels underneath it, so a regression surfaces
//! at the kernel that caused it instead of diluted into the end-to-end
//! ratio. CI compiles them with the workspace benches and runs each one
//! once in Criterion's `--test` mode.

use criterion::{criterion_group, criterion_main, Criterion};
use gdsii_guard::prelude::*;
use geom::GcellPos;
use layout::Floorplan;
use route::{RouteGrid, GCELL_H_ROWS, GCELL_W_SITES};
use tech::{RouteRule, Technology, NUM_METAL_LAYERS};

/// Incremental STA against a cached base, on the candidate shapes the
/// GA produces: a placement edit (bounded dirty set, small frontier) and
/// a route-rule change (no dirty bound — every net's RC is suspect, the
/// frontier's worst case).
fn bench_sta_incremental(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::tiny_spec();
    let base = implement_baseline(&spec, &tech).unwrap();
    let engine = EvalEngine::new(&base, &tech);

    let shift = FlowConfig::cell_shift_default();
    let mut widened = FlowConfig::cell_shift_default();
    widened.scales = [1.3; NUM_METAL_LAYERS];
    widened.scales[0] = 1.0;

    let mut group = c.benchmark_group("sta_incremental");
    for (name, cfg) in [("cell_shift", &shift), ("rule_change", &widened)] {
        let snap = FlowRun::new(&base, &tech, cfg)
            .seed(7)
            .unchecked()
            .snapshot();
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(sta::analyze_incremental(
                    engine.graph(),
                    &base.timing,
                    &base.routing,
                    &snap.layout,
                    &snap.routing,
                    &tech,
                    None,
                ))
            })
        });
    }
    group.finish();
}

/// One maze search on a congested grid, via the production radix (Dial)
/// frontier and the reference binary heap — the pair the equivalence
/// proptest pins together. The spread between them is the bucket
/// frontier's win; the dial number alone is the rip-up-and-reroute
/// per-search cost.
fn bench_maze_route(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let fp = Floorplan::new(24 * GCELL_H_ROWS, 32 * GCELL_W_SITES);
    let mut grid = RouteGrid::new(&fp, &tech, &RouteRule::default());
    // A deterministic congestion wall between the endpoints, so the
    // search has to detour instead of running the bare Manhattan line.
    for y in 4..20 {
        for m in 2..=3 {
            grid.add_quanta(m, GcellPos::new(16, y), 3000);
        }
    }
    let (a, b) = (GcellPos::new(2, 2), GcellPos::new(30, 21));
    // The escalated penalty rip-up-and-reroute rounds actually use.
    let penalty = 9.0;

    let mut group = c.benchmark_group("maze_route");
    group.bench_function("dial", |bench| {
        bench.iter(|| std::hint::black_box(route::maze_route_dial_for_tests(&grid, a, b, penalty)))
    });
    group.bench_function("heap", |bench| {
        bench.iter(|| std::hint::black_box(route::maze_route_heap_for_tests(&grid, a, b, penalty)))
    });
    group.finish();
}

criterion_group!(kernels, bench_sta_incremental, bench_maze_route);
criterion_main!(kernels);
