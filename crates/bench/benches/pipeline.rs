//! Criterion bench: the full implementation pipeline per design-size
//! bucket (place → route → STA → power → security), i.e. one flow-candidate
//! evaluation end to end — plus the incremental-vs-full evaluation
//! comparison that `BENCH_explore.json` records at the whole-exploration
//! level (see `src/bin/bench_explore.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use gdsii_guard::prelude::*;
use tech::{Technology, NUM_METAL_LAYERS};

fn bench_pipeline(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let mut group = c.benchmark_group("pipeline");
    for name in ["PRESENT", "TDEA", "CAST"] {
        let spec = netlist::bench::spec_by_name(name).expect("known design");
        group.bench_function(format!("implement_baseline/{name}"), |b| {
            b.iter(|| std::hint::black_box(implement_baseline_unchecked(&spec, &tech)))
        });
        let base = implement_baseline(&spec, &tech).unwrap();
        group.bench_function(format!("flow_candidate_cs/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
                        .unchecked()
                        .metrics(),
                )
            })
        });
    }
    group.finish();
}

/// Incremental engine vs the from-scratch oracle on the same candidate
/// stream: a small population of scale variations around two operators,
/// the shape an NSGA-II generation produces. The engine is warmed outside
/// the timed loop — steady-state amortized cost is what the GA pays.
fn bench_incremental(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::tiny_spec();
    let base = implement_baseline(&spec, &tech).unwrap();
    let mut cfgs = Vec::new();
    for op in [
        FlowConfig::cell_shift_default().op,
        FlowConfig::lda_default().op,
    ] {
        for scale in [1.0, 1.2, 1.5] {
            let mut s = [scale; NUM_METAL_LAYERS];
            s[0] = 1.0;
            cfgs.push(FlowConfig { op, scales: s });
        }
    }

    let mut group = c.benchmark_group("incremental");
    group.bench_function("population_full", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                std::hint::black_box(
                    FlowRun::new(&base, &tech, cfg)
                        .seed(7)
                        .unchecked()
                        .metrics(),
                );
            }
        })
    });
    let engine = EvalEngine::new(&base, &tech);
    for cfg in &cfgs {
        std::hint::black_box(
            FlowRun::new(engine.base(), &tech, cfg)
                .engine(&engine)
                .seed(7)
                .unchecked()
                .metrics(),
        );
    }
    group.bench_function("population_incremental", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                std::hint::black_box(
                    FlowRun::new(engine.base(), &tech, cfg)
                        .engine(&engine)
                        .seed(7)
                        .unchecked()
                        .metrics(),
                );
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_incremental
}
criterion_main!(benches);
