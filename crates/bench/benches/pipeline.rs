//! Criterion bench: the full implementation pipeline per design-size
//! bucket (place → route → STA → power → security), i.e. one flow-candidate
//! evaluation end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use gdsii_guard::flow::{run_flow, FlowConfig};
use gdsii_guard::pipeline::implement_baseline;
use tech::Technology;

fn bench_pipeline(c: &mut Criterion) {
    let tech = Technology::nangate45_like();
    let mut group = c.benchmark_group("pipeline");
    for name in ["PRESENT", "TDEA", "CAST"] {
        let spec = netlist::bench::spec_by_name(name).expect("known design");
        group.bench_function(format!("implement_baseline/{name}"), |b| {
            b.iter(|| std::hint::black_box(implement_baseline(&spec, &tech)))
        });
        let base = implement_baseline(&spec, &tech);
        group.bench_function(format!("flow_candidate_cs/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(run_flow(
                    &base,
                    &tech,
                    &FlowConfig::cell_shift_default(),
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
