//! Minimal ASCII scatter plotting for terminal-rendered figures.

/// Renders `(x, y)` points into a `width × height` character grid. Series
/// are drawn in order, later series overwriting earlier ones; each series
/// has its own glyph.
#[allow(clippy::type_complexity)] // series: (label, glyph, points)
pub fn scatter(
    series: &[(&str, char, &[(f64, f64)])],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no points)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let pad = |lo: &mut f64, hi: &mut f64| {
        if (*hi - *lo).abs() < 1e-12 {
            *lo -= 0.5;
            *hi += 0.5;
        } else {
            let m = (*hi - *lo) * 0.05;
            *lo -= m;
            *hi += m;
        }
    };
    pad(&mut x0, &mut x1);
    pad(&mut y0, &mut y1);

    let mut grid = vec![vec![' '; width]; height];
    for (_, glyph, pts) in series {
        for &(x, y) in *pts {
            let cx = (((x - x0) / (x1 - x0)) * (width as f64 - 1.0)).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height as f64 - 1.0)).round() as usize;
            let cy = height - 1 - cy.min(height - 1);
            grid[cy][cx.min(width - 1)] = *glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label} ({y1:.2} top, {y0:.2} bottom)\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!(
        " {x_label}: {x0:.3} .. {x1:.3}   legend: {}\n",
        series
            .iter()
            .map(|(n, g, _)| format!("{g}={n}"))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_points_in_bounds() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.25)];
        let s = scatter(&[("front", '*', &pts)], 20, 8, "security", "-tns");
        assert!(s.contains('*'));
        assert!(s.lines().count() >= 10);
    }

    #[test]
    fn empty_series_is_handled() {
        let s = scatter(&[("none", '*', &[])], 10, 4, "x", "y");
        assert!(s.contains("no points"));
    }

    #[test]
    fn degenerate_range_is_padded() {
        let pts = [(0.5, 2.0), (0.5, 2.0)];
        let s = scatter(&[("p", 'o', &pts)], 10, 4, "x", "y");
        assert!(s.contains('o'));
    }
}
