//! Shared evaluation driver: runs every defense on one benchmark design
//! and returns comparable metrics.

use gdsii_guard::prelude::*;
use std::time::Instant;

use netlist::bench::DesignSpec;
use tech::Technology;

/// NSGA-II budget used by the experiment binaries: a thorough fig5-style
/// exploration (~1.5k unique implementations on the tiny spec). The
/// incremental [`gdsii_guard::pipeline::EvalEngine`] keeps this cheap —
/// operator edits and Phase-A plans amortize across the run, so the
/// twelve-design sweep still finishes in minutes.
///
/// `threads` stays on auto (0 = the machine's available parallelism):
/// candidate evaluation is CPU-bound, so spawning more workers than
/// hardware threads only adds queue contention and preemption stalls —
/// on a single-core runner a pinned 8-worker replay measured ~1.7x
/// slower than the same replay sized to the machine. Routing still gets
/// at least two region workers per evaluation via
/// [`route::budget_for_workers`], so the region-parallel Phase B path is
/// exercised (and timed) everywhere.
pub const GG_GA_PARAMS: Nsga2Params = Nsga2Params::builder()
    .population(24)
    .generations(128)
    .seed(0x6D51)
    .threads(0)
    .build();

/// Metrics of one defense applied to one design.
#[derive(Debug, Clone)]
pub struct DefenseMetrics {
    /// Defense name (`Original`, `ICAS`, `BISA`, `Ba`, `GDSII-Guard`).
    pub defense: String,
    /// Absolute exploitable free sites.
    pub er_sites: u64,
    /// Absolute exploitable free tracks.
    pub er_tracks: f64,
    /// Free sites normalized by the original design.
    pub norm_sites: f64,
    /// Free tracks normalized by the original design.
    pub norm_tracks: f64,
    /// Total negative slack in ns (paper Table II convention).
    pub tns_ns: f64,
    /// Total power in mW.
    pub power_mw: f64,
    /// DRC violations.
    pub drc: u32,
    /// Wall-clock seconds to produce the hardened layout.
    pub wall_secs: f64,
    /// Trojan-battery insertion success rate (0..1).
    pub attack_success: f64,
}

ggjson::json_struct!(DefenseMetrics {
    defense,
    er_sites,
    er_tracks,
    norm_sites,
    norm_tracks,
    tns_ns,
    power_mw,
    drc,
    wall_secs,
    attack_success
});

fn metrics_of(
    name: &str,
    snap: &Snapshot,
    base: &Snapshot,
    tech: &Technology,
    secs: f64,
) -> DefenseMetrics {
    let norm = |v: f64, b: f64| if b > 0.0 { v / b } else { 0.0 };
    DefenseMetrics {
        defense: name.to_owned(),
        er_sites: snap.security.er_sites,
        er_tracks: snap.security.er_tracks,
        norm_sites: norm(snap.security.er_sites as f64, base.security.er_sites as f64),
        norm_tracks: norm(snap.security.er_tracks, base.security.er_tracks),
        tns_ns: snap.tns_ps() / 1_000.0,
        power_mw: snap.power_mw(),
        drc: snap.drc,
        wall_secs: secs,
        attack_success: secmetrics::attack::battery_success_rate(&snap.security, tech),
    }
}

/// Picks the paper's "selected Pareto solution": the feasible point with
/// the best (lowest) security, ties broken by better timing.
fn select_pareto_point(
    base: &Snapshot,
    tech: &Technology,
    params: &Nsga2Params,
) -> (Snapshot, gdsii_guard::FlowConfig) {
    let result = explore(base, tech, params);
    let front = result.pareto_front();
    let chosen = front
        .iter()
        .min_by(|a, b| {
            (a.metrics.security, -a.metrics.tns_ps)
                .partial_cmp(&(b.metrics.security, -b.metrics.tns_ps))
                .expect("finite metrics")
        })
        .map(|p| p.config.clone())
        .unwrap_or_else(gdsii_guard::FlowConfig::cell_shift_default);
    let snap = gdsii_guard::flow::FlowRun::new(base, tech, &chosen)
        .unchecked()
        .snapshot();
    (snap, chosen)
}

/// Runs Original + all four defenses on one design.
pub fn evaluate_design(spec: &DesignSpec, tech: &Technology) -> Vec<DefenseMetrics> {
    let t0 = Instant::now();
    let base = implement_baseline(spec, tech).unwrap();
    let base_secs = t0.elapsed().as_secs_f64();
    let mut out = vec![metrics_of("Original", &base, &base, tech, base_secs)];

    let t = Instant::now();
    let icas = defenses::apply_icas(&base, tech);
    out.push(metrics_of(
        "ICAS",
        &icas,
        &base,
        tech,
        t.elapsed().as_secs_f64(),
    ));

    let t = Instant::now();
    let bisa = defenses::apply_bisa(&base, tech);
    out.push(metrics_of(
        "BISA",
        &bisa,
        &base,
        tech,
        t.elapsed().as_secs_f64(),
    ));

    let t = Instant::now();
    let ba = defenses::apply_ba(&base, tech);
    out.push(metrics_of(
        "Ba",
        &ba,
        &base,
        tech,
        t.elapsed().as_secs_f64(),
    ));

    let t = Instant::now();
    let (gg, _cfg) = select_pareto_point(&base, tech, &GG_GA_PARAMS);
    out.push(metrics_of(
        "GDSII-Guard",
        &gg,
        &base,
        tech,
        t.elapsed().as_secs_f64(),
    ));
    out
}

/// Cached variant of [`evaluate_design`].
pub fn evaluate_design_cached(spec: &DesignSpec, tech: &Technology) -> Vec<DefenseMetrics> {
    crate::cache::load_or_compute(&format!("defenses_{}", spec.name), || {
        evaluate_design(spec, tech)
    })
}
