//! Experiment harness for the GDSII-Guard reproduction: one driver per
//! paper artifact (Fig. 4, Fig. 5, Table II, §IV-D runtime), shared result
//! caching, and a tiny ASCII scatter plotter for Pareto fronts.
//!
//! The binaries in `src/bin/` regenerate each artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig4` | Fig. 4 — normalized free sites/tracks per defense |
//! | `fig5` | Fig. 5 — explored Pareto fronts on four designs |
//! | `table2` | Table II — TNS / power / DRC per defense |
//! | `runtime` | §IV-D — optimization runtime comparison on AES_2 |
//! | `attack` | validation — Trojan insertion battery success rates |
//! | `ablation` | design-choice ablations flagged in DESIGN.md |

pub mod cache;
pub mod driver;
pub mod plot;

pub use driver::{evaluate_design, DefenseMetrics, GG_GA_PARAMS};
