//! Disk cache for experiment results, so `fig4`, `table2`, and `runtime`
//! can share one expensive evaluation sweep.

use std::fs;
use std::path::PathBuf;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Directory the experiment binaries write their results into.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn path_for(key: &str) -> PathBuf {
    results_dir().join(format!("{key}.json"))
}

/// Loads a cached result by key.
pub fn load<T: DeserializeOwned>(key: &str) -> Option<T> {
    let bytes = fs::read(path_for(key)).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Stores a result under the key (best effort; failures only disable the
/// cache, they never fail the experiment).
pub fn store<T: Serialize>(key: &str, value: &T) {
    let _ = fs::create_dir_all(results_dir());
    if let Ok(json) = serde_json::to_vec_pretty(value) {
        let _ = fs::write(path_for(key), json);
    }
}

/// Loads the cached value or computes and stores it.
pub fn load_or_compute<T, F>(key: &str, compute: F) -> T
where
    T: Serialize + DeserializeOwned,
    F: FnOnce() -> T,
{
    if let Some(v) = load(key) {
        return v;
    }
    let v = compute();
    store(key, &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = "unit_test_cache_entry";
        let _ = std::fs::remove_file(path_for(key));
        let v: Vec<u32> = load_or_compute(key, || vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        // Second load must come from disk (compute would panic).
        let v2: Vec<u32> = load_or_compute(key, || panic!("must hit cache"));
        assert_eq!(v2, vec![1, 2, 3]);
        let _ = std::fs::remove_file(path_for(key));
    }
}
