//! Disk cache for experiment results, so `fig4`, `table2`, and `runtime`
//! can share one expensive evaluation sweep.

use std::fs;
use std::path::PathBuf;

use ggjson::{FromJson, ToJson};

/// Directory the experiment binaries write their results into.
///
/// Anchored at the workspace root so the cache is shared no matter which
/// directory an experiment binary is launched from (`cargo run -p gg-bench`
/// at the root and a direct `target/release/fig5` inside a crate both hit
/// the same files). Set `GG_RESULTS_DIR` to redirect it entirely.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("GG_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // crates/bench/ -> workspace root
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("results")
}

fn path_for(key: &str) -> PathBuf {
    results_dir().join(format!("{key}.json"))
}

/// Loads a cached result by key.
pub fn load<T: FromJson>(key: &str) -> Option<T> {
    let bytes = fs::read(path_for(key)).ok()?;
    ggjson::from_slice(&bytes)
}

/// Stores a result under the key (best effort; failures only disable the
/// cache, they never fail the experiment).
pub fn store<T: ToJson>(key: &str, value: &T) {
    let _ = fs::create_dir_all(results_dir());
    let _ = fs::write(path_for(key), ggjson::to_vec_pretty(value));
}

/// Loads the cached value or computes and stores it.
pub fn load_or_compute<T, F>(key: &str, compute: F) -> T
where
    T: ToJson + FromJson,
    F: FnOnce() -> T,
{
    if let Some(v) = load(key) {
        return v;
    }
    let v = compute();
    store(key, &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = "unit_test_cache_entry";
        let _ = std::fs::remove_file(path_for(key));
        let v: Vec<u32> = load_or_compute(key, || vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        // Second load must come from disk (compute would panic).
        let v2: Vec<u32> = load_or_compute(key, || panic!("must hit cache"));
        assert_eq!(v2, vec![1, 2, 3]);
        let _ = std::fs::remove_file(path_for(key));
    }

    #[test]
    fn results_dir_is_cwd_independent() {
        // Without the env override the directory is anchored at the
        // workspace root, not at whatever CWD the process happens to have.
        if std::env::var_os("GG_RESULTS_DIR").is_none() {
            let dir = results_dir();
            assert!(dir.is_absolute(), "results dir must not be CWD-relative");
            assert!(dir.ends_with("results"));
            assert!(
                dir.parent()
                    .expect("has parent")
                    .join("Cargo.toml")
                    .exists(),
                "expected workspace root above {}",
                dir.display()
            );
        }
    }
}
