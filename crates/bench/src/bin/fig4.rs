//! **EXP-F4** — regenerates Fig. 4 of the paper: normalized total free
//! sites and free tracks per design for ICAS, BISA, Ba et al., and
//! GDSII-Guard, plus the cross-design averages the abstract quotes
//! (98.8 % risk reduction for GDSII-Guard).

use gg_bench::driver::evaluate_design_cached;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    let defenses = ["ICAS", "BISA", "Ba", "GDSII-Guard"];
    println!("Fig. 4 — normalized free sites / free tracks (baseline = 1.0)\n");
    println!(
        "{:<14} {:>13} {:>13} {:>13} {:>13}",
        "design", "ICAS", "BISA", "Ba", "GDSII-Guard"
    );
    let mut sums_sites = [0.0f64; 4];
    let mut sums_tracks = [0.0f64; 4];
    let specs = netlist::bench::all_specs();
    for spec in &specs {
        let rows = evaluate_design_cached(spec, &tech);
        let mut cells = Vec::new();
        for (i, d) in defenses.iter().enumerate() {
            let m = rows
                .iter()
                .find(|m| m.defense == *d)
                .expect("driver evaluates every defense");
            sums_sites[i] += m.norm_sites;
            sums_tracks[i] += m.norm_tracks;
            cells.push(format!(
                "{:>5.1}/{:<5.1}",
                m.norm_sites.max(0.0) * 100.0,
                m.norm_tracks.max(0.0) * 100.0
            ));
        }
        println!(
            "{:<14} {:>13} {:>13} {:>13} {:>13}",
            spec.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("{:-<72}", "");
    let n = specs.len() as f64;
    print!("{:<14}", "average %");
    for i in 0..4 {
        print!(
            " {:>13}",
            format!(
                "{:>5.1}/{:<5.1}",
                sums_sites[i] / n * 100.0,
                sums_tracks[i] / n * 100.0
            )
        );
    }
    println!();
    let gg_sites = sums_sites[3] / n;
    let gg_tracks = sums_tracks[3] / n;
    println!(
        "\nGDSII-Guard average risk reduction: {:.1} % of free sites removed \
         (paper: 98.8 %), {:.1} % of free tracks removed",
        (1.0 - gg_sites) * 100.0,
        (1.0 - gg_tracks) * 100.0
    );
    println!(
        "paper shape reference — remaining sites: ICAS 10.7 %, BISA 1.6 %, Ba 6 %, GDSII-Guard 1.3 %"
    );
}
