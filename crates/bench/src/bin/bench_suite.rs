//! The full benchmark-matrix harness: runs the explore schedule over
//! every design in the paper's Table II (plus one `@xN`-scaled 100k+-cell
//! stress design) and lands one row per design in `BENCH_suite.json` at
//! the workspace root — wall clocks, evals/sec, incremental-replay
//! speedup, Pareto hypervolume, security/timing deltas against the
//! design's own baseline, the engine's memory-footprint gauges, and the
//! process peak RSS. Where `bench_explore` tracks one design deeply, this
//! harness tracks the whole matrix broadly so scaling regressions show up
//! per design size.
//!
//! Flags:
//! - `--design NAME` runs a single design (any roster name, including
//!   scaled `NAME@xN` forms) instead of the matrix.
//! - `--pop N` / `--gens N` / `--seed N` / `--threads N` override the
//!   per-design explore schedule (defaults 8/3, seed shared with the
//!   other benches).
//! - `--smoke` runs only Camellia and openMSP430_1 on a reduced schedule,
//!   asserts the wall and peak-RSS budgets, and writes no JSON — the CI
//!   gate.
//!
//! Designs above [`BIG_DESIGN_CELLS`] cells run a reduced schedule and
//! replay only the first [`BIG_REPLAY_CAP`] schedule points through the
//! full/incremental comparison (a full from-scratch re-implementation of
//! a 100k-cell chip costs tens of seconds; the cap keeps the matrix under
//! control). The row's `population`/`generations`/`replay_points` fields
//! record exactly what ran — no silent caps.

use std::time::Instant;

use gdsii_guard::prelude::*;
use gg_bench::driver::GG_GA_PARAMS;
use netlist::bench::DesignSpec;
use tech::Technology;

/// Cell count past which a design is "big": reduced schedule, capped
/// replay.
const BIG_DESIGN_CELLS: usize = 50_000;
/// Schedule points replayed through both evaluation paths on big designs.
const BIG_REPLAY_CAP: usize = 4;
/// The scaled stress design appended to the matrix: 7 × AES_2 = 112k
/// cells, comfortably past the 100k bar.
const SCALED_DESIGN: &str = "AES_2@x7";

/// Smoke budgets (also asserted for the scaled design in a full matrix
/// run): the reduced two-design smoke must finish inside this wall, and
/// the process peak RSS must stay under this byte budget.
const SMOKE_WALL_BUDGET_SECS: f64 = 120.0;
const SMOKE_PEAK_RSS_BUDGET_BYTES: u64 = 1 << 30; // 1 GiB

#[derive(Debug, Clone)]
struct SuiteRow {
    design: String,
    cells: u64,
    population: u64,
    generations: u64,
    evaluations: u64,
    baseline_wall_secs: f64,
    explore_wall_secs: f64,
    evals_per_sec: f64,
    replay_points: u64,
    replay_full_wall_secs: f64,
    replay_incremental_wall_secs: f64,
    replay_speedup: f64,
    front_size: u64,
    hypervolume: f64,
    best_security: f64,
    security_delta: f64,
    base_tns_ps: f64,
    front_tns_ps: f64,
    tns_delta_ps: f64,
    occupancy_bytes: u64,
    route_planes_bytes: u64,
    eval_cache_bytes: u64,
    peak_rss_bytes: u64,
}

ggjson::json_struct!(SuiteRow {
    design,
    cells,
    population,
    generations,
    evaluations,
    baseline_wall_secs,
    explore_wall_secs,
    evals_per_sec,
    replay_points,
    replay_full_wall_secs,
    replay_incremental_wall_secs,
    replay_speedup,
    front_size,
    hypervolume,
    best_security,
    security_delta,
    base_tns_ps,
    front_tns_ps,
    tns_delta_ps,
    occupancy_bytes,
    route_planes_bytes,
    eval_cache_bytes,
    peak_rss_bytes
});

/// The process high-water resident set in bytes, from
/// `/proc/self/status` (`VmHWM`). 0 where procfs is unavailable. The
/// kernel counter is monotone for the process lifetime, so per-row values
/// are cumulative peaks — the increase over the previous row is what the
/// row's design added.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Replays `points` serially through `eval`, returning wall seconds.
/// Serial on purpose: one worker keeps the thread-local scratch warm and
/// makes the full-vs-incremental walls comparable across machines with
/// different core counts.
fn replay_wall(points: &[&EvalPoint], eval: impl Fn(&EvalPoint) -> FlowMetrics) -> f64 {
    let t0 = Instant::now();
    for p in points {
        std::hint::black_box(eval(p));
    }
    t0.elapsed().as_secs_f64()
}

/// Runs one design through baseline + explore + replay comparison and
/// fills its suite row.
fn run_design(spec: &DesignSpec, tech: &Technology, params: &Nsga2Params) -> SuiteRow {
    let big = spec.target_cells > BIG_DESIGN_CELLS;
    let params = if big {
        Nsga2Params {
            population: params.population.min(4),
            generations: params.generations.min(1),
            ..*params
        }
    } else {
        *params
    };

    gdsii_guard::obs::reset();
    gdsii_guard::obs::set_enabled(true);

    let t0 = Instant::now();
    let base = implement_baseline_unchecked(spec, tech);
    let baseline_wall_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let result = explore(&base, tech, &params);
    let explore_wall_secs = t0.elapsed().as_secs_f64();
    let telemetry = gdsii_guard::obs::snapshot();
    gdsii_guard::obs::set_enabled(false);

    let evaluations = result.points.len() as u64;

    // Replay comparison: the same schedule points through the
    // from-scratch path and a fresh incremental engine, telemetry off.
    // Big designs replay a capped prefix (recorded in `replay_points`).
    let points: Vec<&EvalPoint> = result
        .points
        .iter()
        .take(if big { BIG_REPLAY_CAP } else { usize::MAX })
        .collect();
    let engine = EvalEngine::new(&base, tech);
    engine.reset_metrics_memo();
    let replay_incremental_wall_secs = replay_wall(&points, |p| {
        FlowRun::new(engine.base(), tech, &p.config)
            .engine(&engine)
            .seed(p.genome.flow_seed())
            .unchecked()
            .metrics()
    });
    let replay_full_wall_secs = replay_wall(&points, |p| {
        FlowRun::new(&base, tech, &p.config)
            .seed(p.genome.flow_seed())
            .unchecked()
            .metrics()
    });

    // Front quality: hypervolume against the run's own nadir reference,
    // plus the security-best front point's deltas vs the baseline (whose
    // normalized security is 1.0 by construction).
    let front = result.pareto_front();
    let hypervolume = result
        .nadir_reference()
        .map_or(0.0, |r| result.hypervolume(r));
    let best = front
        .iter()
        .min_by(|a, b| a.metrics.security.total_cmp(&b.metrics.security));
    let best_security = best.map_or(1.0, |p| p.metrics.security);
    let front_tns_ps = best.map_or(result.base_tns_ps, |p| p.metrics.tns_ps);

    let gauge = |name: &str| telemetry.gauge(name).unwrap_or(0.0) as u64;
    SuiteRow {
        design: spec.name.to_string(),
        cells: spec.target_cells as u64,
        population: params.population as u64,
        generations: params.generations as u64,
        evaluations,
        baseline_wall_secs,
        explore_wall_secs,
        evals_per_sec: evaluations as f64 / explore_wall_secs.max(1e-9),
        replay_points: points.len() as u64,
        replay_full_wall_secs,
        replay_incremental_wall_secs,
        replay_speedup: replay_full_wall_secs / replay_incremental_wall_secs.max(1e-9),
        front_size: front.len() as u64,
        hypervolume,
        best_security,
        security_delta: 1.0 - best_security,
        base_tns_ps: result.base_tns_ps,
        front_tns_ps,
        tns_delta_ps: front_tns_ps - result.base_tns_ps,
        occupancy_bytes: gauge("mem.occupancy_bytes"),
        route_planes_bytes: gauge("mem.route_planes_bytes"),
        eval_cache_bytes: gauge("eval.cache_bytes"),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn print_row(r: &SuiteRow) {
    println!(
        "{:<12} {:>7} cells  base {:>7.2}s  explore {:>7.2}s ({:>6.1} ev/s)  \
         replay x{:<5.1} hv {:>9.3}  sec {:.3}  peak {:>4} MiB",
        r.design,
        r.cells,
        r.baseline_wall_secs,
        r.explore_wall_secs,
        r.evals_per_sec,
        r.replay_speedup,
        r.hypervolume,
        r.best_security,
        r.peak_rss_bytes >> 20,
    );
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let v = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    v.parse().ok().or_else(|| {
        eprintln!("{flag}: cannot parse '{v}'");
        std::process::exit(2);
    })
}

fn resolve_or_die(name: &str) -> DesignSpec {
    gdsii_guard::serve::baseline::resolve_spec(name).unwrap_or_else(|| {
        eprintln!(
            "unknown design '{name}'; known designs: {}",
            gdsii_guard::serve::baseline::known_designs()
        );
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tech = Technology::nangate45_like();
    let params = Nsga2Params::builder()
        .population(flag_value(&args, "--pop").unwrap_or(8))
        .generations(flag_value(&args, "--gens").unwrap_or(3))
        .seed(flag_value(&args, "--seed").unwrap_or(GG_GA_PARAMS.seed))
        .threads(flag_value(&args, "--threads").unwrap_or(0))
        .build();

    let specs: Vec<DesignSpec> = if smoke {
        vec![resolve_or_die("Camellia"), resolve_or_die("openMSP430_1")]
    } else if let Some(name) = flag_value::<String>(&args, "--design") {
        vec![resolve_or_die(&name)]
    } else {
        let mut all = netlist::bench::all_specs();
        all.push(resolve_or_die(SCALED_DESIGN));
        all
    };

    let params = if smoke {
        Nsga2Params {
            population: 4,
            generations: 2,
            ..params
        }
    } else {
        params
    };

    let suite_t0 = Instant::now();
    let mut rows = Vec::with_capacity(specs.len());
    for spec in &specs {
        let row = run_design(spec, &tech, &params);
        print_row(&row);
        // The scaled stress design must stay inside the smoke memory
        // budget — the whole point of the memory-lean data structures.
        if spec.target_cells > 100_000 {
            assert!(
                row.peak_rss_bytes < SMOKE_PEAK_RSS_BUDGET_BYTES,
                "{}: peak RSS {} exceeds the {} byte budget",
                spec.name,
                row.peak_rss_bytes,
                SMOKE_PEAK_RSS_BUDGET_BYTES
            );
        }
        rows.push(row);
    }
    let suite_wall_secs = suite_t0.elapsed().as_secs_f64();

    if smoke {
        let peak = peak_rss_bytes();
        println!(
            "smoke: {} designs in {suite_wall_secs:.2}s (budget {SMOKE_WALL_BUDGET_SECS}s), \
             peak RSS {} MiB (budget {} MiB)",
            rows.len(),
            peak >> 20,
            SMOKE_PEAK_RSS_BUDGET_BYTES >> 20,
        );
        assert!(
            suite_wall_secs < SMOKE_WALL_BUDGET_SECS,
            "smoke wall {suite_wall_secs:.2}s exceeds the {SMOKE_WALL_BUDGET_SECS}s budget"
        );
        assert!(
            peak != 0 && peak < SMOKE_PEAK_RSS_BUDGET_BYTES,
            "smoke peak RSS {peak} outside the {SMOKE_PEAK_RSS_BUDGET_BYTES} byte budget"
        );
        for r in &rows {
            assert!(
                r.replay_speedup > 1.0,
                "{}: incremental replay slower than full ({:.2}x)",
                r.design,
                r.replay_speedup
            );
        }
        println!("smoke: OK (wall and memory within budget, incremental replay faster)");
        return;
    }

    let j = ggjson::Json::Obj(vec![
        (
            "threads".into(),
            ggjson::Json::Num(params.resolved_threads() as f64),
        ),
        ("suite_wall_secs".into(), ggjson::Json::Num(suite_wall_secs)),
        (
            "designs".into(),
            ggjson::Json::Arr(rows.iter().map(ggjson::ToJson::to_json).collect()),
        ),
    ]);

    // Workspace root: crates/bench/ -> repo root.
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    let out = out.join("BENCH_suite.json");
    std::fs::write(&out, ggjson::to_vec_pretty(&j)).expect("write BENCH_suite.json");
    println!(
        "suite: {} designs in {suite_wall_secs:.2}s; wrote {}",
        rows.len(),
        out.display()
    );
}
