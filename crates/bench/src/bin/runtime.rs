//! **EXP-RT** — regenerates the §IV-D runtime comparison: wall-clock time
//! each defense takes to harden AES_2, the largest benchmark.
//!
//! The paper reports 9.4 h (ICAS), 6.5 h (BISA), 7.0 h (Ba), 4.8 h
//! (GDSII-Guard) on their commercial-tool testbed; only the *ordering and
//! ratios* are expected to transfer to this self-contained substrate.

use gg_bench::driver::evaluate_design_cached;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("AES_2").expect("AES_2 exists");
    let rows = evaluate_design_cached(&spec, &tech);
    println!(
        "§IV-D — optimization runtime on {} ({} cells)\n",
        spec.name, spec.target_cells
    );
    println!("{:<13} {:>10} {:>12}", "defense", "seconds", "vs GDSII-G");
    let gg = rows
        .iter()
        .find(|m| m.defense == "GDSII-Guard")
        .expect("GG row")
        .wall_secs;
    for m in rows.iter().filter(|m| m.defense != "Original") {
        println!(
            "{:<13} {:>10.2} {:>11.2}x",
            m.defense,
            m.wall_secs,
            m.wall_secs / gg
        );
    }
    println!(
        "\npaper reference (hours): ICAS 9.4, BISA 6.5, Ba 7.0, GDSII-Guard 4.8 \
         → ratios 1.96x / 1.35x / 1.46x / 1.00x"
    );
    println!(
        "note: ICAS re-runs full P&R per density candidate; BISA/Ba pay fill \
         synthesis + congested routing; GDSII-Guard runs incremental ECO operators."
    );
}
