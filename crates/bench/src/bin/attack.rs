//! **EXP-ATK** — Trojan-insertion validation: runs the A2-style attack
//! battery against the baseline and every hardened layout, closing the
//! loop on the exploitable-region metrics (a layout with no qualifying
//! region must defeat the insertion attempt).

use gg_bench::driver::evaluate_design_cached;
use tech::Technology;

const ROWS: [&str; 5] = ["Original", "ICAS", "BISA", "Ba", "GDSII-Guard"];

fn main() {
    let tech = Technology::nangate45_like();
    let specs = netlist::bench::all_specs();
    println!("Trojan battery success rate (a2-analog / a2-digital / privilege-escalation)\n");
    print!("{:<14}", "design");
    for d in ROWS {
        print!(" {:>12}", d);
    }
    println!();
    let mut avg = [0.0f64; 5];
    for spec in &specs {
        let rows = evaluate_design_cached(spec, &tech);
        print!("{:<14}", spec.name);
        for (i, d) in ROWS.iter().enumerate() {
            let m = rows.iter().find(|m| m.defense == *d).expect("sweep");
            avg[i] += m.attack_success;
            print!(" {:>11.0}%", m.attack_success * 100.0);
        }
        println!();
    }
    println!("{:-<80}", "");
    print!("{:<14}", "average");
    for a in avg {
        print!(" {:>11.0}%", a / specs.len() as f64 * 100.0);
    }
    println!();
    println!(
        "\nexpected shape: Original highly attackable; GDSII-Guard and BISA defeat \
              (nearly) the whole battery; ICAS/Ba in between."
    );
}
