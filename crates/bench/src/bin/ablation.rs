//! Design-choice ablations flagged in DESIGN.md §4:
//!
//! 1. CS vs LDA on loose- vs tight-timing designs (§III-B's operator
//!    pairing claim).
//! 2. RWS on/off: the extra free-track reduction beyond placement.
//! 3. NSGA-II vs random search at the same evaluation budget.
//! 4. `Thresh_ER` sensitivity of the ERsites metric.

use gdsii_guard::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();

    println!("=== Ablation 1: operator pairing (CS vs LDA) ===");
    println!(
        "{:<14} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
        "design", "timing", "CS sec", "CS ΔTNS", "LDA sec", "LDA ΔTNS"
    );
    for name in ["Camellia", "MISTY", "CAST", "openMSP430_2"] {
        let spec = netlist::bench::spec_by_name(name).expect("known");
        let base = implement_baseline(&spec, &tech).unwrap();
        let cs = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
            .unchecked()
            .metrics();
        let lda = FlowRun::new(
            &base,
            &tech,
            &FlowConfig {
                op: OpSelect::Lda { n: 8, n_iter: 2 },
                scales: [1.0; 10],
            },
        )
        .unchecked()
        .metrics();
        let timing = if spec.period_factor > 1.0 {
            "loose"
        } else {
            "tight"
        };
        println!(
            "{:<14} {:>7} | {:>9.3} {:>9.0} | {:>9.3} {:>9.0}",
            name,
            timing,
            cs.security,
            cs.tns_ps - base.tns_ps(),
            lda.security,
            lda.tns_ps - base.tns_ps()
        );
    }

    println!("\n=== Ablation 2: Routing Width Scaling on/off (MISTY, CS placement) ===");
    let spec = netlist::bench::spec_by_name("MISTY").expect("known");
    let base = implement_baseline(&spec, &tech).unwrap();
    let plain = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .metrics();
    let mut cfg = FlowConfig::cell_shift_default();
    cfg.scales = [1.0, 1.5, 1.5, 1.5, 1.5, 1.5, 1.2, 1.2, 1.2, 1.2];
    let rws = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
    println!(
        "RWS off: sites {:>6} tracks {:>8.0} tns {:>7.0}",
        plain.er_sites, plain.er_tracks, plain.tns_ps
    );
    println!(
        "RWS on : sites {:>6} tracks {:>8.0} tns {:>7.0}",
        rws.er_sites, rws.er_tracks, rws.tns_ps
    );
    println!(
        "tracks reduced a further {:.1} % at equal placement (paper: ~15 % extra)",
        (1.0 - rws.er_tracks / plain.er_tracks.max(1e-9)) * 100.0
    );

    println!("\n=== Ablation 3: NSGA-II vs random search (PRESENT, equal budget) ===");
    let spec = netlist::bench::spec_by_name("PRESENT").expect("known");
    let base = implement_baseline(&spec, &tech).unwrap();
    let params = Nsga2Params {
        population: 10,
        generations: 3,
        threads: 8,
        ..Nsga2Params::default()
    };
    let ga = explore(&base, &tech, &params);
    let budget = ga.points.len();
    let mut rng = StdRng::seed_from_u64(0x4A2D);
    let mut random_best = f64::INFINITY;
    let mut random_feasible = 0usize;
    for _ in 0..budget {
        let g = Genome::random(&mut rng);
        let m = FlowRun::new(&base, &tech, &g.to_config())
            .seed(7)
            .unchecked()
            .metrics();
        if m.feasible(base.power_mw(), base.drc) {
            random_feasible += 1;
            random_best = random_best.min(m.security);
        }
    }
    let ga_best = ga
        .pareto_front()
        .iter()
        .map(|p| p.metrics.security)
        .fold(f64::INFINITY, f64::min);
    println!(
        "budget {budget} evaluations — best security: NSGA-II {ga_best:.3} \
         (front size {}), random {random_best:.3} ({random_feasible} feasible)",
        ga.pareto_front().len()
    );

    println!("\n=== Ablation 4: Thresh_ER sensitivity (SPARX baseline) ===");
    let spec = netlist::bench::spec_by_name("SPARX").expect("known");
    let base = implement_baseline(&spec, &tech).unwrap();
    for thresh in [12u32, 16, 20, 24, 32] {
        let a =
            secmetrics::analyze_regions(&base.layout, &base.routing, &base.timing, &tech, thresh);
        println!(
            "Thresh_ER {:>3}: {:>6} sites in {:>4} regions",
            thresh,
            a.er_sites,
            a.regions.len()
        );
    }
}
