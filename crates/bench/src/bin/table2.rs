//! **EXP-T2** — regenerates Table II of the paper: TNS, power, and DRC
//! violation counts for the original design and every defense, across all
//! twelve benchmarks.

use gg_bench::driver::evaluate_design_cached;
use tech::Technology;

const ROWS: [&str; 5] = ["Original", "ICAS", "BISA", "Ba", "GDSII-Guard"];

fn main() {
    let tech = Technology::nangate45_like();
    let specs = netlist::bench::all_specs();
    let all: Vec<(String, Vec<gg_bench::DefenseMetrics>)> = specs
        .iter()
        .map(|s| (s.name.to_string(), evaluate_design_cached(s, &tech)))
        .collect();

    let col = |design: &str, defense: &str| -> &gg_bench::DefenseMetrics {
        all.iter()
            .find(|(n, _)| n == design)
            .and_then(|(_, rows)| rows.iter().find(|m| m.defense == defense))
            .expect("complete sweep")
    };

    for (title, fmt) in [("TNS (ns)", 0usize), ("Power (mW)", 1), ("#DRC", 2)] {
        println!("\nTable II — {title}");
        print!("{:<13}", "");
        for s in &specs {
            print!(" {:>12}", s.name);
        }
        println!();
        for defense in ROWS {
            print!("{:<13}", defense);
            for s in &specs {
                let m = col(s.name, defense);
                match fmt {
                    0 => print!(" {:>12.3}", m.tns_ns),
                    1 => print!(" {:>12.3}", m.power_mw),
                    _ => print!(" {:>12}", m.drc),
                }
            }
            println!();
        }
    }
    println!(
        "\nshape reference (paper): BISA worst TNS/power/DRC, Ba intermediate, \
         ICAS mild, GDSII-Guard closest to the original design"
    );
}
