//! Perf-trajectory harness for the incremental evaluation engine.
//!
//! Runs the fixed-seed fig5-style `explore` of the tiny spec with the
//! telemetry subsystem enabled (capturing per-phase spans and cache
//! counters), then replays the exact evaluation schedule it produced —
//! generation by generation, with the same work-stealing thread pool —
//! through both evaluation paths with telemetry *disabled*: the
//! from-scratch oracle (`run_flow`) and the incremental engine
//! (`run_flow_with`, fresh engine, cold caches). The two replay walls are
//! the honest apples-to-apples comparison the incremental engine is
//! judged on; results, including the telemetry section, land in
//! `BENCH_explore.json` at the workspace root so future changes can track
//! the perf curve.
//!
//! Flags:
//! - `--verbose` prints the rendered span/metric tree of the instrumented
//!   explore run.
//! - `--smoke` runs a small exploration twice — telemetry enabled and
//!   disabled — checks the two produce bit-identical results, prints the
//!   wall-clock delta, asserts the enabled overhead stays under 5 %,
//!   asserts the incremental STA actually took its clean-hit/frontier
//!   fast paths, re-runs with the routing thread bound at 1 and 4 to pin
//!   serial-vs-threaded Phase B bit-identity, and finishes with a
//!   kill/resume drill (halt after generation 1, resume from the
//!   checkpoint, demand a bit-identical result). No JSON is written in
//!   smoke mode.
//! - `--resume` continues the instrumented explore run from the last
//!   checkpoint instead of starting over.
//!
//! The instrumented run checkpoints at generation boundaries under the
//! adaptive ~2 % overhead budget (default `results/checkpoint.ggjson`,
//! override with `GG_CHECKPOINT`); the report records the cumulative
//! checkpoint wall as a percentage of the explore wall.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use gdsii_guard::prelude::*;
use gg_bench::cache::results_dir;
use gg_bench::driver::GG_GA_PARAMS;
use tech::Technology;

#[derive(Debug, Clone)]
struct BenchExplore {
    design: String,
    population: u64,
    generations: u64,
    seed: u64,
    threads: u64,
    route_threads: u64,
    evaluations: u64,
    explore_wall_secs: f64,
    evals_per_sec: f64,
    full_replay_wall_secs: f64,
    incremental_replay_wall_secs: f64,
    speedup: f64,
    checkpoint_writes: u64,
    checkpoint_write_secs: f64,
    quarantined: u64,
    degraded: u64,
}

ggjson::json_struct!(BenchExplore {
    design,
    population,
    generations,
    seed,
    threads,
    route_threads,
    evaluations,
    explore_wall_secs,
    evals_per_sec,
    full_replay_wall_secs,
    incremental_replay_wall_secs,
    speedup,
    checkpoint_writes,
    checkpoint_write_secs,
    quarantined,
    degraded
});

/// Replays the explore schedule generation by generation: each batch runs
/// on a shared atomic-index work queue across `threads` workers, exactly
/// like `nsga2::evaluate_all` distributes candidates. Returns total wall
/// seconds.
fn replay(
    points: &[&EvalPoint],
    threads: usize,
    eval: impl Fn(&EvalPoint) -> FlowMetrics + Sync,
) -> f64 {
    let max_gen = points.iter().map(|p| p.generation).max().unwrap_or(0);
    let t0 = Instant::now();
    for gen in 0..=max_gen {
        let batch: Vec<&EvalPoint> = points
            .iter()
            .copied()
            .filter(|p| p.generation == gen)
            .collect();
        if batch.is_empty() {
            continue;
        }
        let next = AtomicUsize::new(0);
        let threads = threads.max(1).min(batch.len());
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(p) = batch.get(i) else { break };
            std::hint::black_box(eval(p));
        };
        if threads == 1 {
            // Mirror `nsga2::evaluate_all`: a single worker runs inline so
            // the thread-local maze/STA scratch stays warm across
            // generations instead of being re-allocated per scope thread.
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }
    }
    t0.elapsed().as_secs_f64()
}

/// The curated per-phase walls and cache counters the benchmark tracks,
/// extracted from the instrumented explore run's telemetry snapshot.
/// Span totals are leaf-summed, so worker-thread spans (whose root is the
/// worker, not the enclosing phase) are included. Checkpoint cost lives at
/// the report's top level only — it is bookkeeping, not an eval phase.
fn phase_summary(t: &gdsii_guard::obs::MetricsSnapshot, evaluations: u64) -> ggjson::Json {
    let secs = |leaf: &str| t.span_total_nanos(leaf) as f64 / 1e9;
    let phase_a = secs("route.phase_a") + secs("route.phase_a_patch");
    let phase_b = secs("route.phase_b");
    let inc_sta = secs("sta.incremental");
    let lda = secs("lda.eco_place");
    let eco2 = secs("eco.phase2");
    // Throughput each phase alone would sustain (evaluations divided by
    // that phase's wall): the phase with the smallest number is the one
    // gating overall evals/s. 0 means the phase never ran.
    let per_eval = |wall: f64| {
        ggjson::Json::Num(if wall > 0.0 {
            evaluations as f64 / wall
        } else {
            0.0
        })
    };
    ggjson::Json::Obj(vec![
        (
            "baseline_implement_secs".into(),
            ggjson::Json::Num(secs("baseline.implement")),
        ),
        ("phase_a_route_secs".into(), ggjson::Json::Num(phase_a)),
        ("phase_b_rrr_secs".into(), ggjson::Json::Num(phase_b)),
        ("incremental_sta_secs".into(), ggjson::Json::Num(inc_sta)),
        (
            "nsga2_generation_secs".into(),
            ggjson::Json::Num(secs("nsga2.generation")),
        ),
        ("lda_eco_place_secs".into(), ggjson::Json::Num(lda)),
        ("eco_phase2_secs".into(), ggjson::Json::Num(eco2)),
        (
            "evals_per_sec".into(),
            ggjson::Json::Obj(vec![
                ("phase_a_route".into(), per_eval(phase_a)),
                ("phase_b_rrr".into(), per_eval(phase_b)),
                ("incremental_sta".into(), per_eval(inc_sta)),
                ("lda_eco_place".into(), per_eval(lda)),
                ("eco_phase2".into(), per_eval(eco2)),
            ]),
        ),
        (
            "eco_compaction_fallbacks".into(),
            ggjson::Json::Num(t.counter("eco.compaction_fallbacks") as f64),
        ),
        (
            "eval_cache_hits".into(),
            ggjson::Json::Num(t.counter("eval.cache_hits") as f64),
        ),
        (
            "eval_cache_misses".into(),
            ggjson::Json::Num(t.counter("eval.cache_misses") as f64),
        ),
        (
            "eval_memo_hits".into(),
            ggjson::Json::Num(t.counter("eval.memo_hits") as f64),
        ),
        (
            "sta_clean_hits".into(),
            ggjson::Json::Num(t.counter("sta.clean_hits") as f64),
        ),
        (
            "sta_cone_nets".into(),
            ggjson::Json::Num(t.counter("sta.cone_nets") as f64),
        ),
        (
            "sta_early_exits".into(),
            ggjson::Json::Num(t.counter("sta.early_exits") as f64),
        ),
        // Retired with the dense fallback (PR 6): the counter no longer
        // exists, so this reads 0 — kept so perf-curve tooling diffing
        // successive reports sees the drop instead of a vanished key.
        (
            "sta_cone_fallbacks".into(),
            ggjson::Json::Num(t.counter("sta.cone_fallbacks") as f64),
        ),
        (
            "rrr_rounds".into(),
            ggjson::Json::Num(t.counter("rrr.rounds") as f64),
        ),
        (
            "eval_degraded".into(),
            ggjson::Json::Num(t.counter("eval.degraded") as f64),
        ),
        (
            "eval_quarantined".into(),
            ggjson::Json::Num(t.counter("eval.quarantined") as f64),
        ),
        (
            "faults_injected".into(),
            ggjson::Json::Num(t.counter("faults.injected") as f64),
        ),
    ])
}

/// Smoke mode: telemetry must not perturb results and must stay cheap.
fn smoke() {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::tiny_spec();
    let params = Nsga2Params::builder()
        .population(6)
        .generations(2)
        .seed(GG_GA_PARAMS.seed)
        .threads(4)
        .build();
    const REPS: usize = 3;

    let run = || {
        let base = implement_baseline_unchecked(&spec, &tech);
        explore(&base, &tech, &params)
    };
    let min_wall = |enabled: bool| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..REPS {
            gdsii_guard::obs::reset();
            gdsii_guard::obs::set_enabled(enabled);
            let t0 = Instant::now();
            let r = run();
            let wall = t0.elapsed().as_secs_f64();
            gdsii_guard::obs::set_enabled(false);
            if wall < best {
                best = wall;
            }
            result = Some(r);
        }
        (best, result.expect("REPS >= 1"))
    };

    let (wall_off, off) = min_wall(false);
    let (wall_on, on) = min_wall(true);
    // Registry still holds the last enabled repetition (reset runs at the
    // top of each rep; disabling only stops recording).
    let telemetry = gdsii_guard::obs::snapshot();

    // Telemetry observes; it must never steer. Bit-identical trajectories.
    assert_eq!(
        off.points.len(),
        on.points.len(),
        "evaluation count diverged"
    );
    for (a, b) in off.points.iter().zip(&on.points) {
        assert_eq!(a.genome, b.genome, "genome schedule diverged");
        assert_eq!(a.metrics, b.metrics, "metrics diverged on {:?}", a.genome);
    }

    let delta = (wall_on - wall_off) / wall_off;
    println!(
        "smoke: {} evaluations; wall disabled {wall_off:.3}s vs enabled {wall_on:.3}s \
         ({:+.2} % telemetry overhead)",
        off.points.len(),
        delta * 100.0,
    );
    assert!(
        delta < 0.05,
        "telemetry-enabled wall exceeds the 5 % overhead budget: {:+.2} %",
        delta * 100.0
    );

    // The incremental STA must actually take its fast paths during the
    // smoke exploration — a refactor that silently routes everything
    // through a slow path would leave the bench measuring dead code.
    // Skipped under GG_FAULTS: an armed drill legitimately degrades every
    // incremental evaluation to the full re-eval path.
    if std::env::var_os("GG_FAULTS").is_none() {
        let sta_fast = telemetry.counter("sta.clean_hits") + telemetry.counter("sta.cone_nets");
        assert!(
            sta_fast > 0,
            "incremental STA never took the clean-hit or frontier path during smoke"
        );
        println!(
            "smoke: sta fast paths live ({} clean hits, {} frontier nets, {} early exits)",
            telemetry.counter("sta.clean_hits"),
            telemetry.counter("sta.cone_nets"),
            telemetry.counter("sta.early_exits"),
        );
    }

    // Region-parallel Phase B must be bit-identical at any routing thread
    // bound — serial vs threaded rip-up-and-reroute may not steer results.
    let with_route_threads = |n: usize| {
        route::set_parallelism(n);
        let r = run();
        route::set_parallelism(0);
        r
    };
    let serial = with_route_threads(1);
    let threaded = with_route_threads(4);
    assert_eq!(
        ggjson::to_string_pretty(&serial),
        ggjson::to_string_pretty(&threaded),
        "region-parallel Phase B diverged from the serial router"
    );
    println!("smoke: route threads 1 vs 4 bit-identical");

    // Regression gate on the gap-indexed legalizer: eco.phase2 across the
    // whole smoke exploration must stay within budget. The index-backed
    // kernel clocks ~1 ms here; the pre-index linear-scan legalizer ran
    // two orders of magnitude hotter, so backsliding fails the build.
    let eco_phase2_secs = telemetry.span_total_nanos("eco.phase2") as f64 / 1e9;
    const ECO_PHASE2_BUDGET_SECS: f64 = 0.120;
    println!("smoke: eco.phase2 total {eco_phase2_secs:.4}s (budget {ECO_PHASE2_BUDGET_SECS}s)");
    assert!(
        eco_phase2_secs > 0.0,
        "smoke exploration never entered eco.phase2 — budget gate is vacuous"
    );
    assert!(
        eco_phase2_secs < ECO_PHASE2_BUDGET_SECS,
        "eco.phase2 wall {eco_phase2_secs:.4}s exceeds the {ECO_PHASE2_BUDGET_SECS}s smoke budget"
    );

    // Kill/resume drill: halt right after generation 1's checkpoint lands
    // (the state a SIGKILL between generations leaves behind), resume from
    // disk, and demand the exact trajectory of the uninterrupted run.
    let dir = std::env::temp_dir().join(format!("gg-bench-smoke-{}", std::process::id()));
    let ckpt = dir.join("checkpoint.ggjson");
    let base = implement_baseline_unchecked(&spec, &tech);
    explore_with(
        &base,
        &tech,
        &params,
        &ExploreOptions {
            checkpoint: Some(ckpt.clone()),
            halt_after: Some(1),
            ..ExploreOptions::default()
        },
    )
    .expect("interrupted smoke run");
    let resumed = explore_with(
        &base,
        &tech,
        &params,
        &ExploreOptions {
            checkpoint: Some(ckpt),
            resume: true,
            ..ExploreOptions::default()
        },
    )
    .expect("resumed smoke run");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        ggjson::to_string_pretty(&off),
        ggjson::to_string_pretty(&resumed),
        "kill/resume cycle diverged from the uninterrupted run"
    );
    println!("smoke: kill/resume cycle bit-identical");

    // Journal overhead drill: run the same tiny explore through an
    // in-process job server with the durable WAL enabled and demand the
    // cumulative append wall (`journal.write_secs`) stays under 2 % of
    // the explore wall — crash-safety must be nearly free.
    {
        use gdsii_guard::serve::{JobSpec, Server, ServerConfig};
        // Best-of-REPS like the telemetry gate: a single rep's ~16 ms
        // wall is noise-dominated on a shared box.
        let mut best_frac = f64::INFINITY;
        let mut best_line = String::new();
        for rep in 0..REPS {
            let jdir =
                std::env::temp_dir().join(format!("gg-bench-journal-{}-{rep}", std::process::id()));
            let _ = std::fs::remove_dir_all(&jdir);
            gdsii_guard::obs::reset();
            gdsii_guard::obs::set_enabled(true);
            let server = Server::start(ServerConfig {
                socket: None,
                data_dir: Some(jdir.join("data")),
                journal_dir: Some(jdir.join("journal")),
                runners: 0,
                ..ServerConfig::default()
            })
            .expect("journal smoke server");
            let mut spec = JobSpec::explore("TINY");
            spec.population = 6;
            spec.generations = 2;
            server.submit(spec).expect("submit journaled explore");
            // The submit append carries the journal's one fsync per job —
            // a constant admission cost, not explore overhead. The 2 %
            // budget gates the *per-generation* appends, so measure the
            // gauge delta across the explore itself.
            let before = gdsii_guard::obs::snapshot();
            let secs0 = before.gauge("journal.write_secs").unwrap_or(0.0);
            let t0 = Instant::now();
            server.run_until_idle();
            let journal_wall = t0.elapsed().as_secs_f64();
            gdsii_guard::obs::set_enabled(false);
            let t = gdsii_guard::obs::snapshot();
            let journal_secs = t.gauge("journal.write_secs").unwrap_or(0.0) - secs0;
            let journal_writes = t.counter("journal.writes") - before.counter("journal.writes");
            assert!(
                journal_writes > 0,
                "journaled explore never appended — overhead gate is vacuous"
            );
            let frac = journal_secs / journal_wall;
            if frac < best_frac {
                best_frac = frac;
                best_line = format!(
                    "smoke: journal overhead {:.3} % ({journal_writes} explore-phase \
                     appends, {journal_secs:.4}s of {journal_wall:.3}s explore wall; \
                     {:.4}s total incl. the per-job submit fsync)",
                    frac * 100.0,
                    t.gauge("journal.write_secs").unwrap_or(0.0),
                );
            }
            server.stop();
            let _ = std::fs::remove_dir_all(&jdir);
        }
        println!("{best_line}");
        assert!(
            best_frac < 0.02,
            "journal append wall is {:.2} % of the explore wall in the best of \
             {REPS} reps (budget 2 %)",
            best_frac * 100.0
        );
    }
    println!("smoke: OK (results bit-identical, overhead within budget)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let verbose = args.iter().any(|a| a == "--verbose");
    let resume = args.iter().any(|a| a == "--resume");
    let tech = Technology::nangate45_like();
    // `--design NAME` swaps the benchmark subject (default TINY); names
    // resolve through the serve roster, so scaled `NAME@xN` forms work and
    // a typo dies here with the full roster instead of deep in the run.
    let spec = match args.iter().position(|a| a == "--design") {
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--design needs a value");
                std::process::exit(2);
            });
            gdsii_guard::serve::baseline::resolve_spec(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown design '{name}'; known designs: {}",
                    gdsii_guard::serve::baseline::known_designs()
                );
                std::process::exit(2);
            })
        }
        None => netlist::bench::tiny_spec(),
    };

    // Instrumented pass: baseline + exploration with telemetry on. The
    // smoke mode (and the telemetry_regression test) pin down that the
    // enabled path stays cheap and observation-only, so the explore wall
    // below is still representative. Every generation checkpoints to the
    // results dir (or GG_CHECKPOINT) so `--resume` can continue a killed
    // run.
    let mut opts = ExploreOptions::from_env();
    if opts.checkpoint.is_none() {
        opts.checkpoint = Some(results_dir().join("checkpoint.ggjson"));
    }
    opts.resume = resume;

    gdsii_guard::obs::reset();
    gdsii_guard::obs::set_enabled(true);
    let base = implement_baseline(&spec, &tech).expect("baseline implements cleanly");

    let t0 = Instant::now();
    let result = explore_with(&base, &tech, &GG_GA_PARAMS, &opts).expect("explore run");
    let explore_wall_secs = t0.elapsed().as_secs_f64();
    let telemetry = gdsii_guard::obs::snapshot();
    gdsii_guard::obs::set_enabled(false);

    let evaluations = result.points.len() as u64;
    let points: Vec<&EvalPoint> = result.points.iter().collect();
    let threads = GG_GA_PARAMS.resolved_threads();

    if verbose {
        println!("telemetry of the instrumented explore run:");
        println!("{}", telemetry.render());
        // Peak-memory gauges published by the eval engine: resident bytes
        // of the baseline's occupancy/routing structures plus the
        // byte-accounted eval-cache footprint (see GG_EVAL_CACHE_BYTES).
        for g in [
            "mem.occupancy_bytes",
            "mem.route_planes_bytes",
            "eval.cache_bytes",
        ] {
            println!("mem: {g} = {:.0}", telemetry.gauge(g).unwrap_or(0.0));
        }
    }

    // The replays distribute candidates exactly like `nsga2::evaluate_all`,
    // including its per-worker routing-thread budget — telemetry disabled,
    // so the walls measure the evaluation paths alone.
    let route_threads = route::budget_for_workers(threads);
    route::set_parallelism(route_threads);

    // Wall clocks on a shared box are scheduler-noisy, so each replay runs
    // `REPS` times and the minimum wall (the least-interference repetition)
    // is recorded.
    const REPS: usize = 3;
    let measure = |eval: &(dyn Fn(&EvalPoint) -> FlowMetrics + Sync)| {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            best = best.min(replay(&points, threads, eval));
        }
        best
    };

    // Incremental path: fresh engine, cold caches on the first repetition,
    // identical schedule. The evaluation-metrics memo is dropped before
    // every repetition so each one honestly replays the schedule's
    // within-run duplicate structure — the recorded minimum is a min over
    // real replays, never over warm memo lookups from a prior repetition.
    //
    // Measured before the full replay on purpose: the full path's ~5k
    // from-scratch implementations churn the allocator enough that an
    // identical eval loop run afterwards measures 15-25% slower, and the
    // incremental path's production environment is right after the
    // instrumented explore, not after a full-replay burst. The full
    // baseline runs second and inherits only the incremental replay's
    // (engine-cached, Arc-shared) far smaller footprint.
    let engine = EvalEngine::new(&base, &tech);
    let incremental_replay_wall_secs = {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            engine.reset_metrics_memo();
            let eval = |p: &EvalPoint| {
                FlowRun::new(engine.base(), &tech, &p.config)
                    .engine(&engine)
                    .seed(p.genome.flow_seed())
                    .unchecked()
                    .metrics()
            };
            best = best.min(replay(&points, threads, eval));
        }
        best
    };

    // Full-evaluate path: every candidate re-implements the chip.
    let full_replay_wall_secs = measure(&|p: &EvalPoint| {
        FlowRun::new(&base, &tech, &p.config)
            .seed(p.genome.flow_seed())
            .unchecked()
            .metrics()
    });
    route::set_parallelism(0);

    // The replays must agree with the recorded metrics — a corrupted
    // benchmark is worse than a slow one.
    let check: Vec<FlowMetrics> = points
        .iter()
        .map(|p| {
            FlowRun::new(engine.base(), &tech, &p.config)
                .engine(&engine)
                .seed(p.genome.flow_seed())
                .unchecked()
                .metrics()
        })
        .collect();
    for (p, m) in points.iter().zip(&check) {
        // Quarantined candidates carry penalty metrics by construction, so
        // a healthy replay of the same genome legitimately disagrees.
        if result.quarantined.iter().any(|q| q.genome == p.genome) {
            continue;
        }
        assert_eq!(p.metrics, *m, "engine replay diverged on {:?}", p.genome);
    }

    let checkpoint_write_secs = telemetry.gauge("checkpoint.write_secs").unwrap_or(0.0);
    let report = BenchExplore {
        design: spec.name.to_string(),
        population: GG_GA_PARAMS.population as u64,
        generations: GG_GA_PARAMS.generations as u64,
        seed: GG_GA_PARAMS.seed,
        threads: threads as u64,
        route_threads: route_threads as u64,
        evaluations,
        explore_wall_secs,
        evals_per_sec: evaluations as f64 / explore_wall_secs,
        full_replay_wall_secs,
        incremental_replay_wall_secs,
        speedup: full_replay_wall_secs / incremental_replay_wall_secs,
        checkpoint_writes: telemetry.counter("checkpoint.writes"),
        checkpoint_write_secs,
        quarantined: result.quarantined.len() as u64,
        degraded: telemetry.counter("eval.degraded"),
    };

    // Merge the telemetry section into the report: a curated per-phase
    // summary plus the raw snapshot (counters, gauges, histograms, spans).
    let mut j = ggjson::ToJson::to_json(&report);
    if let ggjson::Json::Obj(fields) = &mut j {
        fields.push(("phases".into(), phase_summary(&telemetry, evaluations)));
        fields.push((
            "telemetry".into(),
            ggjson::parse(&telemetry.to_json()).expect("obs snapshot JSON parses"),
        ));
    }

    // Workspace root: crates/bench/ -> repo root.
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    let out = out.join("BENCH_explore.json");
    std::fs::write(&out, ggjson::to_vec_pretty(&j)).expect("write BENCH_explore.json");
    println!(
        "explore: {:.3}s for {} evaluations ({:.1} evals/s)",
        report.explore_wall_secs, report.evaluations, report.evals_per_sec
    );
    println!(
        "replay ({} candidates, {} threads): full {:.3}s vs incremental {:.3}s — {:.2}x speedup",
        evaluations, threads, full_replay_wall_secs, incremental_replay_wall_secs, report.speedup
    );
    println!(
        "checkpoints: {} writes, {:.4}s total ({:.2} % of the explore wall); \
         {} degraded, {} quarantined",
        report.checkpoint_writes,
        checkpoint_write_secs,
        100.0 * checkpoint_write_secs / explore_wall_secs.max(1e-9),
        report.degraded,
        report.quarantined,
    );
    println!("wrote {}", out.display());
}
