//! Perf-trajectory harness for the incremental evaluation engine.
//!
//! Runs the fixed-seed fig5-style `explore` of the tiny spec, then replays
//! the exact evaluation schedule it produced — generation by generation,
//! with the same work-stealing thread pool — through both evaluation
//! paths: the from-scratch oracle (`run_flow`) and the incremental engine
//! (`run_flow_with`, fresh engine, cold caches). The two replay walls are
//! the honest apples-to-apples comparison the incremental engine is
//! judged on; results land in `BENCH_explore.json` at the workspace root
//! so future changes can track the perf curve.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use gdsii_guard::flow::FlowMetrics;
use gdsii_guard::nsga2::{explore, EvalPoint};
use gdsii_guard::pipeline::{implement_baseline, EvalEngine};
use gg_bench::driver::GG_GA_PARAMS;
use tech::Technology;

#[derive(Debug, Clone)]
struct BenchExplore {
    design: String,
    population: u64,
    generations: u64,
    seed: u64,
    threads: u64,
    route_threads: u64,
    evaluations: u64,
    explore_wall_secs: f64,
    evals_per_sec: f64,
    full_replay_wall_secs: f64,
    incremental_replay_wall_secs: f64,
    phase_b_wall_secs: f64,
    speedup: f64,
}

ggjson::json_struct!(BenchExplore {
    design,
    population,
    generations,
    seed,
    threads,
    route_threads,
    evaluations,
    explore_wall_secs,
    evals_per_sec,
    full_replay_wall_secs,
    incremental_replay_wall_secs,
    phase_b_wall_secs,
    speedup
});

/// Replays the explore schedule generation by generation: each batch runs
/// on a shared atomic-index work queue across `threads` workers, exactly
/// like `nsga2::evaluate_all` distributes candidates. Returns total wall
/// seconds.
fn replay(
    points: &[&EvalPoint],
    threads: usize,
    eval: impl Fn(&EvalPoint) -> FlowMetrics + Sync,
) -> f64 {
    let max_gen = points.iter().map(|p| p.generation).max().unwrap_or(0);
    let t0 = Instant::now();
    for gen in 0..=max_gen {
        let batch: Vec<&EvalPoint> = points
            .iter()
            .copied()
            .filter(|p| p.generation == gen)
            .collect();
        if batch.is_empty() {
            continue;
        }
        let next = AtomicUsize::new(0);
        let threads = threads.max(1).min(batch.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = batch.get(i) else { break };
                    std::hint::black_box(eval(p));
                });
            }
        });
    }
    t0.elapsed().as_secs_f64()
}

/// Pretty-prints the drained Phase-B counters of one measured region.
fn report_phase_b(label: &str, t: &route::PhaseBTotals) {
    println!(
        "  {label}: {} finalize calls, {} rounds, {} victims, {} regions, {:.3}s phase-B wall",
        t.calls,
        t.rounds,
        t.victims,
        t.regions,
        t.nanos as f64 / 1e9,
    );
}

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::tiny_spec();
    let base = implement_baseline(&spec, &tech);

    let t0 = Instant::now();
    let result = explore(&base, &tech, &GG_GA_PARAMS);
    let explore_wall_secs = t0.elapsed().as_secs_f64();
    let evaluations = result.points.len() as u64;
    let points: Vec<&EvalPoint> = result.points.iter().collect();
    let threads = GG_GA_PARAMS.threads;

    // The replays distribute candidates exactly like `nsga2::evaluate_all`,
    // including its per-worker routing-thread budget.
    let route_threads = route::budget_for_workers(threads);
    route::set_parallelism(route_threads);
    let explore_totals = route::take_phase_b_totals();

    // Wall clocks on a shared box are scheduler-noisy, so each replay runs
    // `REPS` times and the minimum wall (the least-interference repetition,
    // with its matching Phase-B totals) is recorded.
    const REPS: usize = 3;
    let measure = |eval: &(dyn Fn(&EvalPoint) -> FlowMetrics + Sync)| {
        let mut best: Option<(f64, route::PhaseBTotals)> = None;
        for _ in 0..REPS {
            let wall = replay(&points, threads, eval);
            let totals = route::take_phase_b_totals();
            if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                best = Some((wall, totals));
            }
        }
        best.expect("REPS >= 1")
    };

    // Full-evaluate path: every candidate re-implements the chip.
    let (full_replay_wall_secs, full_totals) = measure(&|p: &EvalPoint| {
        gdsii_guard::flow::run_flow(&base, &tech, &p.config, p.genome.flow_seed())
    });

    // Incremental path: fresh engine, cold caches on the first repetition,
    // identical schedule.
    let engine = EvalEngine::new(&base, &tech);
    let (incremental_replay_wall_secs, incremental_totals) = measure(&|p: &EvalPoint| {
        gdsii_guard::flow::run_flow_with(&engine, &tech, &p.config, p.genome.flow_seed())
    });
    route::set_parallelism(0);

    if verbose {
        println!("phase-B (rip-up-and-reroute) accounting, {route_threads} routing threads:");
        report_phase_b("explore + baselines", &explore_totals);
        report_phase_b("full replay", &full_totals);
        report_phase_b("incremental replay", &incremental_totals);
        // Per-round trajectory of one representative candidate — the
        // first evaluated point whose routing actually entered rip-up
        // rounds — from the structured stats that replaced the old
        // GG_ROUTE_DEBUG trace.
        let representative = result.points.iter().take(64).find_map(|p| {
            let snap = gdsii_guard::flow::apply_flow(&base, &tech, &p.config, p.genome.flow_seed());
            (!snap.routing.stats().rounds.is_empty()).then_some((p, snap))
        });
        if let Some((p, snap)) = representative {
            let stats = snap.routing.stats();
            println!(
                "representative candidate {:?}: {} rounds under {} threads ({:.3}ms phase-B)",
                p.config.op,
                stats.rounds.len(),
                stats.threads,
                stats.wall_nanos as f64 / 1e6,
            );
            for r in &stats.rounds {
                println!(
                    "  round {}: overflow_pairs {} total {:.1} victims {} regions {}{}",
                    r.round,
                    r.overflow_pairs,
                    r.total_overflow,
                    r.victims,
                    r.regions,
                    if r.parallel { " (parallel)" } else { "" },
                );
            }
        }
    }

    // The replays must agree with the recorded metrics — a corrupted
    // benchmark is worse than a slow one.
    let check: Vec<FlowMetrics> = points
        .iter()
        .map(|p| gdsii_guard::flow::run_flow_with(&engine, &tech, &p.config, p.genome.flow_seed()))
        .collect();
    for (p, m) in points.iter().zip(&check) {
        assert_eq!(p.metrics, *m, "engine replay diverged on {:?}", p.genome);
    }

    let report = BenchExplore {
        design: spec.name.to_string(),
        population: GG_GA_PARAMS.population as u64,
        generations: GG_GA_PARAMS.generations as u64,
        seed: GG_GA_PARAMS.seed,
        threads: threads as u64,
        route_threads: route_threads as u64,
        evaluations,
        explore_wall_secs,
        evals_per_sec: evaluations as f64 / explore_wall_secs,
        full_replay_wall_secs,
        incremental_replay_wall_secs,
        phase_b_wall_secs: incremental_totals.nanos as f64 / 1e9,
        speedup: full_replay_wall_secs / incremental_replay_wall_secs,
    };

    // Workspace root: crates/bench/ -> repo root.
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    let out = out.join("BENCH_explore.json");
    std::fs::write(&out, ggjson::to_vec_pretty(&report)).expect("write BENCH_explore.json");
    println!(
        "explore: {:.3}s for {} evaluations ({:.1} evals/s)",
        report.explore_wall_secs, report.evaluations, report.evals_per_sec
    );
    println!(
        "replay ({} candidates, {} threads): full {:.3}s vs incremental {:.3}s — {:.2}x speedup",
        evaluations, threads, full_replay_wall_secs, incremental_replay_wall_secs, report.speedup
    );
    println!("wrote {}", out.display());
}
