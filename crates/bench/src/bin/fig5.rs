//! **EXP-F5** — regenerates Fig. 5 of the paper: the explored search space
//! and Pareto fronts of the GDSII-Guard flow optimizer on AES_1, AES_3,
//! MISTY, and openMSP430_2, rendered as ASCII scatter plots
//! (security vs −TNS, both minimized).

use gdsii_guard::prelude::*;
use gg_bench::driver::GG_GA_PARAMS;
use gg_bench::plot::scatter;
use tech::Technology;

const DESIGNS: [&str; 4] = ["AES_1", "AES_3", "MISTY", "openMSP430_2"];

fn main() {
    let tech = Technology::nangate45_like();
    for name in DESIGNS {
        let spec = netlist::bench::spec_by_name(name).expect("known design");
        let result: ExploreResult =
            gg_bench::cache::load_or_compute(&format!("fig5_{name}"), || {
                let base = implement_baseline(&spec, &tech).unwrap();
                explore(&base, &tech, &GG_GA_PARAMS)
            });
        let explored: Vec<(f64, f64)> = result
            .points
            .iter()
            .map(|p| (p.metrics.security, -p.metrics.tns_ps / 1_000.0))
            .collect();
        let front: Vec<(f64, f64)> = result
            .pareto_front()
            .iter()
            .map(|p| (p.metrics.security, -p.metrics.tns_ps / 1_000.0))
            .collect();
        println!(
            "\n=== Fig. 5 — {name}: explored points ({}) and Pareto front ({}) ===",
            explored.len(),
            front.len()
        );
        print!(
            "{}",
            scatter(
                &[("explored", '.', &explored), ("pareto", '#', &front)],
                64,
                18,
                "Security (normalized, lower=better)",
                "-TNS (ns, lower=better)",
            )
        );
        // Convergence indicator: evaluations per generation that land on
        // the final front (the paper notes growing point density near it).
        let max_gen = result
            .points
            .iter()
            .map(|p| p.generation)
            .max()
            .unwrap_or(0);
        for g in 0..=max_gen {
            let n = result.points.iter().filter(|p| p.generation == g).count();
            let on_front = result
                .pareto_front()
                .iter()
                .filter(|p| p.generation == g)
                .count();
            println!("  generation {g}: {n} new points, {on_front} on the final front");
        }
    }
}
