//! Property suite: the incremental evaluation engine is *bit-identical*
//! to the from-scratch oracle.
//!
//! Two properties cover the two edit surfaces an ECO candidate can touch:
//! random Table-I flow configurations (operator choice plus per-layer
//! width scales), and raw operator sequences — arbitrary legal cell moves
//! followed by an NDR change — compared metric by metric (TNS, power,
//! DRC, ER sites, ER tracks) against [`gdsii_guard::pipeline::evaluate`].

use std::sync::OnceLock;

use gdsii_guard::lda::LdaParams;
use gdsii_guard::prelude::*;
use gdsii_guard::rws;
use netlist::bench;
use netlist::CellId;
use proptest::prelude::*;
use tech::{RouteRule, Technology, NUM_METAL_LAYERS};

/// Baseline and engine are expensive; build them once for every case.
fn fixture() -> &'static (Technology, Snapshot, EvalEngine) {
    static FIXTURE: OnceLock<(Technology, Snapshot, EvalEngine)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let engine = EvalEngine::new(&base, &tech);
        (tech, base, engine)
    })
}

fn assert_snapshots_match(oracle: &Snapshot, inc: &Snapshot) {
    assert_eq!(oracle.tns_ps(), inc.tns_ps(), "TNS diverged");
    assert_eq!(oracle.power, inc.power, "power diverged");
    assert_eq!(oracle.drc, inc.drc, "DRC diverged");
    assert_eq!(
        oracle.security.er_sites, inc.security.er_sites,
        "ER sites diverged"
    );
    assert_eq!(
        oracle.security.er_tracks, inc.security.er_tracks,
        "ER tracks diverged"
    );
    assert_eq!(
        oracle.routing.total_wirelength_um(),
        inc.routing.total_wirelength_um(),
        "wirelength diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_flow_configs_match_oracle(
        pick in 0u8..4,
        n_idx in 0usize..LdaParams::N_CANDIDATES.len(),
        iter_idx in 0usize..LdaParams::ITER_CANDIDATES.len(),
        scale_picks in proptest::collection::vec(
            0usize..RouteRule::CANDIDATES.len(),
            NUM_METAL_LAYERS..NUM_METAL_LAYERS + 1,
        ),
        seed in 0u64..1_000_000,
    ) {
        let (tech, base, engine) = fixture();
        let mut scales = [1.0; NUM_METAL_LAYERS];
        for (s, &i) in scales.iter_mut().zip(&scale_picks) {
            *s = RouteRule::CANDIDATES[i];
        }
        // M1 carries no NDR in the Table-I space.
        scales[0] = 1.0;
        let op = if pick == 0 {
            OpSelect::CellShift
        } else {
            OpSelect::Lda {
                n: LdaParams::N_CANDIDATES[n_idx],
                n_iter: LdaParams::ITER_CANDIDATES[iter_idx],
            }
        };
        let cfg = FlowConfig { op, scales };
        let full = FlowRun::new(base, tech, &cfg).seed(seed).unchecked().metrics();
        let inc = FlowRun::new(engine.base(), tech, &cfg).engine(engine).seed(seed).metrics().unwrap();
        prop_assert_eq!(full, inc, "flow metrics diverged on {:?}", cfg);
    }

    #[test]
    fn random_edit_sequences_match_oracle(
        moves in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..12),
        scale_idx in 0usize..RouteRule::CANDIDATES.len(),
    ) {
        let (tech, base, engine) = fixture();
        let mut layout = layout::Layout::clone(&base.layout);
        let n_cells = layout.design().cells.len() as u32;
        let (rows, cols) = (layout.floorplan().rows(), layout.floorplan().cols());
        for &(c, dr, dc) in &moves {
            let cid = CellId(c % n_cells);
            let Some(w) = layout.occupancy().cell_width(cid) else {
                continue;
            };
            let near = geom::SitePos::new(dr % rows, dc % cols);
            if layout.occupancy_mut().remove_cell(cid).is_ok() {
                let pos = layout
                    .occupancy()
                    .find_gap(w, near, rows.max(cols))
                    .expect("core has capacity");
                layout
                    .occupancy_mut()
                    .place_cell(cid, w, pos)
                    .expect("gap verified free");
            }
        }
        rws::apply_uniform_scaling(&mut layout, RouteRule::CANDIDATES[scale_idx]);
        let oracle = evaluate(layout.clone(), tech).expect("edited layout stays consistent");
        let inc = engine.evaluate_incremental(layout, tech);
        assert_snapshots_match(&oracle, &inc);
    }
}
