//! End-to-end daemon drill over the real `ggd` binary and a real
//! Unix-domain socket: start `ggd serve`, submit a TINY explore plus a
//! higher-priority analyze, stream progress events, pause and resume the
//! explore mid-watch, and assert the final front is bit-identical to
//! both the library one-shot and the one-shot CLI's stdout.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use gdsii_guard::prelude::*;
use gdsii_guard::serve::{BaselineSummary, Client, JobSpec, JobState};
use ggjson::ToJson;
use tech::Technology;

const POP: usize = 4;
const GENS: usize = 2;

struct Daemon {
    child: Child,
    socket: PathBuf,
    dir: PathBuf,
}

impl Daemon {
    fn start(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("gg-daemon-smoke-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let socket = dir.join("ggd.sock");
        let child = Command::new(env!("CARGO_BIN_EXE_ggd"))
            .args([
                "serve",
                "--socket",
                socket.to_str().expect("utf-8 path"),
                "--data-dir",
                dir.join("data").to_str().expect("utf-8 path"),
                // Journal into the scratch dir, not the CWD-relative
                // default: a stale journal from a previous run would be
                // recovered as extra jobs and skew the stats asserts.
                "--journal-dir",
                dir.join("journal").to_str().expect("utf-8 path"),
                "--runners",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ggd serve");
        Self { child, socket, dir }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.socket, Duration::from_secs(30)).expect("daemon comes up")
    }

    fn shutdown(mut self) {
        if let Ok(mut c) = Client::connect(&self.socket) {
            let _ = c.shutdown();
        }
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn tiny_explore() -> JobSpec {
    let mut spec = JobSpec::explore("TINY");
    spec.population = POP;
    spec.generations = GENS;
    spec
}

/// The library one-shot reference run every daemon result must match.
fn oracle() -> ExploreResult {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&netlist::bench::tiny_spec(), &tech).expect("tiny baseline");
    let params = Nsga2Params::builder()
        .population(POP)
        .generations(GENS)
        .build();
    explore(&base, &tech, &params)
}

/// Reproduces the exact stdout `ggd explore` prints for a result, using
/// the same library pieces the binary uses.
fn expected_cli_stdout(result: &ExploreResult) -> String {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&netlist::bench::tiny_spec(), &tech).expect("tiny baseline");
    let mut out = String::new();
    out.push_str(&BaselineSummary::from_snapshot(&base).render("baseline"));
    out.push('\n');
    out.push_str(&format!(
        "evaluated {} configurations; Pareto front:\n",
        result.points.len()
    ));
    let mut front = result.pareto_front();
    front.sort_by(|a, b| {
        a.metrics
            .security
            .partial_cmp(&b.metrics.security)
            .expect("finite")
    });
    for p in front {
        let op = match p.config.op {
            OpSelect::CellShift => "CS".to_owned(),
            OpSelect::Lda { n, n_iter } => format!("LDA(N={n},it={n_iter})"),
        };
        out.push_str(&format!(
            "  security {:.3}  TNS {:>9.1} ps  power {:.3} mW  DRC {:>3}  {}\n",
            p.metrics.security, p.metrics.tns_ps, p.metrics.power_mw, p.metrics.drc, op
        ));
    }
    out
}

#[test]
fn daemon_round_trip_streams_pauses_and_matches_one_shot() {
    let reference = oracle();
    let reference_json = ggjson::to_string_pretty(&reference.to_json());

    let daemon = Daemon::start("roundtrip");
    let mut control = daemon.client();
    control.ping().expect("daemon answers ping");

    // Two jobs at different priorities share the one TINY baseline: the
    // analyze outranks the explore and runs first.
    let mut watcher = daemon.client();
    let explore_id = control.submit(&tiny_explore()).expect("submit explore");
    let analyze_id = control
        .submit(&JobSpec {
            priority: 9,
            ..JobSpec::analyze("TINY")
        })
        .expect("submit analyze");

    // Stream the explore. On the first generation event, pause from the
    // control connection, verify, then resume — mid-watch, over the
    // socket, without perturbing the result.
    let mut generations_seen = 0u32;
    let mut paused_once = false;
    let final_status = watcher
        .watch(explore_id, 0, |event| {
            if event.kind == "generation" {
                generations_seen += 1;
                if !paused_once {
                    paused_once = true;
                    let paused = control.pause(explore_id).expect("pause over socket");
                    assert!(
                        matches!(paused.state, JobState::Paused | JobState::Running),
                        "pause lands immediately (queued) or at the next boundary (running)"
                    );
                    // Give a running step a moment to reach its boundary,
                    // then resume whatever state we parked it in.
                    let deadline = std::time::Instant::now() + Duration::from_secs(30);
                    loop {
                        let s = control.status(explore_id).expect("status");
                        if s.state == JobState::Paused || std::time::Instant::now() > deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    control.resume(explore_id).expect("resume over socket");
                }
            }
        })
        .expect("watch to completion");
    assert_eq!(final_status.state, JobState::Done);
    assert!(
        generations_seen >= 1,
        "watch streamed at least one generation progress event"
    );
    assert!(paused_once, "the pause/resume drill actually ran");

    // Event stream shape: queued → started → baseline → generations.
    let mut replay = daemon.client();
    let mut kinds = Vec::new();
    replay
        .watch(explore_id, 0, |e| kinds.push(e.kind.clone()))
        .expect("replay event stream");
    assert_eq!(&kinds[..2], ["queued", "started"]);
    assert!(kinds.contains(&"baseline".to_owned()));
    assert!(
        kinds.iter().any(|k| k == "paused"),
        "stream records the pause"
    );
    assert!(
        kinds.iter().any(|k| k == "resumed"),
        "stream records the resume"
    );
    assert_eq!(kinds.last().map(String::as_str), Some("done"));

    // The analyze job finished too, and the daemon built TINY only once.
    let analyze_status = control.status(analyze_id).expect("status");
    assert_eq!(analyze_status.state, JobState::Done);
    let stats = control.stats().expect("stats");
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.baseline_builds, 1, "shared baseline cache");
    assert!(stats.baseline_hits >= 1);

    // Bit-identity: the daemon's ExploreResult equals the library
    // one-shot, despite the pause/resume and the interleaved job.
    let payload = control.result(explore_id).expect("result");
    let daemon_json = ggjson::to_string_pretty(payload.get("explore").expect("explore payload"));
    assert_eq!(
        daemon_json, reference_json,
        "daemon explore (paused, resumed, interleaved) must be bit-identical \
         to the one-shot library run"
    );

    daemon.shutdown();

    // And the one-shot CLI prints exactly the front this result renders.
    let cli = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["explore", "--design", "TINY", "--pop", "4", "--gens", "2"])
        .stderr(Stdio::null())
        .output()
        .expect("run one-shot ggd explore");
    assert!(cli.status.success(), "one-shot CLI succeeds");
    let stdout = String::from_utf8(cli.stdout).expect("utf-8 stdout");
    assert_eq!(
        stdout,
        expected_cli_stdout(&reference),
        "one-shot CLI stdout is pinned bit-identical to the library result"
    );
}

#[test]
fn cli_rejects_unknown_flags_and_prints_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["explore", "--design", "TINY", "--no-such-flag"])
        .output()
        .expect("run ggd");
    assert!(!out.status.success(), "unknown flags are errors");
    let mut all = String::new();
    all.push_str(&String::from_utf8_lossy(&out.stderr));
    assert!(all.contains("--no-such-flag") || all.contains("no-such-flag"));

    let help = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["--help"])
        .output()
        .expect("run ggd --help");
    assert!(help.status.success(), "--help exits cleanly");
    let text = String::from_utf8_lossy(&help.stderr);
    assert!(text.contains("usage: ggd"));
    assert!(text.contains("serve"), "help documents the daemon");
    assert!(
        text.contains("deprecated positional aliases"),
        "help documents the positional-to-flag mapping"
    );
}

#[test]
fn positional_aliases_still_work() {
    // Deprecated positional form of analyze: `ggd analyze TINY`.
    let out = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["analyze", "TINY"])
        .stderr(Stdio::null())
        .output()
        .expect("run ggd analyze TINY");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline:"));
    assert!(stdout.contains("Trojan battery success rate"));

    // Flag form produces the same bytes.
    let flagged = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["analyze", "--design", "TINY"])
        .stderr(Stdio::null())
        .output()
        .expect("run ggd analyze --design TINY");
    assert!(flagged.status.success());
    assert_eq!(out.stdout, flagged.stdout);
}

#[test]
fn verbose_telemetry_renders_on_error_paths() {
    // An unknown design fails the command, but --verbose telemetry (and
    // the error itself) must still reach stderr: the old process::exit
    // paths dropped the obs render.
    let out = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args(["--verbose", "analyze", "--design", "NO_SUCH"])
        .output()
        .expect("run ggd");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("NO_SUCH"),
        "error diagnostic names the design"
    );
    let mut read_all = String::new();
    let _ = (&out.stderr[..]).read_to_string(&mut read_all);
}
