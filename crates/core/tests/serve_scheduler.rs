//! Scheduler-level tests of the in-process job server: priority order
//! across kinds, shared baseline cache, and the headline guarantee —
//! pause/resume at generation boundaries is bit-identical to an
//! uninterrupted run.
//!
//! Everything runs with `runners: 0`, so the test owns the clock:
//! [`Server::step_once`] executes exactly one scheduler step per call.

use gdsii_guard::prelude::*;
use gdsii_guard::serve::{JobSpec, JobState, Server, ServerConfig};
use gdsii_guard::Error;
use ggjson::ToJson;
use tech::Technology;

fn test_server(tag: &str) -> Server {
    let data_dir =
        std::env::temp_dir().join(format!("gg-serve-scheduler-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    Server::start(ServerConfig {
        socket: None,
        data_dir: Some(data_dir),
        runners: 0,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn tiny_explore() -> JobSpec {
    let mut spec = JobSpec::explore("TINY");
    spec.population = 4;
    spec.generations = 2;
    spec
}

fn event_tick(server: &Server, id: u64, kind: &str) -> Option<u64> {
    let (events, _) = server.events_since(id, 0, false).expect("job exists");
    events.iter().find(|e| e.kind == kind).map(|e| e.tick)
}

#[test]
fn higher_priority_jobs_run_first_across_kinds() {
    let server = test_server("priority");
    let explore = server.submit(tiny_explore()).expect("submit");
    let urgent = server
        .submit(JobSpec {
            priority: 9,
            ..JobSpec::analyze("TINY")
        })
        .expect("submit");
    server.run_until_idle();
    assert_eq!(server.status(urgent).expect("status").state, JobState::Done);
    assert_eq!(
        server.status(explore).expect("status").state,
        JobState::Done
    );
    // The analyze job was submitted second but outranks the explore: its
    // start tick precedes the explore's (ticks are server-global).
    let urgent_started = event_tick(&server, urgent, "started").expect("urgent started");
    let explore_started = event_tick(&server, explore, "started").expect("explore started");
    assert!(
        urgent_started < explore_started,
        "priority 9 analyze (tick {urgent_started}) must start before \
         priority 0 explore (tick {explore_started})"
    );
    server.stop();
}

#[test]
fn concurrent_jobs_share_one_baseline_build() {
    let server = test_server("cache");
    let a = server.submit(tiny_explore()).expect("submit");
    let b = server.submit(JobSpec::analyze("TINY")).expect("submit");
    server.run_until_idle();
    assert_eq!(server.status(a).expect("status").state, JobState::Done);
    assert_eq!(server.status(b).expect("status").state, JobState::Done);
    let stats = server.stats();
    assert_eq!(stats.jobs, 2);
    assert_eq!(
        stats.baseline_builds, 1,
        "one TINY baseline build serves every job"
    );
    // Every step after the first hits the cache: the explore has 3
    // steps (gens 0..=2) and the analyze 1, so 3 hits follow the build.
    assert_eq!(stats.baseline_hits, 3);
    // The memory gauges see the one cached baseline: real occupancy and
    // usage-plane bytes, and a peak RSS (procfs) on Linux runners.
    assert!(stats.occupancy_bytes > 0, "cached baseline occupancy bytes");
    assert!(stats.route_planes_bytes > 0, "cached baseline plane bytes");
    if cfg!(target_os = "linux") {
        assert!(stats.peak_rss_bytes > 0, "VmHWM readable");
    }
    server.stop();
}

#[test]
fn paused_and_resumed_explore_is_bit_identical() -> Result<(), Error> {
    // One-shot oracle, no server involved.
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&netlist::bench::tiny_spec(), &tech)?;
    let spec = tiny_explore();
    let params = Nsga2Params::builder()
        .population(spec.population)
        .generations(spec.generations)
        .build();
    let oracle = explore(&base, &tech, &params);
    let oracle_json = ggjson::to_string_pretty(&oracle.to_json());

    let server = test_server("pause-resume");

    // An uninterrupted server job first: submit-and-run matches one-shot.
    let plain = server.submit(spec.clone())?;
    server.run_until_idle();
    let plain_payload = server.result(plain)?;
    let plain_json =
        ggjson::to_string_pretty(plain_payload.get("explore").expect("explore payload"));
    assert_eq!(
        plain_json, oracle_json,
        "server explore must be bit-identical to the one-shot API"
    );

    // Now the same job paused at every generation boundary and resumed.
    let interrupted = server.submit(spec)?;
    loop {
        assert!(server.step_once(), "job still has steps");
        let status = server.status(interrupted)?;
        if status.state == JobState::Done {
            break;
        }
        server.pause(interrupted)?;
        assert_eq!(
            server.status(interrupted)?.state,
            JobState::Paused,
            "a queued job pauses at the boundary it just reached"
        );
        server.resume(interrupted)?;
    }
    let (events, _) = server.events_since(interrupted, 0, false)?;
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
    assert!(
        kinds.iter().filter(|k| **k == "paused").count() >= 2,
        "job was paused at interior generation boundaries: {kinds:?}"
    );
    let interrupted_payload = server.result(interrupted)?;
    let interrupted_json =
        ggjson::to_string_pretty(interrupted_payload.get("explore").expect("explore payload"));
    assert_eq!(
        interrupted_json, oracle_json,
        "pause/resume at every generation boundary must not change results"
    );
    server.stop();
    Ok(())
}

#[test]
fn cancelled_queued_job_never_runs_while_neighbor_finishes() {
    let server = test_server("cancel");
    let keep = server.submit(JobSpec::analyze("TINY")).expect("submit");
    let drop_it = server.submit(tiny_explore()).expect("submit");
    server.cancel(drop_it).expect("cancel queued job");
    server.run_until_idle();
    assert_eq!(server.status(keep).expect("status").state, JobState::Done);
    let status = server.status(drop_it).expect("status");
    assert_eq!(status.state, JobState::Cancelled);
    assert_eq!(status.steps_done, 0, "cancelled before any step ran");
    assert!(server.result(drop_it).is_err());
    server.stop();
}

#[test]
fn bad_specs_and_unknown_designs_fail_cleanly() {
    let server = test_server("failures");
    // Version mismatch is refused at submit.
    let mut wrong = JobSpec::analyze("TINY");
    wrong.version = 99;
    assert!(server.submit(wrong).is_err());
    // Unknown designs pass submit (the spec is well-formed) but fail
    // their first step with the resolver's diagnostic.
    let id = server
        .submit(JobSpec::analyze("NO_SUCH_DESIGN"))
        .expect("submit");
    server.run_until_idle();
    let status = server.status(id).expect("status");
    assert_eq!(status.state, JobState::Failed);
    assert!(
        status.error.unwrap_or_default().contains("NO_SUCH_DESIGN"),
        "failure diagnostic names the design"
    );
    server.stop();
}
