//! Crash drills over the real `ggd` binary: SIGKILL the daemon at every
//! generation boundary of a TINY explore, restart it against the same
//! journal directory, and assert the recovered job finishes with a
//! result bit-identical to an uninterrupted library run. Also drills
//! runner supervision (an injected runner panic fails the job and
//! restarts the thread) and admission backpressure (`{"busy":…}` on the
//! wire surfaces as the retryable [`Error::Busy`]).

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use gdsii_guard::prelude::*;
use gdsii_guard::serve::{Client, JobSpec, JobState, RetryPolicy};
use gdsii_guard::Error;
use ggjson::ToJson;
use tech::Technology;

const POP: usize = 4;
const GENS: usize = 2;

/// A real `ggd serve` child process with a journal. Unlike the smoke
/// test's helper, `start` does NOT wipe the scratch directory — restarts
/// must find the journal and checkpoints the killed process left behind.
struct Daemon {
    child: Child,
    socket: PathBuf,
    dir: PathBuf,
}

impl Daemon {
    fn start(dir: &PathBuf, extra_env: &[(&str, &str)]) -> Self {
        std::fs::create_dir_all(dir).expect("create scratch dir");
        let socket = dir.join("ggd.sock");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ggd"));
        cmd.args([
            "serve",
            "--socket",
            socket.to_str().expect("utf-8 path"),
            "--data-dir",
            dir.join("data").to_str().expect("utf-8 path"),
            "--journal-dir",
            dir.join("journal").to_str().expect("utf-8 path"),
            "--runners",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn ggd serve");
        Self {
            child,
            socket: socket.clone(),
            dir: dir.clone(),
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.socket, Duration::from_secs(30)).expect("daemon comes up")
    }

    /// SIGKILL — no drain, no flush, no goodbye. The whole point.
    fn sigkill(&mut self) {
        self.child.kill().expect("kill -9 the daemon");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        if let Ok(mut c) = Client::connect(&self.socket) {
            let _ = c.shutdown();
        }
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn tiny_explore() -> JobSpec {
    let mut spec = JobSpec::explore("TINY");
    spec.population = POP;
    spec.generations = GENS;
    spec
}

/// The uninterrupted library run every recovered result must match.
fn oracle_json() -> String {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&netlist::bench::tiny_spec(), &tech).expect("tiny baseline");
    let params = Nsga2Params::builder()
        .population(POP)
        .generations(GENS)
        .build();
    ggjson::to_string_pretty(&explore(&base, &tech, &params).to_json())
}

/// Kill matrix: for every generation boundary k (0 = right after the
/// submit is acknowledged, before any generation completes), SIGKILL the
/// daemon once the k-th `generation` event arrives, restart it on the
/// same journal + data dir, and assert the job finishes bit-identical.
#[test]
fn sigkill_at_every_generation_boundary_recovers_bit_identically() {
    let reference = oracle_json();
    for kill_after in 0..=GENS {
        let dir = std::env::temp_dir().join(format!(
            "gg-daemon-crash-k{kill_after}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut daemon = Daemon::start(&dir, &[]);
        let mut control = daemon.client();
        let id = control.submit(&tiny_explore()).expect("submit explore");

        if kill_after == 0 {
            // The submit record hits the journal before the ACK, so a
            // kill the instant the ACK lands must not lose the job.
            daemon.sigkill();
        } else {
            // Watch with a no-retry client: once the SIGKILL lands the
            // stream dies and we want the error immediately, not after
            // five reconnect attempts against a dead socket.
            let mut watcher =
                Client::with_policy(&daemon.socket, RetryPolicy::none()).expect("watcher connects");
            let mut seen = 0usize;
            let mut killed = false;
            // The stream dying mid-watch is the expected outcome; the job
            // outracing the signal and finishing first is also fine.
            let _ = watcher.watch(id, 0, |event| {
                if event.kind == "generation" {
                    seen += 1;
                    if seen == kill_after {
                        daemon.sigkill();
                        killed = true;
                    }
                }
            });
            assert!(
                killed,
                "kill point {kill_after}: saw only {seen} generation event(s)"
            );
        }

        // Restart on the same journal + data dir and let recovery finish
        // the job under its original id.
        let restarted = Daemon::start(&dir, &[]);
        let mut control = restarted.client();
        let mut kinds = Vec::new();
        let final_status = control
            .watch(id, 0, |e| kinds.push(e.kind.clone()))
            .expect("recovered job streams to completion");
        assert_eq!(
            final_status.state,
            JobState::Done,
            "kill point {kill_after}: recovered job finishes"
        );
        assert!(
            kinds.iter().any(|k| k == "recovered"),
            "kill point {kill_after}: stream records the recovery: {kinds:?}"
        );

        let stats = control.stats().expect("stats");
        assert!(
            stats.recovered_jobs >= 1,
            "kill point {kill_after}: restart re-queued the journaled job"
        );

        let payload = control.result(id).expect("result");
        let recovered_json =
            ggjson::to_string_pretty(payload.get("explore").expect("explore payload"));
        assert_eq!(
            recovered_json, reference,
            "kill point {kill_after}: recovered explore must be bit-identical \
             to the uninterrupted library run"
        );
        restarted.shutdown();
    }
}

/// An injected runner panic (the `serve.runner_panic` drill point) fails
/// the in-flight job with a diagnostic and the supervisor restarts the
/// runner thread — the daemon itself keeps serving.
#[test]
fn runner_panic_fails_the_job_and_restarts_the_runner() {
    let dir = std::env::temp_dir().join(format!("gg-daemon-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = Daemon::start(&dir, &[("GG_FAULTS", "serve.runner_panic:always")]);
    let mut control = daemon.client();

    let id = control.submit(&tiny_explore()).expect("submit explore");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let status = loop {
        let s = control.status(id).expect("status");
        if s.state.is_terminal() || std::time::Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        status.state,
        JobState::Failed,
        "panicked step fails the job"
    );
    assert!(
        status
            .error
            .as_deref()
            .is_some_and(|e| e.contains("runner thread died")),
        "diagnostic names the dead runner: {:?}",
        status.error
    );

    // The daemon survived its runner: it still answers, and the stats
    // show the supervisor replaced at least one thread.
    control
        .ping()
        .expect("daemon still serving after the panic");
    let stats = control.stats().expect("stats");
    assert!(
        stats.runner_restarts >= 1,
        "supervisor restarted the dead runner: {stats:?}"
    );
    daemon.shutdown();
}

/// With `--runners 0 --max-queued 1` the second submit is refused with a
/// wire-level `{"busy":…}`; the client retries with backoff and finally
/// surfaces the typed retryable [`Error::Busy`], never a terminal error.
#[test]
fn backpressure_refusals_surface_as_retryable_busy() {
    let dir = std::env::temp_dir().join(format!("gg-daemon-busy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let socket = dir.join("ggd.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ggd"))
        .args([
            "serve",
            "--socket",
            socket.to_str().expect("utf-8 path"),
            "--data-dir",
            dir.join("data").to_str().expect("utf-8 path"),
            "--no-journal",
            "--runners",
            "0",
            "--max-queued",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ggd serve");

    let mut quick =
        Client::connect_with_retry(&socket, Duration::from_secs(30)).expect("daemon comes up");
    // Shrink the retry budget: the queue never drains (no runners), so
    // the test should spend milliseconds, not the default backoff.
    let mut quick_retry = Client::with_policy(
        &socket,
        RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
        },
    )
    .expect("client connects");

    let first = quick.submit(&tiny_explore()).expect("first submit fits");
    match quick_retry.submit(&tiny_explore()) {
        Err(Error::Busy(why)) => {
            assert!(why.contains("limit 1"), "diagnostic names the limit: {why}")
        }
        other => panic!("expected Error::Busy from a full queue, got {other:?}"),
    }

    // The refusal was admission-level: the first job is still queued,
    // the connection still works, and the reject was counted.
    let status = quick.status(first).expect("status");
    assert_eq!(status.state, JobState::Queued);
    let stats = quick.stats().expect("stats");
    assert!(stats.busy_rejects >= 1, "refusal counted: {stats:?}");
    assert_eq!(stats.queued, 1);

    let _ = quick.shutdown();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
