//! Checkpoint persistence properties.
//!
//! Two layers: a proptest that arbitrary checkpoint states survive the
//! save → load cycle bit-identically (hex-encoded RNG words, genomes,
//! metrics, quarantine ledger), and end-to-end runs showing that a
//! checkpointed-but-uninterrupted exploration produces exactly the same
//! result as a plain [`explore`] call for multiple fixed seeds — i.e.
//! checkpointing is observation-only.

use std::sync::OnceLock;

use gdsii_guard::checkpoint::{hex64, Checkpoint};
use gdsii_guard::prelude::*;
use netlist::bench;
use proptest::prelude::*;
use tech::{Technology, NUM_METAL_LAYERS};

fn fixture() -> &'static (Technology, Snapshot) {
    static FIXTURE: OnceLock<(Technology, Snapshot)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tech = Technology::nangate45_like();
        let base = implement_baseline_unchecked(&bench::tiny_spec(), &tech);
        (tech, base)
    })
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gg-cproll-{}-{tag}", std::process::id()))
}

/// The vendored proptest shim has no `prop_map`, so raw genome/metric
/// tuples are sampled and assembled into structs inside the test body.
type GenomeTuple = (u8, u8, u8, Vec<u8>);
type MetricsTuple = (f64, u64, f64, f64, f64, u32);

fn genome_strategy() -> impl Strategy<Value = GenomeTuple> {
    (
        0u8..4,
        0u8..4,
        0u8..4,
        proptest::collection::vec(0u8..4, NUM_METAL_LAYERS..NUM_METAL_LAYERS + 1),
    )
}

fn metrics_strategy() -> impl Strategy<Value = MetricsTuple> {
    (
        0.0f64..2.0,
        0u64..(1 << 50),
        0.0f64..1e9,
        -1e12f64..0.0,
        0.0f64..1e6,
        0u32..10_000,
    )
}

fn build_genome(t: &GenomeTuple) -> Genome {
    let mut scale_idx = [0u8; NUM_METAL_LAYERS];
    scale_idx.copy_from_slice(&t.3);
    Genome {
        op: t.0,
        n_idx: t.1,
        iter_idx: t.2,
        scale_idx,
    }
}

fn build_metrics(t: &MetricsTuple) -> FlowMetrics {
    FlowMetrics {
        security: t.0,
        er_sites: t.1,
        er_tracks: t.2,
        tns_ps: t.3,
        power_mw: t.4,
        drc: t.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_checkpoints_survive_save_load(
        rng_words in proptest::collection::vec(any::<u64>(), 4..5),
        generation in 0usize..64,
        pop in proptest::collection::vec(genome_strategy(), 1..6),
        evals in proptest::collection::vec(
            (genome_strategy(), metrics_strategy(), 0usize..8), 1..10),
        fingerprint_word in any::<u64>(),
        case in 0u32..u32::MAX,
    ) {
        let pop: Vec<Genome> = pop.iter().map(build_genome).collect();
        let mut cache: Vec<(Genome, FlowMetrics)> = Vec::new();
        let mut order: Vec<(Genome, usize)> = Vec::new();
        for (gt, mt, gen) in &evals {
            let g = build_genome(gt);
            if !cache.iter().any(|(og, _)| *og == g) {
                cache.push((g, build_metrics(mt)));
                order.push((g, *gen));
            }
        }
        let quarantine = vec![QuarantineEntry {
            genome: pop[0],
            generation,
            incremental: "injected fault at sta.diverge".into(),
            full: "panic: cone walk diverged".into(),
        }];
        let cp = Checkpoint {
            base_fingerprint: hex64(fingerprint_word),
            params: Nsga2Params::builder()
                .population(pop.len().max(2))
                .generations(generation + 1)
                .seed(u64::from(case))
                .build(),
            generation,
            rng: rng_words.iter().map(|&w| hex64(w)).collect(),
            pop,
            order,
            cache,
            quarantine,
        };

        let path = scratch(&format!("prop-{case}")).join("checkpoint.ggjson");
        cp.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        prop_assert_eq!(&cp, &back);
        prop_assert_eq!(
            back.rng_state().expect("rng").to_vec(),
            rng_words
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

/// A checkpointed run (no interruption) must be bit-identical to a plain
/// `explore` run: persistence must not consume randomness or reorder work.
#[test]
fn checkpointing_is_observation_only_across_seeds() {
    let (tech, base) = fixture();
    for seed in [0x5EED_0001u64, 0xBADC_AB1E] {
        let params = Nsga2Params::builder()
            .population(5)
            .generations(2)
            .seed(seed)
            .threads(2)
            .build();
        let plain = explore(base, tech, &params);

        let dir = scratch(&format!("obs-{seed:x}"));
        let opts = ExploreOptions {
            checkpoint: Some(dir.join("checkpoint.ggjson")),
            ..ExploreOptions::default()
        };
        let tracked = explore_with(base, tech, &params, &opts).expect("checkpointed run");
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(
            ggjson::to_string_pretty(&plain),
            ggjson::to_string_pretty(&tracked),
            "checkpointing perturbed the trajectory for seed {seed:#x}"
        );
    }
}

/// Resuming from the final checkpoint of a completed run re-derives the
/// same result without re-running any generation.
#[test]
fn resume_after_completion_is_identity() {
    let (tech, base) = fixture();
    let params = Nsga2Params::builder()
        .population(4)
        .generations(2)
        .seed(0x1DEA)
        .threads(2)
        .build();
    let dir = scratch("done");
    let opts = ExploreOptions {
        checkpoint: Some(dir.join("checkpoint.ggjson")),
        ..ExploreOptions::default()
    };
    let full = explore_with(base, tech, &params, &opts).expect("full run");
    let resumed = explore_with(
        base,
        tech,
        &params,
        &ExploreOptions {
            resume: true,
            ..opts
        },
    )
    .expect("resume of a completed run");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        ggjson::to_string_pretty(&full),
        ggjson::to_string_pretty(&resumed),
    );
}
