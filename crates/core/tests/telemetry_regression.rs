//! Telemetry is observation-only: enabling the obs subsystem must not
//! perturb a single bit of the exploration trajectory.
//!
//! The NSGA-II explore run is fully deterministic for a fixed seed, so the
//! strongest possible regression check is cheap: run the same small
//! exploration with telemetry off and on and compare every evaluated
//! point — genome schedule and resulting metrics — for exact equality.
//! A telemetry hook that ever consumed randomness, reordered work, or
//! mutated shared state would show up here as a diverged trajectory.

use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

fn small_explore() -> ExploreResult {
    let tech = Technology::nangate45_like();
    let base = implement_baseline_unchecked(&bench::tiny_spec(), &tech);
    let params = Nsga2Params::builder()
        .population(6)
        .generations(2)
        .seed(0x7E1E)
        .threads(2)
        .build();
    explore(&base, &tech, &params)
}

#[test]
fn enabling_telemetry_is_bit_identical() {
    obs::reset();
    obs::set_enabled(false);
    let off = small_explore();

    obs::reset();
    obs::set_enabled(true);
    let on = small_explore();
    let snap = obs::snapshot();
    obs::set_enabled(false);

    assert_eq!(
        off.points.len(),
        on.points.len(),
        "evaluation count diverged with telemetry enabled"
    );
    for (a, b) in off.points.iter().zip(&on.points) {
        assert_eq!(a.generation, b.generation, "schedule diverged");
        assert_eq!(a.genome, b.genome, "genome schedule diverged");
        assert_eq!(a.metrics, b.metrics, "metrics diverged on {:?}", a.genome);
    }

    // The instrumented run must actually have recorded something — an
    // accidentally dead obs wiring would make this test vacuous.
    assert!(!snap.is_empty(), "instrumented run recorded no telemetry");
    assert!(
        snap.counter("nsga2.evaluations") > 0,
        "nsga2.evaluations counter not wired"
    );
    assert!(
        snap.span_count("nsga2.generation") > 0,
        "nsga2.generation span not wired"
    );
}
