//! Fault-containment matrix over every registered injection point.
//!
//! For each point the registry knows (`route.overflow`, `sta.diverge`,
//! `eval.panic`, `eco.legalize`) this suite arms a spec programmatically
//! and asserts the three containment properties the sandbox claims:
//!
//! 1. a stage-0 fault degrades to the full re-eval and the final result
//!    is *bit-identical* to a fault-free run (the incremental engine and
//!    the from-scratch oracle agree, so recovery is exact);
//! 2. a persistent (`!`) fault exhausts the degrade chain, quarantines
//!    the candidate with penalty metrics, and never aborts the process;
//! 3. with no spec armed the whole machinery is invisible: runs are
//!    bit-identical to each other and to the reference.
//!
//! Fault config is process-global, so every test serializes on one gate.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

static GATE: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn fixture() -> &'static (Technology, Snapshot) {
    static FIXTURE: OnceLock<(Technology, Snapshot)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tech = Technology::nangate45_like();
        let base = implement_baseline_unchecked(&bench::tiny_spec(), &tech);
        (tech, base)
    })
}

fn params() -> Nsga2Params {
    Nsga2Params::builder()
        .population(5)
        .generations(2)
        .seed(0xFA17)
        .threads(2)
        .build()
}

/// Fault-free reference trajectory (computed once, under the gate, with
/// nothing armed).
fn reference() -> &'static String {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        assert!(!faults::armed(), "reference computed with a spec armed");
        let (tech, base) = fixture();
        ggjson::to_string_pretty(&explore(base, tech, &params()))
    })
}

#[test]
fn stage0_faults_at_every_point_recover_bit_identically() {
    let _g = locked();
    faults::clear();
    let reference = reference().clone();
    let (tech, base) = fixture();

    for point in [
        "route.overflow",
        "sta.diverge",
        "eval.panic",
        "eco.legalize",
    ] {
        faults::arm_spec(&format!("{point}:always")).expect("arm");
        obs::reset();
        obs::set_enabled(true);
        let run = explore(base, tech, &params());
        let snap = obs::snapshot();
        obs::set_enabled(false);
        faults::clear();

        assert!(
            run.quarantined.is_empty(),
            "{point}: stage-0 fault must not quarantine (full re-eval recovers)"
        );
        assert!(
            snap.counter("faults.injected") > 0,
            "{point}: no fault ever fired"
        );
        assert!(
            snap.counter("eval.degraded") > 0,
            "{point}: no candidate was degraded"
        );
        assert_eq!(snap.counter("eval.quarantined"), 0, "{point}");
        assert_eq!(
            ggjson::to_string_pretty(&run),
            reference,
            "{point}: degrade-and-recover diverged from the fault-free run"
        );
    }
}

#[test]
fn persistent_fault_quarantines_without_aborting() {
    let _g = locked();
    faults::clear();
    let reference = reference().clone();
    let (tech, base) = fixture();

    faults::arm_spec("route.overflow:always!").expect("arm");
    obs::reset();
    obs::set_enabled(true);
    let run = explore(base, tech, &params());
    let snap = obs::snapshot();
    obs::set_enabled(false);
    faults::clear();

    assert!(!run.quarantined.is_empty(), "nothing was quarantined");
    assert_eq!(
        run.quarantined.len(),
        run.points.len(),
        "an always!-armed point must quarantine every evaluated candidate"
    );
    for q in &run.quarantined {
        assert!(
            q.incremental.contains("route.overflow"),
            "{}",
            q.incremental
        );
        assert!(q.full.contains("route.overflow"), "{}", q.full);
    }
    assert!(
        run.pareto_front().is_empty(),
        "penalty metrics must never be feasible"
    );
    assert!(snap.counter("eval.quarantined") > 0);
    assert!(snap.counter("faults.injected") > 0);

    // Disarming restores the exact fault-free trajectory: quarantine is
    // keyed on (genome, seed), never on leftover global state.
    let clean = explore(base, tech, &params());
    assert_eq!(ggjson::to_string_pretty(&clean), reference);
}

#[test]
fn targeted_and_probabilistic_triggers_are_contained() {
    let _g = locked();
    faults::clear();
    let reference = reference().clone();
    let (tech, base) = fixture();

    faults::arm_spec("eval.panic:g0c0,route.overflow:0.5,seed=7").expect("arm");
    obs::reset();
    obs::set_enabled(true);
    let run = explore(base, tech, &params());
    let snap = obs::snapshot();
    obs::set_enabled(false);
    faults::clear();

    assert!(
        run.quarantined.is_empty(),
        "non-persistent faults recovered"
    );
    // g0c0 targets candidate 0 of the initial population, which always
    // exists, so at least one injection is guaranteed.
    assert!(snap.counter("faults.injected") > 0);
    assert_eq!(ggjson::to_string_pretty(&run), reference);
}

#[test]
fn zero_deadline_quarantines_every_candidate() {
    let _g = locked();
    faults::clear();
    let (tech, base) = fixture();

    let run = explore_with(
        base,
        tech,
        &params(),
        &ExploreOptions {
            deadline: Some(Duration::ZERO),
            ..ExploreOptions::default()
        },
    )
    .expect("deadline run must complete, not abort");

    assert_eq!(
        run.quarantined.len(),
        run.points.len(),
        "a zero budget must exhaust the degrade chain for every candidate"
    );
    for q in &run.quarantined {
        assert!(q.incremental.contains("deadline"), "{}", q.incremental);
        assert!(q.full.contains("deadline"), "{}", q.full);
    }
    assert!(run.pareto_front().is_empty());
}

#[test]
fn unarmed_runs_are_bit_identical() {
    let _g = locked();
    faults::clear();
    let reference = reference().clone();
    let (tech, base) = fixture();
    assert!(!faults::armed());

    let a = explore(base, tech, &params());
    let b = explore(base, tech, &params());
    assert_eq!(ggjson::to_string_pretty(&a), ggjson::to_string_pretty(&b));
    assert_eq!(ggjson::to_string_pretty(&a), reference);
}
