//! Kill-at-every-generation resume matrix.
//!
//! The strongest crash-safety property the checkpoint layer claims is
//! that interrupting an exploration after *any* completed generation and
//! resuming from disk yields a result byte-identical to the uninterrupted
//! run — same genome schedule, same metrics, same archive order, same
//! quarantine ledger. `ExploreOptions::halt_after` is the deterministic
//! kill switch: it stops right after the checkpoint for that generation
//! is durably installed, exactly the state a SIGKILL between generations
//! would leave behind.

use std::sync::OnceLock;

use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

fn fixture() -> &'static (Technology, Snapshot) {
    static FIXTURE: OnceLock<(Technology, Snapshot)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tech = Technology::nangate45_like();
        let base = implement_baseline_unchecked(&bench::tiny_spec(), &tech);
        (tech, base)
    })
}

fn params() -> Nsga2Params {
    Nsga2Params::builder()
        .population(5)
        .generations(3)
        .seed(0xC0FF_EE11)
        .threads(2)
        .build()
}

#[test]
fn resume_at_every_generation_is_bit_identical() {
    let (tech, base) = fixture();
    let params = params();

    let reference = ggjson::to_string_pretty(&explore(base, tech, &params));

    // Kill after generation 0 (initial population), 1, and 2 — every
    // checkpoint a run of 3 generations can be interrupted at.
    for kill_at in 0..params.generations {
        let dir = std::env::temp_dir().join(format!("gg-resume-{}-g{kill_at}", std::process::id()));
        let path = dir.join("checkpoint.ggjson");

        let partial = explore_with(
            base,
            tech,
            &params,
            &ExploreOptions {
                checkpoint: Some(path.clone()),
                halt_after: Some(kill_at),
                ..ExploreOptions::default()
            },
        )
        .expect("interrupted run");
        assert!(path.exists(), "checkpoint missing after halt at {kill_at}");
        // The partial result must be a strict prefix of the full archive.
        assert!(
            partial.points.iter().all(|p| p.generation <= kill_at),
            "halt_after leaked later-generation evaluations"
        );

        let resumed = explore_with(
            base,
            tech,
            &params,
            &ExploreOptions {
                checkpoint: Some(path.clone()),
                resume: true,
                ..ExploreOptions::default()
            },
        )
        .expect("resumed run");
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(
            ggjson::to_string_pretty(&resumed),
            reference,
            "resume after killing at generation {kill_at} diverged"
        );
    }
}

/// Resuming against a different base snapshot or different parameters is
/// refused with a typed checkpoint error instead of silently producing a
/// chimera run.
#[test]
fn resume_refuses_mismatched_runs() {
    let (tech, base) = fixture();
    let params = params();
    let dir = std::env::temp_dir().join(format!("gg-resume-mm-{}", std::process::id()));
    let path = dir.join("checkpoint.ggjson");
    explore_with(
        base,
        tech,
        &params,
        &ExploreOptions {
            checkpoint: Some(path.clone()),
            halt_after: Some(0),
            ..ExploreOptions::default()
        },
    )
    .expect("seed run");

    let other_params = Nsga2Params::builder()
        .population(5)
        .generations(3)
        .seed(0xD1FF)
        .threads(2)
        .build();
    match explore_with(
        base,
        tech,
        &other_params,
        &ExploreOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..ExploreOptions::default()
        },
    ) {
        Err(Error::Checkpoint(why)) => {
            assert!(why.contains("parameters"), "unexpected reason: {why}")
        }
        other => panic!("expected a checkpoint error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `resume: true` with no file on disk starts a fresh run (first boot and
/// crash-before-first-checkpoint both land here).
#[test]
fn resume_without_checkpoint_starts_fresh() {
    let (tech, base) = fixture();
    let params = Nsga2Params::builder()
        .population(4)
        .generations(1)
        .seed(0xF0E5)
        .threads(2)
        .build();
    let reference = ggjson::to_string_pretty(&explore(base, tech, &params));
    let dir = std::env::temp_dir().join(format!("gg-resume-fresh-{}", std::process::id()));
    let fresh = explore_with(
        base,
        tech,
        &params,
        &ExploreOptions {
            checkpoint: Some(dir.join("checkpoint.ggjson")),
            resume: true,
            ..ExploreOptions::default()
        },
    )
    .expect("fresh run under resume flag");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(ggjson::to_string_pretty(&fresh), reference);
}
