//! `ggd` — the GDSII-Guard command-line front end.
//!
//! ```text
//! ggd [--verbose] analyze --design <name>                 # implement + report baseline metrics
//! ggd [--verbose] harden  --design <name> [--op cs|lda] [--out out.gds]
//! ggd [--verbose] explore --design <name> [--pop N] [--gens N] [--seed N]
//! ggd serve --socket <path> [--runners N]                 # exploration-as-a-service daemon
//! ggd submit|status|watch|pause|resume|cancel|result …    # client for a running daemon
//! ggd list                                                # list the benchmark designs
//! ```
//!
//! Designs are the twelve benchmark specs of `netlist::bench` (AES_1 …
//! TDEA) plus the miniature `TINY` smoke design. All runs are
//! deterministic: `ggd explore` is a thin submit-and-watch over an
//! in-process job server and prints bit-identical output to the historic
//! one-shot path. `--verbose` turns the telemetry subsystem on and
//! prints the span/metric tree to stderr when the command finishes —
//! including on error paths, now that `main` returns `Result`.
//!
//! The historical positional forms (`ggd harden TINY lda out.gds`,
//! `ggd explore TINY 8 4`) are kept as deprecated aliases of the flags:
//! `harden <design> [cs|lda] [out.gds]` maps to `--design/--op/--out`,
//! and `explore <design> [pop] [gens]` maps to `--design/--pop/--gens`.
//!
//! `ggd serve` is **crash-safe** by default: job-lifecycle transitions
//! are journaled under `--journal-dir` (default `$GG_JOURNAL_DIR`, else
//! `results/journal`), and a restarted daemon pointed at the same
//! journal re-queues every interrupted job and resumes explores from
//! their checkpoints bit-identically. `--no-journal` opts out.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::path::PathBuf;
use std::time::Duration;

use gdsii_guard::obs::diagln;
use gdsii_guard::prelude::*;
use gdsii_guard::serve::{
    BaselineSummary, Client, JobEvent, JobSpec, JobState, Server, ServerConfig,
};
use gdsii_guard::Error;
use ggjson::{FromJson, Json, ToJson};
use tech::Technology;

const USAGE: &str = "usage: ggd [--verbose] <command> [flags]\n\
   \n\
   one-shot commands:\n\
   \x20 list                                     list benchmark designs\n\
   \x20 analyze --design <name>                  baseline metrics\n\
   \x20 harden  --design <name> [--op cs|lda] [--out out.gds]\n\
   \x20 explore --design <name> [--pop N] [--gens N] [--seed N] [--out front.json]\n\
   \n\
   daemon:\n\
   \x20 serve   --socket <path> [--runners N] [--data-dir <dir>]\n\
   \x20         [--journal-dir <dir>|--no-journal] [--max-queued N]\n\
   \x20         env: GG_JOURNAL_DIR, GG_MAX_QUEUED, GG_SERVE_MEM_BUDGET,\n\
   \x20              GG_STUCK_MS (runner watchdog; default 8x GG_EVAL_DEADLINE_MS)\n\
   \n\
   client commands (all accept --socket <path>; default $GGD_SOCKET,\n\
   else ggd.sock under the system temp dir):\n\
   \x20 submit  <explore|harden|analyze> --design <name> [--priority N]\n\
   \x20         [--pop N] [--gens N] [--seed N] [--threads N] [--op cs|lda]\n\
   \x20         [--out <path>] [--checkpoint <path>] [--resume]\n\
   \x20 status  <job>                            one job's state\n\
   \x20 watch   <job> [--from K]                 stream events until terminal\n\
   \x20 pause   <job>                            park at next generation boundary\n\
   \x20 resume  <job>                            re-queue a paused job\n\
   \x20 cancel  <job>                            cancel a job\n\
   \x20 result  <job>                            final result payload (JSON)\n\
   \x20 jobs                                     all jobs\n\
   \x20 stats                                    scheduler + baseline-cache counters\n\
   \x20 shutdown                                 stop the daemon\n\
   \n\
   deprecated positional aliases (still accepted):\n\
   \x20 analyze <design>                ≡ --design\n\
   \x20 harden  <design> [cs|lda] [out.gds]      ≡ --design/--op/--out\n\
   \x20 explore <design> [pop] [gens]   ≡ --design/--pop/--gens";

/// Everything the flag parser can collect; each command reads the
/// subset it understands.
#[derive(Default)]
struct Opts {
    design: Option<String>,
    pop: Option<usize>,
    gens: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    out: Option<String>,
    op: Option<String>,
    socket: Option<PathBuf>,
    priority: Option<u8>,
    from: Option<u64>,
    runners: Option<usize>,
    data_dir: Option<PathBuf>,
    journal_dir: Option<PathBuf>,
    no_journal: bool,
    max_queued: Option<usize>,
    checkpoint: Option<String>,
    resume: bool,
    help: bool,
    positionals: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, Error> {
    fn value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<String, Error> {
        it.next()
            .cloned()
            .ok_or_else(|| Error::InvalidArgs(format!("{flag} needs a value")))
    }
    fn num<'a, T: std::str::FromStr>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<T, Error> {
        let v = value(it, flag)?;
        v.parse()
            .map_err(|_| Error::InvalidArgs(format!("{flag} got '{v}', not a number")))
    }

    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => o.help = true,
            "--resume" => o.resume = true,
            "--design" => o.design = Some(value(&mut it, a)?),
            "--pop" => o.pop = Some(num(&mut it, a)?),
            "--gens" => o.gens = Some(num(&mut it, a)?),
            "--seed" => o.seed = Some(num(&mut it, a)?),
            "--threads" => o.threads = Some(num(&mut it, a)?),
            "--out" => o.out = Some(value(&mut it, a)?),
            "--op" => o.op = Some(value(&mut it, a)?),
            "--socket" => o.socket = Some(PathBuf::from(value(&mut it, a)?)),
            "--priority" => o.priority = Some(num(&mut it, a)?),
            "--from" => o.from = Some(num(&mut it, a)?),
            "--runners" => o.runners = Some(num(&mut it, a)?),
            "--data-dir" => o.data_dir = Some(PathBuf::from(value(&mut it, a)?)),
            "--journal-dir" => o.journal_dir = Some(PathBuf::from(value(&mut it, a)?)),
            "--no-journal" => o.no_journal = true,
            "--max-queued" => o.max_queued = Some(num(&mut it, a)?),
            "--checkpoint" => o.checkpoint = Some(value(&mut it, a)?),
            s if s.starts_with("--") => {
                return Err(Error::InvalidArgs(format!("unknown flag '{s}'")))
            }
            _ => o.positionals.push(a.clone()),
        }
    }
    Ok(o)
}

impl Opts {
    /// The design name, from `--design` or the deprecated positional.
    fn design(&self, positional_idx: usize) -> Result<String, Error> {
        self.design
            .clone()
            .or_else(|| self.positionals.get(positional_idx).cloned())
            .ok_or_else(|| Error::InvalidArgs("no design named; use --design <name>".into()))
    }

    /// A numeric positional (deprecated alias for a flag).
    fn positional_num<T: std::str::FromStr>(&self, idx: usize) -> Option<T> {
        self.positionals.get(idx).and_then(|s| s.parse().ok())
    }

    /// The job id every client command takes as its positional.
    fn job_id(&self) -> Result<u64, Error> {
        self.positionals
            .first()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::InvalidArgs("expected a numeric job id".into()))
    }

    /// The daemon socket path: `--socket`, `$GGD_SOCKET`, or the default
    /// under the system temp dir.
    fn socket(&self) -> PathBuf {
        self.socket
            .clone()
            .or_else(|| std::env::var_os("GGD_SOCKET").map(PathBuf::from))
            .unwrap_or_else(|| std::env::temp_dir().join("ggd.sock"))
    }
}

/// Fails fast on a design name the benchmark roster does not know,
/// listing every accepted name — shared by the local commands and
/// `submit`, so a typo dies at the CLI instead of inside the daemon.
fn validate_design(name: &str) -> Result<(), Error> {
    if gdsii_guard::serve::baseline::resolve_spec(name).is_none() {
        return Err(Error::InvalidArgs(format!(
            "unknown design '{name}'; known designs: {}",
            gdsii_guard::serve::baseline::known_designs()
        )));
    }
    Ok(())
}

fn baseline(name: &str, tech: &Technology) -> Result<Snapshot, Error> {
    validate_design(name)?;
    let spec = gdsii_guard::serve::baseline::resolve_spec(name).expect("validated above");
    implement_baseline(&spec, tech)
}

fn print_snapshot(label: &str, s: &Snapshot) {
    println!("{}", BaselineSummary::from_snapshot(s).render(label));
}

fn cmd_list() {
    println!(
        "{:<14} {:>7} {:>6} {:>10} {:>8}",
        "design", "cells", "util%", "clock(ps)", "timing"
    );
    for s in netlist::bench::all_specs() {
        println!(
            "{:<14} {:>7} {:>6.0} {:>10.0} {:>8}",
            s.name,
            s.target_cells,
            s.utilization * 100.0,
            s.clock_period(),
            if s.period_factor > 1.0 {
                "loose"
            } else {
                "tight"
            }
        );
    }
}

fn cmd_analyze(o: &Opts) -> Result<(), Error> {
    let name = o.design(0)?;
    let tech = Technology::nangate45_like();
    let base = baseline(&name, &tech)?;
    print_snapshot("baseline", &base);
    let battery = secmetrics::attack::battery_success_rate(&base.security, &tech);
    println!("  Trojan battery success rate: {:.0} %", battery * 100.0);
    Ok(())
}

fn cmd_harden(o: &Opts) -> Result<(), Error> {
    let name = o.design(0)?;
    let op =
        o.op.clone()
            .or_else(|| o.positionals.get(1).cloned())
            .unwrap_or_else(|| "cs".to_owned());
    let out = o.out.clone().or_else(|| o.positionals.get(2).cloned());
    let tech = Technology::nangate45_like();
    let base = baseline(&name, &tech)?;
    print_snapshot("baseline", &base);
    let cfg = match op.as_str() {
        "cs" => FlowConfig::cell_shift_default(),
        "lda" => FlowConfig::lda_default(),
        other => {
            return Err(Error::InvalidArgs(format!(
                "unknown operator '{other}' (expected cs or lda)"
            )))
        }
    };
    let mut hardened = FlowRun::new(&base, &tech, &cfg).snapshot()?;
    print_snapshot("hardened", &hardened);
    let m = FlowMetrics::from_snapshot(&hardened, &base);
    println!(
        "  security {:.3} (risk reduced {:.1} %), battery success {:.0} %",
        m.security,
        (1.0 - m.security) * 100.0,
        secmetrics::attack::battery_success_rate(&hardened.security, &tech) * 100.0
    );
    if let Some(path) = out {
        // The snapshot's layout is Arc-shared; un-share before mutating.
        let hl = std::sync::Arc::make_mut(&mut hardened.layout);
        layout::insert_fillers(hl.occupancy_mut(), &tech);
        let lib = gdsii::layout_to_gds(&hardened.layout, &tech, Some(&hardened.routing));
        std::fs::write(&path, lib.to_bytes())
            .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
        println!("  wrote {path}");
    }
    Ok(())
}

/// Renders the final Pareto front exactly as the one-shot CLI always
/// has: evaluated-point count, then the front sorted by security.
fn print_front(result: &ExploreResult) {
    println!(
        "evaluated {} configurations; Pareto front:",
        result.points.len()
    );
    let mut front = result.pareto_front();
    front.sort_by(|a, b| {
        a.metrics
            .security
            .partial_cmp(&b.metrics.security)
            .expect("finite")
    });
    for p in front {
        let op = match p.config.op {
            OpSelect::CellShift => "CS".to_owned(),
            OpSelect::Lda { n, n_iter } => format!("LDA(N={n},it={n_iter})"),
        };
        println!(
            "  security {:.3}  TNS {:>9.1} ps  power {:.3} mW  DRC {:>3}  {}",
            p.metrics.security, p.metrics.tns_ps, p.metrics.power_mw, p.metrics.drc, op
        );
    }
}

/// One-line human rendering of a streamed job event.
fn describe_event(e: &JobEvent) -> String {
    let mut s = format!("[{:>4}] {}", e.tick, e.kind);
    match e.kind.as_str() {
        "generation" => {
            if let Some(g) = e.generation {
                s.push_str(&format!(" {g}"));
            }
            let points = e.data.get("points").and_then(Json::as_num);
            let front = e.data.get("front_size").and_then(Json::as_num);
            if let (Some(points), Some(front)) = (points, front) {
                s.push_str(&format!(": {points} points evaluated, front size {front}"));
            }
            let added = e.data.get("added").and_then(Vec::<String>::from_json);
            let removed = e.data.get("removed").and_then(Vec::<String>::from_json);
            if let (Some(a), Some(r)) = (added, removed) {
                if !a.is_empty() || !r.is_empty() {
                    s.push_str(&format!(" (front +{} -{})", a.len(), r.len()));
                }
            }
        }
        "failed" => {
            if let Some(why) = e.data.as_str() {
                s.push_str(&format!(": {why}"));
            }
        }
        _ => {}
    }
    s
}

/// Unpacks an explore job's result payload and prints the front.
fn print_explore_payload(payload: &Json) -> Result<(), Error> {
    let result = payload
        .get("explore")
        .and_then(ExploreResult::from_json)
        .ok_or_else(|| Error::Serve("malformed explore result payload".into()))?;
    print_front(&result);
    Ok(())
}

/// `ggd explore` without `--socket`: submit-and-watch over an in-process
/// server, output pinned bit-identical to the historic one-shot path.
fn cmd_explore_local(o: &Opts) -> Result<(), Error> {
    let name = o.design(0)?;
    let mut spec = JobSpec::explore(&name);
    spec.population = o.pop.or_else(|| o.positional_num(1)).unwrap_or(10);
    spec.generations = o.gens.or_else(|| o.positional_num(2)).unwrap_or(3);
    if let Some(seed) = o.seed {
        spec.seed = seed;
    }
    if let Some(threads) = o.threads {
        spec.threads = threads;
    }
    spec.out = o.out.clone();
    spec.checkpoint = o.checkpoint.clone();
    spec.resume = o.resume;

    let data_dir = std::env::temp_dir().join(format!("ggd-oneshot-{}", std::process::id()));
    let server = Server::start(ServerConfig {
        socket: None,
        data_dir: Some(data_dir.clone()),
        runners: 1,
        ..ServerConfig::default()
    })?;
    let id = server.submit(spec)?;
    let mut cursor = 0u64;
    let status = loop {
        let (events, terminal) = server.events_since(id, cursor, true)?;
        cursor += events.len() as u64;
        for e in &events {
            match e.kind.as_str() {
                "baseline" => {
                    if let Some(sum) = BaselineSummary::from_json(&e.data) {
                        println!("{}", sum.render("baseline"));
                    }
                }
                "generation" => diagln!("{}", describe_event(e)),
                _ => {}
            }
        }
        if terminal {
            break server.status(id)?;
        }
    };
    let outcome = match status.state {
        JobState::Done => {
            let payload = server.result(id)?;
            print_explore_payload(&payload)
        }
        other => Err(Error::Serve(format!(
            "explore job ended {}: {}",
            other.as_str(),
            status.error.unwrap_or_else(|| "no diagnostic".into())
        ))),
    };
    server.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
    outcome
}

/// `ggd explore --socket <path>`: the same submit-and-watch against a
/// remote daemon.
fn cmd_explore_remote(o: &Opts) -> Result<(), Error> {
    let name = o.design(0)?;
    let mut spec = JobSpec::explore(&name);
    spec.population = o.pop.or_else(|| o.positional_num(1)).unwrap_or(10);
    spec.generations = o.gens.or_else(|| o.positional_num(2)).unwrap_or(3);
    if let Some(seed) = o.seed {
        spec.seed = seed;
    }
    if let Some(threads) = o.threads {
        spec.threads = threads;
    }
    if let Some(priority) = o.priority {
        spec.priority = priority;
    }
    spec.out = o.out.clone();
    spec.checkpoint = o.checkpoint.clone();
    spec.resume = o.resume;
    let mut client = Client::connect(&o.socket())?;
    let id = client.submit(&spec)?;
    let status = client.watch(id, 0, |e| match e.kind.as_str() {
        "baseline" => {
            if let Some(sum) = BaselineSummary::from_json(&e.data) {
                println!("{}", sum.render("baseline"));
            }
        }
        "generation" => diagln!("{}", describe_event(e)),
        _ => {}
    })?;
    match status.state {
        JobState::Done => print_explore_payload(&client.result(id)?),
        other => Err(Error::Serve(format!(
            "explore job {id} ended {}: {}",
            other.as_str(),
            status.error.unwrap_or_else(|| "no diagnostic".into())
        ))),
    }
}

/// Reads a numeric env var; unset, empty, or unparsable yields `None`.
fn env_num<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// The daemon's journal directory: `--no-journal` disables, else
/// `--journal-dir`, `$GG_JOURNAL_DIR`, or `results/journal`.
fn resolve_journal_dir(o: &Opts) -> Option<PathBuf> {
    if o.no_journal {
        return None;
    }
    o.journal_dir
        .clone()
        .or_else(|| std::env::var_os("GG_JOURNAL_DIR").map(PathBuf::from))
        .or_else(|| Some(PathBuf::from("results/journal")))
}

/// The runner watchdog threshold: `$GG_STUCK_MS`, else 8× the
/// cooperative eval deadline when one is configured (a step that blows
/// through eight per-candidate budgets is wedged, not slow), else off.
fn resolve_stuck_after() -> Option<Duration> {
    env_num::<u64>("GG_STUCK_MS")
        .or_else(|| env_num::<u64>("GG_EVAL_DEADLINE_MS").map(|ms| ms.saturating_mul(8)))
        .map(Duration::from_millis)
}

fn cmd_serve(o: &Opts) -> Result<(), Error> {
    let socket = o.socket();
    let journal_dir = resolve_journal_dir(o);
    let server = Server::start(ServerConfig {
        socket: Some(socket.clone()),
        data_dir: o.data_dir.clone(),
        // An explicit `--runners 0` is honored: a queue-only daemon is
        // useful for inspecting admission control and recovery.
        runners: o.runners.unwrap_or(1),
        journal_dir: journal_dir.clone(),
        max_queued: o
            .max_queued
            .or_else(|| env_num("GG_MAX_QUEUED"))
            .unwrap_or(0),
        mem_budget_bytes: env_num("GG_SERVE_MEM_BUDGET").unwrap_or(0),
        stuck_after: resolve_stuck_after(),
    })?;
    diagln!("ggd serve: listening on {}", socket.display());
    match &journal_dir {
        Some(dir) => diagln!("ggd serve: journaling jobs under {}", dir.display()),
        None => diagln!("ggd serve: journal disabled; a crash forgets all jobs"),
    }
    server.wait();
    diagln!("ggd serve: shut down");
    Ok(())
}

fn cmd_submit(o: &Opts) -> Result<(), Error> {
    let kind = o.positionals.first().map(String::as_str).ok_or_else(|| {
        Error::InvalidArgs("submit needs a job kind (explore|harden|analyze)".into())
    })?;
    let design = o.design(1)?;
    validate_design(&design)?;
    let mut spec = match kind {
        "explore" => JobSpec::explore(&design),
        "analyze" => JobSpec::analyze(&design),
        "harden" => JobSpec::harden(&design, o.op.as_deref().unwrap_or("cs")),
        other => {
            return Err(Error::InvalidArgs(format!(
                "unknown job kind '{other}' (expected explore, harden, or analyze)"
            )))
        }
    };
    if let Some(pop) = o.pop {
        spec.population = pop;
    }
    if let Some(gens) = o.gens {
        spec.generations = gens;
    }
    if let Some(seed) = o.seed {
        spec.seed = seed;
    }
    if let Some(threads) = o.threads {
        spec.threads = threads;
    }
    if let Some(priority) = o.priority {
        spec.priority = priority;
    }
    spec.out = o.out.clone();
    spec.checkpoint = o.checkpoint.clone();
    spec.resume = o.resume;
    let mut client = Client::connect(&o.socket())?;
    let id = client.submit(&spec)?;
    println!("job {id}");
    Ok(())
}

fn print_status(s: &gdsii_guard::serve::JobStatus) {
    println!(
        "job {} {} {} {}  priority {}  steps {}/{}  events {}{}",
        s.id,
        s.kind.as_str(),
        s.design,
        s.state.as_str(),
        s.priority,
        s.steps_done,
        s.steps_total,
        s.events,
        s.error
            .as_deref()
            .map(|e| format!("  error: {e}"))
            .unwrap_or_default()
    );
}

fn cmd_watch(o: &Opts) -> Result<(), Error> {
    let id = o.job_id()?;
    let mut client = Client::connect(&o.socket())?;
    let status = client.watch(id, o.from.unwrap_or(0), |e| {
        println!("{}", describe_event(e));
    })?;
    print_status(&status);
    Ok(())
}

fn main() -> Result<(), Error> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    args.retain(|a| a != "--verbose" && a != "-v");
    if verbose {
        obs::set_enabled(true);
    }
    let outcome = dispatch(&args);
    // Render telemetry even when the command failed — the old
    // `process::exit` paths silently dropped it.
    if verbose {
        let snap = obs::snapshot();
        if !snap.is_empty() {
            diagln!("{}", snap.render());
        }
    }
    outcome
}

fn dispatch(args: &[String]) -> Result<(), Error> {
    let Some(command) = args.first().map(String::as_str) else {
        diagln!("{USAGE}");
        return Err(Error::InvalidArgs("no command given".into()));
    };
    if command == "--help" || command == "-h" || command == "help" {
        diagln!("{USAGE}");
        return Ok(());
    }
    let o = parse_opts(&args[1..])?;
    if o.help {
        diagln!("{USAGE}");
        return Ok(());
    }
    match command {
        "list" => {
            cmd_list();
            Ok(())
        }
        "analyze" => cmd_analyze(&o),
        "harden" => cmd_harden(&o),
        "explore" => {
            if o.socket.is_some() || std::env::var_os("GGD_SOCKET").is_some() {
                cmd_explore_remote(&o)
            } else {
                cmd_explore_local(&o)
            }
        }
        "serve" => cmd_serve(&o),
        "submit" => cmd_submit(&o),
        "status" => {
            let s = Client::connect(&o.socket())?.status(o.job_id()?)?;
            print_status(&s);
            Ok(())
        }
        "pause" => {
            let s = Client::connect(&o.socket())?.pause(o.job_id()?)?;
            print_status(&s);
            Ok(())
        }
        "resume" => {
            let s = Client::connect(&o.socket())?.resume(o.job_id()?)?;
            print_status(&s);
            Ok(())
        }
        "cancel" => {
            let s = Client::connect(&o.socket())?.cancel(o.job_id()?)?;
            print_status(&s);
            Ok(())
        }
        "watch" => cmd_watch(&o),
        "result" => {
            let payload = Client::connect(&o.socket())?.result(o.job_id()?)?;
            print!("{}", ggjson::to_string_pretty(&payload));
            Ok(())
        }
        "jobs" => {
            for s in Client::connect(&o.socket())?.jobs()? {
                print_status(&s);
            }
            Ok(())
        }
        "stats" => {
            let stats = Client::connect(&o.socket())?.stats()?;
            print!("{}", ggjson::to_string_pretty(&stats.to_json()));
            Ok(())
        }
        "shutdown" => Client::connect(&o.socket())?.shutdown(),
        other => {
            diagln!("{USAGE}");
            Err(Error::InvalidArgs(format!("unknown command '{other}'")))
        }
    }
}
