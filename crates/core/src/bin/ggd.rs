//! `ggd` — the GDSII-Guard command-line front end.
//!
//! ```text
//! ggd [--verbose] analyze <design>                      # implement + report baseline metrics
//! ggd [--verbose] harden  <design> [cs|lda] [out.gds]   # apply one flow config, export GDSII
//! ggd [--verbose] explore <design> [pop] [gens]         # NSGA-II Pareto exploration
//! ggd list                                              # list the benchmark designs
//! ```
//!
//! Designs are the twelve benchmark specs of `netlist::bench` (AES_1 …
//! TDEA). All runs are deterministic. `--verbose` turns the telemetry
//! subsystem on and prints the span/metric tree to stderr when the
//! command finishes; `GG_TRACE=route,lda,sta,nsga2` additionally streams
//! per-phase trace lines.

use gdsii_guard::obs::diagln;
use gdsii_guard::prelude::*;
use tech::Technology;

fn usage() -> ! {
    diagln!(
        "usage: ggd [--verbose] <command> [args]\n\
         \n\
         commands:\n\
         \x20 list                                  list benchmark designs\n\
         \x20 analyze <design>                      baseline metrics\n\
         \x20 harden  <design> [cs|lda] [out.gds]   harden + optional GDSII export\n\
         \x20 explore <design> [pop] [gens]         NSGA-II Pareto front"
    );
    std::process::exit(2);
}

fn spec_or_die(name: &str) -> netlist::bench::DesignSpec {
    netlist::bench::spec_by_name(name).unwrap_or_else(|| {
        diagln!("unknown design '{name}'; run `ggd list`");
        std::process::exit(2);
    })
}

fn baseline_or_die(name: &str, tech: &Technology) -> Snapshot {
    implement_baseline(&spec_or_die(name), tech).unwrap_or_else(|e| {
        diagln!("cannot implement baseline for '{name}': {e}");
        std::process::exit(1);
    })
}

fn print_snapshot(label: &str, s: &Snapshot) {
    println!(
        "{label}: {} cells, {} exploitable sites in {} regions, {:.0} free tracks",
        s.layout.design().cells.len(),
        s.security.er_sites,
        s.security.regions.len(),
        s.security.er_tracks
    );
    println!(
        "  TNS {:.1} ps (WNS {:.1}), power {:.3} mW, {} DRC violations, utilization {:.1} %",
        s.tns_ps(),
        s.timing.wns_ps(),
        s.power_mw(),
        s.drc,
        s.layout.utilization() * 100.0
    );
}

fn cmd_list() {
    println!(
        "{:<14} {:>7} {:>6} {:>10} {:>8}",
        "design", "cells", "util%", "clock(ps)", "timing"
    );
    for s in netlist::bench::all_specs() {
        println!(
            "{:<14} {:>7} {:>6.0} {:>10.0} {:>8}",
            s.name,
            s.target_cells,
            s.utilization * 100.0,
            s.clock_period(),
            if s.period_factor > 1.0 {
                "loose"
            } else {
                "tight"
            }
        );
    }
}

fn cmd_analyze(name: &str) {
    let tech = Technology::nangate45_like();
    let base = baseline_or_die(name, &tech);
    print_snapshot("baseline", &base);
    let battery = secmetrics::attack::battery_success_rate(&base.security, &tech);
    println!("  Trojan battery success rate: {:.0} %", battery * 100.0);
}

fn cmd_harden(name: &str, op: &str, out: Option<&str>) {
    let tech = Technology::nangate45_like();
    let base = baseline_or_die(name, &tech);
    print_snapshot("baseline", &base);
    let cfg = match op {
        "cs" => FlowConfig::cell_shift_default(),
        "lda" => FlowConfig::lda_default(),
        other => {
            diagln!("unknown operator '{other}' (expected cs or lda)");
            std::process::exit(2);
        }
    };
    let mut hardened = apply_flow(&base, &tech, &cfg, 1);
    print_snapshot("hardened", &hardened);
    let m = FlowMetrics::from_snapshot(&hardened, &base);
    println!(
        "  security {:.3} (risk reduced {:.1} %), battery success {:.0} %",
        m.security,
        (1.0 - m.security) * 100.0,
        secmetrics::attack::battery_success_rate(&hardened.security, &tech) * 100.0
    );
    if let Some(path) = out {
        // The snapshot's layout is Arc-shared; un-share before mutating.
        let hl = std::sync::Arc::make_mut(&mut hardened.layout);
        layout::insert_fillers(hl.occupancy_mut(), &tech);
        let lib = gdsii::layout_to_gds(&hardened.layout, &tech, Some(&hardened.routing));
        match std::fs::write(path, lib.to_bytes()) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => {
                diagln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_explore(name: &str, pop: usize, gens: usize) {
    let tech = Technology::nangate45_like();
    let base = baseline_or_die(name, &tech);
    print_snapshot("baseline", &base);
    let params = Nsga2Params::builder()
        .population(pop)
        .generations(gens)
        .build();
    let result = explore(&base, &tech, &params);
    println!(
        "evaluated {} configurations; Pareto front:",
        result.points.len()
    );
    let mut front = result.pareto_front();
    front.sort_by(|a, b| {
        a.metrics
            .security
            .partial_cmp(&b.metrics.security)
            .expect("finite")
    });
    for p in front {
        let op = match p.config.op {
            OpSelect::CellShift => "CS".to_owned(),
            OpSelect::Lda { n, n_iter } => format!("LDA(N={n},it={n_iter})"),
        };
        println!(
            "  security {:.3}  TNS {:>9.1} ps  power {:.3} mW  DRC {:>3}  {}",
            p.metrics.security, p.metrics.tns_ps, p.metrics.power_mw, p.metrics.drc, op
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    args.retain(|a| a != "--verbose" && a != "-v");
    if verbose {
        obs::set_enabled(true);
    }
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("analyze") => match args.get(1) {
            Some(name) => cmd_analyze(name),
            None => usage(),
        },
        Some("harden") => match args.get(1) {
            Some(name) => cmd_harden(
                name,
                args.get(2).map_or("cs", String::as_str),
                args.get(3).map(String::as_str),
            ),
            None => usage(),
        },
        Some("explore") => match args.get(1) {
            Some(name) => {
                let pop = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
                let gens = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
                cmd_explore(name, pop, gens);
            }
            None => usage(),
        },
        _ => usage(),
    }
    if verbose {
        let snap = obs::snapshot();
        if !snap.is_empty() {
            diagln!("{}", snap.render());
        }
    }
}
