//! Sandboxed candidate evaluation with a degrade chain.
//!
//! One poisoned candidate — a router overflow spiral, an STA divergence, a
//! panic in an operator, or an injected fault from `crates/faults` — must
//! never sink a generation of the exploratory loop. Every candidate
//! evaluation therefore runs inside [`catch_unwind`] with an optional
//! cooperative wall-clock deadline, and a failure walks a *degrade chain*:
//!
//! 1. **Incremental eval** (stage 0): the normal engine-backed
//!    [`crate::flow::FlowRun`] path through the [`EvalEngine`].
//! 2. **Full re-eval** (stage 1): an oracle [`crate::flow::FlowRun`] from
//!    the base snapshot, bypassing every engine cache. By the incremental ==
//!    full equivalence property, a recovered candidate's metrics are
//!    bit-identical to what the healthy incremental path would have
//!    produced, so a stage-0-only fault leaves the Pareto front unchanged.
//! 3. **Penalty + quarantine** (stage 2): the candidate receives
//!    [`penalty_metrics`] — finite, infeasible-by-construction objectives
//!    that constrained domination ranks behind every genuine point — and
//!    is recorded in the quarantine ledger.
//!
//! Determinism: fault triggers are keyed on `(genome, seed)` through the
//! `faults` evaluation context, never on wall time, so replay/test runs
//! quarantine the exact same candidates at any thread count. Deadlines
//! (`GG_EVAL_DEADLINE_MS`) are inherently wall-clock and excluded from the
//! bit-identity guarantees.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use tech::Technology;

use crate::error::Error;
use crate::flow::{FlowConfig, FlowMetrics};
use crate::nsga2::Genome;
use crate::pipeline::EvalEngine;

/// Why a sandboxed evaluation stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalFailure {
    /// The stage panicked with an ordinary (non-injected) payload.
    Panicked {
        /// The panic message, when it was a `&str`/`String` payload.
        message: String,
    },
    /// An armed `faults` injection point fired.
    Injected {
        /// The injection-point name (e.g. `route.overflow`).
        point: String,
    },
    /// The cooperative per-candidate deadline expired.
    DeadlineExceeded {
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// The stage returned a typed [`Error`] instead of unwinding.
    Error(String),
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalFailure::Panicked { message } => write!(f, "panicked: {message}"),
            EvalFailure::Injected { point } => write!(f, "injected fault at {point}"),
            EvalFailure::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded ({budget_ms} ms budget)")
            }
            EvalFailure::Error(e) => write!(f, "error: {e}"),
        }
    }
}

impl From<EvalFailure> for Error {
    fn from(f: EvalFailure) -> Self {
        Error::EvalFailed(f.to_string())
    }
}

/// How a candidate came out of the degrade chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalStatus {
    /// Stage 0 succeeded.
    Ok,
    /// Stage 0 failed, the full re-eval recovered.
    Degraded(EvalFailure),
    /// Both stages failed; the candidate carries penalty metrics.
    Quarantined {
        /// The stage-0 (incremental) failure.
        incremental: EvalFailure,
        /// The stage-1 (full re-eval) failure.
        full: EvalFailure,
    },
}

/// Per-candidate evaluation policy: the deadline each stage gets, if any.
#[derive(Debug, Clone, Copy, Default)]
pub struct SandboxPolicy {
    /// Cooperative wall-clock budget per degrade-chain stage
    /// (`GG_EVAL_DEADLINE_MS`); `None` disables deadline checks.
    pub deadline: Option<Duration>,
}

impl SandboxPolicy {
    /// Reads `GG_EVAL_DEADLINE_MS` (unset, empty, or unparsable ⇒ no
    /// deadline; `0` is honored and trips at the first checkpoint).
    pub fn from_env() -> Self {
        let deadline = std::env::var("GG_EVAL_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis);
        Self { deadline }
    }
}

/// Classifies a caught unwind payload.
fn classify(payload: Box<dyn std::any::Any + Send>) -> EvalFailure {
    if let Some(fault) = faults::payload_of(&*payload) {
        return match fault {
            faults::FaultPayload::Injected { point } => EvalFailure::Injected {
                point: point.to_string(),
            },
            faults::FaultPayload::DeadlineExceeded { budget_ms } => {
                EvalFailure::DeadlineExceeded { budget_ms }
            }
        };
    }
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    EvalFailure::Panicked { message }
}

/// Runs one closure under `catch_unwind` with the faults context and
/// optional deadline armed, suppressing the default panic-hook spew for
/// unwinds we are going to catch and classify anyway.
fn run_stage(
    generation: u64,
    candidate: u64,
    key: u64,
    stage: u8,
    policy: &SandboxPolicy,
    body: impl FnOnce() -> Result<FlowMetrics, Error>,
) -> Result<FlowMetrics, EvalFailure> {
    install_quiet_hook();
    let outcome = {
        let _ctx = faults::push_context(generation, candidate, key, stage);
        let _dl = policy.deadline.map(faults::set_deadline);
        let _quiet = QuietGuard::enter();
        catch_unwind(AssertUnwindSafe(body))
    };
    match outcome {
        Ok(Ok(m)) => Ok(m),
        Ok(Err(e)) => Err(EvalFailure::Error(e.to_string())),
        Err(payload) => Err(classify(payload)),
    }
}

/// The deterministic key probabilistic fault triggers hash: the full
/// chromosome plus the flow seed, independent of thread scheduling.
pub fn candidate_key(genome: &Genome) -> u64 {
    let mut k = faults::splitmix64(genome.flow_seed());
    k ^= faults::splitmix64(
        (u64::from(genome.op) << 16) | (u64::from(genome.n_idx) << 8) | u64::from(genome.iter_idx),
    );
    for (i, &s) in genome.scale_idx.iter().enumerate() {
        k = faults::splitmix64(k ^ (u64::from(s) << (i % 8)));
    }
    k
}

/// Sandboxed evaluation of one candidate through the degrade chain.
///
/// Never unwinds: every failure mode is converted into an [`EvalStatus`]
/// and, in the worst case, [`penalty_metrics`].
pub fn evaluate_candidate(
    engine: &EvalEngine,
    tech: &Technology,
    genome: &Genome,
    generation: usize,
    candidate: usize,
    policy: &SandboxPolicy,
) -> (FlowMetrics, EvalStatus) {
    faults::ensure_init();
    let cfg: FlowConfig = genome.to_config();
    let seed = genome.flow_seed();
    let key = candidate_key(genome);
    let (generation, candidate) = (generation as u64, candidate as u64);

    // Stage 0: incremental eval through the engine.
    let incremental = run_stage(generation, candidate, key, 0, policy, || {
        crate::flow::FlowRun::new(engine.base(), tech, &cfg)
            .engine(engine)
            .seed(seed)
            .metrics()
    });
    let first = match incremental {
        Ok(m) => return (m, EvalStatus::Ok),
        Err(f) => f,
    };

    // Stage 1: full re-eval from the base snapshot, bypassing every engine
    // cache (a poisoned memo or a stage-0-only fault cannot reach it).
    let full = run_stage(generation, candidate, key, 1, policy, || {
        crate::flow::FlowRun::new(engine.base(), tech, &cfg)
            .seed(seed)
            .metrics()
    });
    match full {
        Ok(m) => (m, EvalStatus::Degraded(first)),
        Err(second) => (
            penalty_metrics(),
            EvalStatus::Quarantined {
                incremental: first,
                full: second,
            },
        ),
    }
}

/// Metrics assigned to a quarantined candidate: finite (crowding distance
/// divides by objective spans, so no infinities), but infeasible by
/// construction — the DRC count alone exceeds any reachable
/// `drc_limit`, and every objective is orders of magnitude worse than a
/// genuine evaluation — so constrained domination ranks the candidate
/// behind every real point and [`crate::ExploreResult::pareto_front`]
/// (which filters on feasibility) can never surface it.
pub fn penalty_metrics() -> FlowMetrics {
    FlowMetrics {
        security: 1e6,
        er_sites: 1 << 40,
        er_tracks: 1e12,
        tns_ps: -1e12,
        power_mw: 1e12,
        drc: u32::MAX,
    }
}

// ---------------------------------------------------------------------------
// Quiet panic hook
// ---------------------------------------------------------------------------
//
// `catch_unwind` runs the global panic hook before unwinding, which would
// print one backtrace-sized stderr blob per injected fault. The hook is
// swapped once for a wrapper that stays silent while the current thread is
// inside a sandbox stage and defers to the previous hook everywhere else,
// so genuine panics on other threads keep their diagnostics.

use std::cell::Cell;
use std::sync::Once;

thread_local! {
    static IN_SANDBOX: Cell<bool> = const { Cell::new(false) };
}

struct QuietGuard {
    prev: bool,
}

impl QuietGuard {
    fn enter() -> Self {
        Self {
            prev: IN_SANDBOX.with(|f| f.replace(true)),
        }
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        IN_SANDBOX.with(|f| f.set(self.prev));
    }
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SANDBOX.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Registry handles for the sandbox, resolved once.
pub(crate) struct SandboxMetrics {
    /// Candidates that recovered through the full re-eval.
    pub degraded: obs::Counter,
    /// Candidates that exhausted the chain and carry penalty metrics.
    pub quarantined: obs::Counter,
}

pub(crate) fn sandbox_metrics() -> &'static SandboxMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<SandboxMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SandboxMetrics {
        degraded: obs::counter("eval.degraded"),
        quarantined: obs::counter("eval.quarantined"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BETA_POWER, N_DRC};

    #[test]
    fn penalty_metrics_are_finite_and_infeasible() {
        let m = penalty_metrics();
        for o in m.objectives() {
            assert!(o.is_finite());
        }
        // Infeasible against any plausible baseline.
        assert!(!m.feasible(1e9, u32::MAX - N_DRC - 1));
        assert!(m.constraint_violation(1.0, 0) > 0.0);
        assert!(m.power_mw > BETA_POWER * 1e9);
    }

    #[test]
    fn eval_failure_renders_and_converts() {
        let f = EvalFailure::Injected {
            point: "route.overflow".into(),
        };
        assert!(f.to_string().contains("route.overflow"));
        let e: Error = f.into();
        assert!(matches!(e, Error::EvalFailed(ref s) if s.contains("route.overflow")));
        let d = EvalFailure::DeadlineExceeded { budget_ms: 250 };
        assert!(d.to_string().contains("250"));
    }

    #[test]
    fn candidate_key_separates_genomes() {
        let mut a = Genome {
            op: 0,
            n_idx: 0,
            iter_idx: 0,
            scale_idx: [0; tech::NUM_METAL_LAYERS],
        };
        let b = a;
        assert_eq!(candidate_key(&a), candidate_key(&b));
        // flow_seed collides across scale-only siblings; the key must not.
        a.scale_idx[3] = 2;
        assert_eq!(a.flow_seed(), b.flow_seed());
        assert_ne!(candidate_key(&a), candidate_key(&b));
    }

    #[test]
    fn policy_from_env_parses() {
        // Not testing via set_var (process-global races); exercise the
        // parse seam directly through a scoped helper instead.
        let parse = |v: &str| v.trim().parse::<u64>().ok().map(Duration::from_millis);
        assert_eq!(parse("250"), Some(Duration::from_millis(250)));
        assert_eq!(parse(" 0 "), Some(Duration::from_millis(0)));
        assert_eq!(parse("abc"), None);
    }
}
