//! The job server: runner threads, step execution, and the socket front
//! end.
//!
//! A [`Server`] owns one job registry and one [`BaselineCache`]. Runner
//! threads pull *scheduler steps* from the registry — one NSGA-II
//! generation of an explore job (via [`crate::nsga2::explore_with_engine`]
//! with `halt_after`), or the whole of an analyze/harden job — so
//! priorities take effect at generation boundaries and a pause/cancel
//! request lands exactly where a checkpoint was just written. Explore
//! jobs are therefore bit-identical across any pause/resume pattern, by
//! the same checkpoint-resume property the kill-matrix test pins.
//!
//! With `runners: 0` nothing runs until [`Server::step_once`] /
//! [`Server::run_until_idle`] — the deterministic mode the scheduler
//! tests drive.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ggjson::Json;
use tech::Technology;

use crate::error::Error;
use crate::flow::{FlowConfig, FlowMetrics, FlowRun};
use crate::nsga2::{explore_with_engine, ExploreOptions, ExploreResult, Nsga2Params};
use crate::serve::baseline::{BaselineCache, DesignContext};
use crate::serve::job::{BaselineSummary, JobEvent, JobKind, JobSpec, JobStatus};
use crate::serve::proto::{Request, Response};
use crate::serve::registry::{Claim, Registry, StepOutcome};

/// How a [`Server`] is stood up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket to listen on; `None` runs in-process only
    /// (submit/watch through the [`Server`] methods).
    pub socket: Option<PathBuf>,
    /// Directory for per-job checkpoint envelopes; `None` uses
    /// `ggd-serve-<pid>` under the system temp directory.
    pub data_dir: Option<PathBuf>,
    /// Runner threads; `0` means no background execution — tests drive
    /// the scheduler with [`Server::step_once`].
    pub runners: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            socket: None,
            data_dir: None,
            runners: 1,
        }
    }
}

/// Scheduler and shared-baseline-cache counters, as returned by `stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Jobs ever submitted.
    pub jobs: u64,
    /// Baseline contexts constructed (one per distinct design, counting
    /// failed builds).
    pub baseline_builds: u64,
    /// Baseline requests served from cache instead of rebuilding.
    pub baseline_hits: u64,
    /// Resident bytes of every cached baseline's occupancy index.
    pub occupancy_bytes: u64,
    /// Usage-plane bytes across cached baselines (routing + Phase-A plan,
    /// Arc-deduplicated per engine).
    pub route_planes_bytes: u64,
    /// Accounted candidate-cache bytes across cached engines (bounded per
    /// engine by `GG_EVAL_CACHE_BYTES`).
    pub eval_cache_bytes: u64,
    /// Process peak resident set (`VmHWM`), 0 where procfs is absent.
    pub peak_rss_bytes: u64,
}

ggjson::json_struct!(ServerStats {
    jobs,
    baseline_builds,
    baseline_hits,
    occupancy_bytes,
    route_planes_bytes,
    eval_cache_bytes,
    peak_rss_bytes
});

/// The process high-water resident set in bytes, from
/// `/proc/self/status`; 0 on platforms without procfs.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Assembles the stats payload from the shared server state.
fn collect_stats(shared: &Shared) -> ServerStats {
    let (baseline_builds, baseline_hits) = shared.baselines.stats();
    let mem = shared.baselines.memory_footprint();
    ServerStats {
        jobs: shared.registry.jobs().len() as u64,
        baseline_builds,
        baseline_hits,
        occupancy_bytes: mem.occupancy_bytes,
        route_planes_bytes: mem.route_planes_bytes,
        eval_cache_bytes: mem.cache_bytes,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

struct Shared {
    registry: Registry,
    baselines: BaselineCache,
    data_dir: PathBuf,
    socket_path: Option<PathBuf>,
    ckpt_counter: AtomicU64,
}

/// A running job server. Dropping it without [`Server::stop`] leaves
/// its threads running detached for the rest of the process.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Stands the server up: creates the data directory, binds the
    /// socket (if configured), and spawns the runner threads.
    pub fn start(cfg: ServerConfig) -> Result<Self, Error> {
        let data_dir = cfg.data_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ggd-serve-{}", std::process::id()))
        });
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| Error::Io(format!("cannot create {}: {e}", data_dir.display())))?;
        let listener =
            match &cfg.socket {
                Some(path) => {
                    // A stale socket file from a dead server blocks bind.
                    let _ = std::fs::remove_file(path);
                    Some(UnixListener::bind(path).map_err(|e| {
                        Error::Serve(format!("cannot bind {}: {e}", path.display()))
                    })?)
                }
                None => None,
            };
        let shared = Arc::new(Shared {
            registry: Registry::new(),
            baselines: BaselineCache::new(Technology::nangate45_like()),
            data_dir,
            socket_path: cfg.socket,
            ckpt_counter: AtomicU64::new(0),
        });
        let mut threads = Vec::new();
        for i in 0..cfg.runners {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ggd-runner-{i}"))
                    .spawn(move || runner_loop(&sh))
                    .map_err(|e| Error::Serve(format!("cannot spawn runner: {e}")))?,
            );
        }
        if let Some(listener) = listener {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ggd-accept".to_owned())
                    .spawn(move || accept_loop(&sh, listener))
                    .map_err(|e| Error::Serve(format!("cannot spawn acceptor: {e}")))?,
            );
        }
        Ok(Self { shared, threads })
    }

    /// Validates and queues a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, Error> {
        spec.validate().map_err(Error::Serve)?;
        let checkpoint = match &spec.checkpoint {
            Some(path) => PathBuf::from(path),
            None => {
                let n = self.shared.ckpt_counter.fetch_add(1, Ordering::Relaxed);
                self.shared.data_dir.join(format!("job{n}.ckpt"))
            }
        };
        Ok(self.shared.registry.submit(spec, checkpoint))
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, Error> {
        self.shared.registry.status(id).map_err(Error::Serve)
    }

    /// Status of every job, in submit order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        self.shared.registry.jobs()
    }

    /// Parks a job at its next generation boundary (immediately if it is
    /// still queued).
    pub fn pause(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.pause(id).map_err(Error::Serve)
    }

    /// Re-queues a paused job at the back of its priority class.
    pub fn resume(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.resume(id).map_err(Error::Serve)
    }

    /// Cancels a job (at its next generation boundary if running).
    pub fn cancel(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.cancel(id).map_err(Error::Serve)
    }

    /// Final result payload of a done job.
    pub fn result(&self, id: u64) -> Result<Json, Error> {
        self.shared.registry.result(id).map_err(Error::Serve)
    }

    /// Events of job `id` from stream cursor `from`, plus whether the
    /// job is terminal. With `wait`, blocks until news arrives (bounded
    /// by an internal poll interval).
    pub fn events_since(
        &self,
        id: u64,
        from: u64,
        wait: bool,
    ) -> Result<(Vec<JobEvent>, bool), Error> {
        self.shared
            .registry
            .events_since(id, from, wait, Duration::from_millis(200))
            .map_err(Error::Serve)
    }

    /// Scheduler, baseline-cache, and memory-footprint counters.
    pub fn stats(&self) -> ServerStats {
        collect_stats(&self.shared)
    }

    /// Claims and executes exactly one scheduler step on the calling
    /// thread; returns whether there was anything to run. The `runners:
    /// 0` test mode's drive shaft.
    pub fn step_once(&self) -> bool {
        match self.shared.registry.claim_next(false) {
            Claim::Step(id) => {
                let outcome = execute_step(&self.shared, id);
                self.shared.registry.finish_step(id, outcome);
                true
            }
            Claim::Idle | Claim::Shutdown => false,
        }
    }

    /// Runs scheduler steps on the calling thread until no job is queued
    /// or running.
    pub fn run_until_idle(&self) {
        while self.step_once() {}
    }

    /// Whether any job is queued or running.
    pub fn has_live_work(&self) -> bool {
        self.shared.registry.has_live_work()
    }

    /// Begins shutdown without waiting: runners exit at their next
    /// claim, watchers drain, the acceptor unblocks.
    pub fn begin_shutdown(&self) {
        self.shared.registry.shutdown();
        if let Some(path) = &self.shared.socket_path {
            // Unblock the acceptor's blocking `accept`.
            let _ = UnixStream::connect(path);
        }
    }

    /// Blocks until the server shuts down (a client sends `shutdown`,
    /// or another thread calls [`Server::begin_shutdown`]), then joins
    /// every thread and removes the socket file. Daemon mode.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.shared.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Shuts down and joins: [`Server::begin_shutdown`] + [`Server::wait`].
    pub fn stop(self) {
        self.begin_shutdown();
        self.wait();
    }
}

fn runner_loop(shared: &Shared) {
    loop {
        match shared.registry.claim_next(true) {
            Claim::Shutdown => break,
            Claim::Idle => {}
            Claim::Step(id) => {
                let outcome = execute_step(shared, id);
                shared.registry.finish_step(id, outcome);
            }
        }
    }
}

/// Runs one claimed scheduler step, converting panics into job failures
/// so a poisoned candidate cannot take the server down.
fn execute_step(shared: &Shared, id: u64) -> StepOutcome {
    let Some((spec, step, ckpt)) = shared.registry.step_inputs(id) else {
        return StepOutcome::Failed {
            error: format!("job {id} vanished from the registry"),
        };
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_step(shared, id, &spec, step, &ckpt)
    })) {
        Ok(outcome) => outcome,
        Err(panic) => StepOutcome::Failed {
            error: format!("step panicked: {}", panic_message(&panic)),
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

fn run_step(shared: &Shared, id: u64, spec: &JobSpec, step: u64, ckpt: &Path) -> StepOutcome {
    let ctx = match shared.baselines.get(&spec.design) {
        Ok(ctx) => ctx,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    if step == 0 {
        shared
            .registry
            .emit(id, "baseline", None, ggjson::ToJson::to_json(&ctx.summary));
    }
    match spec.kind {
        JobKind::Analyze => run_analyze(&ctx, shared.baselines.tech()),
        JobKind::Harden => run_harden(&ctx, shared.baselines.tech(), spec),
        JobKind::Explore => run_explore_step(shared, id, &ctx, spec, step, ckpt),
    }
}

fn run_analyze(ctx: &DesignContext, tech: &Technology) -> StepOutcome {
    let battery = secmetrics::attack::battery_success_rate(&ctx.base().security, tech);
    let result = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        ("battery_success".to_owned(), Json::Num(battery)),
    ]);
    StepOutcome::Finished {
        generation: None,
        data: result.clone(),
        result,
    }
}

fn run_harden(ctx: &DesignContext, tech: &Technology, spec: &JobSpec) -> StepOutcome {
    let cfg = match spec.op.as_str() {
        "cs" => FlowConfig::cell_shift_default(),
        "lda" => FlowConfig::lda_default(),
        other => {
            return StepOutcome::Failed {
                error: format!("unknown operator '{other}' (expected cs or lda)"),
            }
        }
    };
    // The oracle path (no engine), seed 1: the exact computation the
    // one-shot `ggd harden` has always run.
    let mut hardened = match FlowRun::new(ctx.base(), tech, &cfg).snapshot() {
        Ok(s) => s,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    let metrics = FlowMetrics::from_snapshot(&hardened, ctx.base());
    let battery = secmetrics::attack::battery_success_rate(&hardened.security, tech);
    let mut wrote = Json::Null;
    if let Some(path) = &spec.out {
        // The snapshot's layout is Arc-shared; un-share before mutating.
        let hl = std::sync::Arc::make_mut(&mut hardened.layout);
        layout::insert_fillers(hl.occupancy_mut(), tech);
        let lib = gdsii::layout_to_gds(&hardened.layout, tech, Some(&hardened.routing));
        if let Err(e) = std::fs::write(path, lib.to_bytes()) {
            return StepOutcome::Failed {
                error: format!("cannot write {path}: {e}"),
            };
        }
        wrote = Json::Str(path.clone());
    }
    let result = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        (
            "hardened".to_owned(),
            ggjson::ToJson::to_json(&BaselineSummary::from_snapshot(&hardened)),
        ),
        ("metrics".to_owned(), ggjson::ToJson::to_json(&metrics)),
        ("battery_success".to_owned(), Json::Num(battery)),
        ("wrote".to_owned(), wrote),
    ]);
    StepOutcome::Finished {
        generation: None,
        data: result.clone(),
        result,
    }
}

fn run_explore_step(
    shared: &Shared,
    id: u64,
    ctx: &DesignContext,
    spec: &JobSpec,
    step: u64,
    ckpt: &Path,
) -> StepOutcome {
    let params = Nsga2Params::builder()
        .population(spec.population)
        .generations(spec.generations)
        .seed(spec.seed)
        .threads(spec.threads)
        .build();
    let opts = ExploreOptions {
        checkpoint: Some(ckpt.to_path_buf()),
        resume: step > 0 || spec.resume,
        halt_after: Some(step as usize),
        deadline: None,
    };
    let result = match explore_with_engine(&ctx.engine, shared.baselines.tech(), &params, &opts) {
        Ok(r) => r,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    let data = progress_data(shared, id, &result);
    if step < spec.generations as u64 {
        return StepOutcome::Progress {
            generation: step,
            data,
        };
    }
    // Final generation: assemble the result payload and artifacts.
    let mut wrote = Json::Null;
    if let Some(path) = &spec.out {
        if let Err(e) = std::fs::write(path, ggjson::to_vec_pretty(&result)) {
            return StepOutcome::Failed {
                error: format!("cannot write {path}: {e}"),
            };
        }
        wrote = Json::Str(path.clone());
    }
    let payload = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        ("explore".to_owned(), ggjson::ToJson::to_json(&result)),
        ("wrote".to_owned(), wrote),
    ]);
    StepOutcome::Finished {
        generation: Some(step),
        data,
        result: payload,
    }
}

/// Builds one `generation` event payload: evaluated-point count, front
/// size, front-membership deltas against the previous generation, and —
/// when telemetry is on — the cumulative obs snapshot.
fn progress_data(shared: &Shared, id: u64, result: &ExploreResult) -> Json {
    let front = result.pareto_front();
    let keys: Vec<String> = front
        .iter()
        .map(|p| ggjson::to_string_compact(&p.genome))
        .collect();
    let prev = shared.registry.replace_front(id, keys.clone());
    let added: Vec<String> = keys.iter().filter(|k| !prev.contains(k)).cloned().collect();
    let removed: Vec<String> = prev.iter().filter(|k| !keys.contains(k)).cloned().collect();
    let mut members = vec![
        ("points".to_owned(), Json::Num(result.points.len() as f64)),
        ("front_size".to_owned(), Json::Num(front.len() as f64)),
        ("added".to_owned(), ggjson::ToJson::to_json(&added)),
        ("removed".to_owned(), ggjson::ToJson::to_json(&removed)),
    ];
    let snap = obs::snapshot();
    if !snap.is_empty() {
        if let Some(obs_json) = ggjson::from_str::<Json>(&snap.to_json()) {
            members.push(("obs".to_owned(), obs_json));
        }
    }
    Json::Obj(members)
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    // `incoming` never returns `None`; shutdown is signalled by a flag
    // plus a dummy self-connection that unblocks the accept.
    for conn in listener.incoming() {
        if shared.registry.is_shutdown() {
            break;
        }
        match conn {
            Ok(stream) => {
                let sh = Arc::clone(shared);
                std::thread::spawn(move || handle_conn(&sh, stream));
            }
            Err(_) => continue,
        }
    }
}

fn handle_conn(shared: &Shared, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        if handle_line(shared, &line, &mut writer).is_err() {
            return;
        }
    }
}

fn write_line(writer: &mut UnixStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn handle_line(shared: &Shared, line: &str, writer: &mut UnixStream) -> std::io::Result<()> {
    let req = match Request::from_line(line) {
        Ok(req) => req,
        Err(e) => return write_line(writer, &Response::Err(e.to_string())),
    };
    let reply = |r: Result<Json, String>| match r {
        Ok(payload) => Response::Ok(payload),
        Err(why) => Response::Err(why),
    };
    match req {
        Request::Ping => write_line(writer, &Response::Ok(Json::Str("pong".into()))),
        Request::Jobs => write_line(
            writer,
            &Response::Ok(ggjson::ToJson::to_json(&shared.registry.jobs())),
        ),
        Request::Stats => write_line(
            writer,
            &Response::Ok(ggjson::ToJson::to_json(&collect_stats(shared))),
        ),
        Request::Shutdown => {
            shared.registry.shutdown();
            let out = write_line(writer, &Response::Ok(Json::Str("bye".into())));
            if let Some(path) = &shared.socket_path {
                let _ = UnixStream::connect(path);
            }
            out
        }
        Request::Submit(spec) => {
            let resp = match spec.validate() {
                Err(why) => Response::Err(why),
                Ok(()) => {
                    let checkpoint = match &spec.checkpoint {
                        Some(path) => PathBuf::from(path),
                        None => {
                            let n = shared.ckpt_counter.fetch_add(1, Ordering::Relaxed);
                            shared.data_dir.join(format!("job{n}.ckpt"))
                        }
                    };
                    let id = shared.registry.submit(spec, checkpoint);
                    Response::Ok(Json::Obj(vec![("job".to_owned(), Json::Num(id as f64))]))
                }
            };
            write_line(writer, &resp)
        }
        Request::Status(id) => write_line(
            writer,
            &reply(
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s)),
            ),
        ),
        Request::Pause(id) => write_line(
            writer,
            &reply(shared.registry.pause(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Resume(id) => write_line(
            writer,
            &reply(shared.registry.resume(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Cancel(id) => write_line(
            writer,
            &reply(shared.registry.cancel(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Result(id) => write_line(writer, &reply(shared.registry.result(id))),
        Request::Watch { job, from } => {
            let mut cursor = from;
            loop {
                let (events, terminal) = match shared.registry.events_since(
                    job,
                    cursor,
                    true,
                    Duration::from_millis(200),
                ) {
                    Ok(pair) => pair,
                    Err(why) => return write_line(writer, &Response::Err(why)),
                };
                cursor += events.len() as u64;
                for e in events {
                    write_line(writer, &Response::Event(e))?;
                }
                if terminal {
                    let resp = reply(
                        shared
                            .registry
                            .status(job)
                            .map(|s| ggjson::ToJson::to_json(&s)),
                    );
                    return write_line(writer, &resp);
                }
                if shared.registry.is_shutdown() {
                    return write_line(writer, &Response::Err("server shutting down".to_owned()));
                }
            }
        }
    }
}
