//! The job server: runner threads, step execution, and the socket front
//! end.
//!
//! A [`Server`] owns one job registry and one [`BaselineCache`]. Runner
//! threads pull *scheduler steps* from the registry — one NSGA-II
//! generation of an explore job (via [`crate::nsga2::explore_with_engine`]
//! with `halt_after`), or the whole of an analyze/harden job — so
//! priorities take effect at generation boundaries and a pause/cancel
//! request lands exactly where a checkpoint was just written. Explore
//! jobs are therefore bit-identical across any pause/resume pattern, by
//! the same checkpoint-resume property the kill-matrix test pins.
//!
//! With `runners: 0` nothing runs until [`Server::step_once`] /
//! [`Server::run_until_idle`] — the deterministic mode the scheduler
//! tests drive.
//!
//! **Crash safety and containment** (DESIGN.md §2j): with a
//! `journal_dir` configured, every lifecycle transition is journaled
//! before publication and [`Server::start`] replays the journal —
//! non-terminal jobs re-queue in their original order and explores
//! resume bit-identically from their checkpoints. Runner threads are
//! *supervised*: a runner that dies (thread panic outside the step
//! sandbox) or wedges past `stuck_after` has its in-flight job marked
//! failed and is replaced, so the pool never silently shrinks. Submits
//! beyond `max_queued` or the memory budget are refused with a
//! retryable [`Response::Busy`] instead of growing without bound.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ggjson::Json;
use tech::Technology;

use crate::error::Error;
use crate::flow::{FlowConfig, FlowMetrics, FlowRun};
use crate::nsga2::{explore_with_engine, ExploreOptions, ExploreResult, Nsga2Params};
use crate::serve::baseline::{BaselineCache, DesignContext};
use crate::serve::job::{BaselineSummary, JobEvent, JobKind, JobSpec, JobStatus};
use crate::serve::journal::Journal;
use crate::serve::proto::{Request, Response};
use crate::serve::registry::{Claim, Registry, StepOutcome};

/// How a [`Server`] is stood up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket to listen on; `None` runs in-process only
    /// (submit/watch through the [`Server`] methods).
    pub socket: Option<PathBuf>,
    /// Directory for per-job checkpoint envelopes; `None` uses
    /// `ggd-serve-<pid>` under the system temp directory.
    pub data_dir: Option<PathBuf>,
    /// Runner threads; `0` means no background execution — tests drive
    /// the scheduler with [`Server::step_once`].
    pub runners: usize,
    /// Durable job-journal directory (`GG_JOURNAL_DIR`). `None` runs
    /// volatile: a crash forgets every job.
    pub journal_dir: Option<PathBuf>,
    /// Admission limit on queued jobs (`GG_MAX_QUEUED`); `0` = unlimited.
    /// Submits beyond it get a retryable `Busy` refusal.
    pub max_queued: usize,
    /// Admission memory budget in bytes (`GG_SERVE_MEM_BUDGET`); `0` =
    /// unlimited. Submits are refused while peak RSS or the eval-cache
    /// footprint exceeds it.
    pub mem_budget_bytes: u64,
    /// Watchdog threshold (`GG_STUCK_MS`): a runner whose step exceeds
    /// this wall time is declared wedged — its job fails as stuck and
    /// the runner is replaced. `None` disables stuck detection (dead
    /// runners are still replaced).
    pub stuck_after: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            socket: None,
            data_dir: None,
            runners: 1,
            journal_dir: None,
            max_queued: 0,
            mem_budget_bytes: 0,
            stuck_after: None,
        }
    }
}

/// Scheduler and shared-baseline-cache counters, as returned by `stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Jobs ever submitted.
    pub jobs: u64,
    /// Baseline contexts constructed (one per distinct design, counting
    /// failed builds).
    pub baseline_builds: u64,
    /// Baseline requests served from cache instead of rebuilding.
    pub baseline_hits: u64,
    /// Resident bytes of every cached baseline's occupancy index.
    pub occupancy_bytes: u64,
    /// Usage-plane bytes across cached baselines (routing + Phase-A plan,
    /// Arc-deduplicated per engine).
    pub route_planes_bytes: u64,
    /// Accounted candidate-cache bytes across cached engines (bounded per
    /// engine by `GG_EVAL_CACHE_BYTES`).
    pub eval_cache_bytes: u64,
    /// Process peak resident set (`VmHWM`), 0 where procfs is absent.
    pub peak_rss_bytes: u64,
    /// Jobs currently waiting for a runner slot.
    pub queued: u64,
    /// Submits refused by admission control this server lifetime.
    pub busy_rejects: u64,
    /// Runner threads replaced by the supervisor (died or wedged).
    pub runner_restarts: u64,
    /// Non-terminal jobs re-queued from the journal at startup.
    pub recovered_jobs: u64,
}

ggjson::json_struct!(ServerStats {
    jobs,
    baseline_builds,
    baseline_hits,
    occupancy_bytes,
    route_planes_bytes,
    eval_cache_bytes,
    peak_rss_bytes,
    queued,
    busy_rejects,
    runner_restarts,
    recovered_jobs
});

/// The process high-water resident set in bytes, from
/// `/proc/self/status`; 0 on platforms without procfs.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Assembles the stats payload from the shared server state.
fn collect_stats(shared: &Shared) -> ServerStats {
    let (baseline_builds, baseline_hits) = shared.baselines.stats();
    let mem = shared.baselines.memory_footprint();
    ServerStats {
        jobs: shared.registry.jobs().len() as u64,
        baseline_builds,
        baseline_hits,
        occupancy_bytes: mem.occupancy_bytes,
        route_planes_bytes: mem.route_planes_bytes,
        eval_cache_bytes: mem.cache_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        queued: shared.registry.queued_count() as u64,
        busy_rejects: shared.busy_rejects.load(Ordering::Relaxed),
        runner_restarts: shared.runner_restarts.load(Ordering::Relaxed),
        recovered_jobs: shared.recovered_jobs,
    }
}

struct Shared {
    registry: Registry,
    baselines: BaselineCache,
    data_dir: PathBuf,
    socket_path: Option<PathBuf>,
    ckpt_counter: AtomicU64,
    /// Admission limits (0 = unlimited).
    max_queued: usize,
    mem_budget_bytes: u64,
    busy_rejects: AtomicU64,
    runner_restarts: AtomicU64,
    /// Non-terminal jobs re-queued from the journal at startup.
    recovered_jobs: u64,
}

/// Per-runner heartbeat the supervisor watches: which job the runner is
/// executing and since when, plus the retirement flag that tells an
/// abandoned (wedged) runner not to claim further work if it ever wakes.
#[derive(Default)]
struct Flight {
    busy: Mutex<Option<(u64, Instant)>>,
    retired: AtomicBool,
}

struct RunnerSlot {
    handle: JoinHandle<()>,
    flight: Arc<Flight>,
}

/// Admission gate, checked before a submit enters the queue. Idempotent
/// resubmits (a dedup token the registry already knows) bypass the gate
/// — they map to an existing job, adding no load. Refusals are counted
/// in `serve.busy_rejects` and surface as the retryable `Busy` response.
fn admit(shared: &Shared, spec: &JobSpec) -> Result<(), String> {
    if let Some(tok) = &spec.dedup {
        if shared.registry.lookup_dedup(tok).is_some() {
            return Ok(());
        }
    }
    let refuse = |why: String| {
        shared.busy_rejects.fetch_add(1, Ordering::Relaxed);
        busy_metric().incr();
        Err(why)
    };
    if shared.max_queued > 0 {
        let queued = shared.registry.queued_count();
        if queued >= shared.max_queued {
            return refuse(format!(
                "{queued} jobs queued (limit {})",
                shared.max_queued
            ));
        }
    }
    if shared.mem_budget_bytes > 0 {
        let rss = peak_rss_bytes();
        let cache = shared.baselines.memory_footprint().cache_bytes;
        if rss > shared.mem_budget_bytes || cache > shared.mem_budget_bytes {
            return refuse(format!(
                "memory budget exceeded (peak RSS {rss} B, eval cache {cache} B, budget {} B)",
                shared.mem_budget_bytes
            ));
        }
    }
    Ok(())
}

fn busy_metric() -> &'static obs::Counter {
    use std::sync::OnceLock;
    static M: OnceLock<obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("serve.busy_rejects"))
}

fn restart_metric() -> &'static obs::Counter {
    use std::sync::OnceLock;
    static M: OnceLock<obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("serve.runner_restarts"))
}

/// A running job server. Dropping it without [`Server::stop`] leaves
/// its threads running detached for the rest of the process.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Stands the server up: creates the data directory, binds the
    /// socket (if configured), and spawns the runner threads.
    pub fn start(cfg: ServerConfig) -> Result<Self, Error> {
        // Arm `GG_FAULTS` before the first journal append: the
        // service-level points (`journal.write`, `serve.runner_panic`)
        // fire long before any evaluation sandbox would arm them.
        faults::ensure_init();
        let data_dir = cfg.data_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ggd-serve-{}", std::process::id()))
        });
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| Error::Io(format!("cannot create {}: {e}", data_dir.display())))?;
        let listener =
            match &cfg.socket {
                Some(path) => {
                    // A stale socket file from a dead server blocks bind.
                    let _ = std::fs::remove_file(path);
                    Some(UnixListener::bind(path).map_err(|e| {
                        Error::Serve(format!("cannot bind {}: {e}", path.display()))
                    })?)
                }
                None => None,
            };
        // Replay the journal (if any) before runners exist, so recovery
        // happens against a quiescent registry.
        let (registry, recovered_jobs) = match &cfg.journal_dir {
            Some(dir) => {
                let records = Journal::replay(dir)?;
                let journal = Arc::new(Journal::open(dir)?);
                let registry = Registry::with_journal(Some(journal));
                let stats = registry.recover(&records);
                if stats.jobs > 0 {
                    registry.compact_now();
                    obs::diagln!(
                        "journal: recovered {} job(s) from {} ({} re-queued, {} already terminal)",
                        stats.jobs,
                        dir.display(),
                        stats.requeued,
                        stats.finished
                    );
                }
                (registry, stats.requeued)
            }
            None => (Registry::new(), 0),
        };
        let shared = Arc::new(Shared {
            registry,
            baselines: BaselineCache::new(Technology::nangate45_like()),
            data_dir,
            socket_path: cfg.socket,
            ckpt_counter: AtomicU64::new(0),
            max_queued: cfg.max_queued,
            mem_budget_bytes: cfg.mem_budget_bytes,
            busy_rejects: AtomicU64::new(0),
            runner_restarts: AtomicU64::new(0),
            recovered_jobs,
        });
        let mut threads = Vec::new();
        if cfg.runners > 0 {
            // Runners live under the supervisor, which replaces any that
            // die or wedge; only the supervisor handle is joined on stop.
            let mut slots = Vec::new();
            for i in 0..cfg.runners {
                slots.push(spawn_runner(&shared, i)?);
            }
            let sh = Arc::clone(&shared);
            let stuck_after = cfg.stuck_after;
            threads.push(
                std::thread::Builder::new()
                    .name("ggd-supervisor".to_owned())
                    .spawn(move || supervisor_loop(&sh, slots, stuck_after))
                    .map_err(|e| Error::Serve(format!("cannot spawn supervisor: {e}")))?,
            );
        }
        if let Some(listener) = listener {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ggd-accept".to_owned())
                    .spawn(move || accept_loop(&sh, listener))
                    .map_err(|e| Error::Serve(format!("cannot spawn acceptor: {e}")))?,
            );
        }
        Ok(Self { shared, threads })
    }

    /// Validates and queues a job; returns its id. Refuses with the
    /// retryable [`Error::Busy`] when admission limits are exceeded
    /// (idempotent resubmits bypass the gate).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, Error> {
        spec.validate().map_err(Error::Serve)?;
        admit(&self.shared, &spec).map_err(Error::Busy)?;
        let checkpoint = match &spec.checkpoint {
            Some(path) => PathBuf::from(path),
            None => {
                let n = self.shared.ckpt_counter.fetch_add(1, Ordering::Relaxed);
                self.shared.data_dir.join(format!("job{n}.ckpt"))
            }
        };
        Ok(self.shared.registry.submit(spec, checkpoint))
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, Error> {
        self.shared.registry.status(id).map_err(Error::Serve)
    }

    /// Status of every job, in submit order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        self.shared.registry.jobs()
    }

    /// Parks a job at its next generation boundary (immediately if it is
    /// still queued).
    pub fn pause(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.pause(id).map_err(Error::Serve)
    }

    /// Re-queues a paused job at the back of its priority class.
    pub fn resume(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.resume(id).map_err(Error::Serve)
    }

    /// Cancels a job (at its next generation boundary if running).
    pub fn cancel(&self, id: u64) -> Result<(), Error> {
        self.shared.registry.cancel(id).map_err(Error::Serve)
    }

    /// Final result payload of a done job.
    pub fn result(&self, id: u64) -> Result<Json, Error> {
        self.shared.registry.result(id).map_err(Error::Serve)
    }

    /// Events of job `id` from stream cursor `from`, plus whether the
    /// job is terminal. With `wait`, blocks until news arrives (bounded
    /// by an internal poll interval).
    pub fn events_since(
        &self,
        id: u64,
        from: u64,
        wait: bool,
    ) -> Result<(Vec<JobEvent>, bool), Error> {
        self.shared
            .registry
            .events_since(id, from, wait, Duration::from_millis(200))
            .map_err(Error::Serve)
    }

    /// Scheduler, baseline-cache, and memory-footprint counters.
    pub fn stats(&self) -> ServerStats {
        collect_stats(&self.shared)
    }

    /// Claims and executes exactly one scheduler step on the calling
    /// thread; returns whether there was anything to run. The `runners:
    /// 0` test mode's drive shaft.
    pub fn step_once(&self) -> bool {
        match self.shared.registry.claim_next(false) {
            Claim::Step(id) => {
                let outcome = execute_step(&self.shared, id);
                self.shared.registry.finish_step(id, outcome);
                true
            }
            Claim::Idle | Claim::Shutdown => false,
        }
    }

    /// Runs scheduler steps on the calling thread until no job is queued
    /// or running.
    pub fn run_until_idle(&self) {
        while self.step_once() {}
    }

    /// Whether any job is queued or running.
    pub fn has_live_work(&self) -> bool {
        self.shared.registry.has_live_work()
    }

    /// Begins shutdown without waiting: runners exit at their next
    /// claim, watchers drain, the acceptor unblocks.
    pub fn begin_shutdown(&self) {
        self.shared.registry.shutdown();
        if let Some(path) = &self.shared.socket_path {
            // Unblock the acceptor's blocking `accept`.
            let _ = UnixStream::connect(path);
        }
    }

    /// Blocks until the server shuts down (a client sends `shutdown`,
    /// or another thread calls [`Server::begin_shutdown`]), then joins
    /// every thread and removes the socket file. Daemon mode.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.shared.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Shuts down and joins: [`Server::begin_shutdown`] + [`Server::wait`].
    pub fn stop(self) {
        self.begin_shutdown();
        self.wait();
    }
}

fn spawn_runner(shared: &Arc<Shared>, idx: usize) -> Result<RunnerSlot, Error> {
    let flight = Arc::new(Flight::default());
    let sh = Arc::clone(shared);
    let fl = Arc::clone(&flight);
    let handle = std::thread::Builder::new()
        .name(format!("ggd-runner-{idx}"))
        .spawn(move || runner_loop(&sh, &fl))
        .map_err(|e| Error::Serve(format!("cannot spawn runner: {e}")))?;
    Ok(RunnerSlot { handle, flight })
}

fn runner_loop(shared: &Shared, flight: &Flight) {
    // Deterministic drill: kills the runner *thread* (outside the step
    // sandbox) to exercise the supervisor's died-runner path.
    static RUNNER_PANIC: faults::Point = faults::Point::new("serve.runner_panic");
    loop {
        if flight.retired.load(Ordering::Relaxed) {
            break;
        }
        match shared.registry.claim_next(true) {
            Claim::Shutdown => break,
            Claim::Idle => {}
            Claim::Step(id) => {
                *flight.busy.lock().unwrap_or_else(|p| p.into_inner()) = Some((id, Instant::now()));
                if RUNNER_PANIC.fires_external(id) {
                    std::panic::panic_any(faults::FaultPayload::Injected {
                        point: "serve.runner_panic",
                    });
                }
                let outcome = execute_step(shared, id);
                *flight.busy.lock().unwrap_or_else(|p| p.into_inner()) = None;
                shared.registry.finish_step(id, outcome);
            }
        }
    }
}

/// Watches the runner pool: joins and replaces runners whose thread
/// died (failing their in-flight job), and — with a `stuck_after`
/// threshold — retires runners wedged past the heartbeat, failing the
/// stuck job and abandoning the thread (the `retired` flag plus the
/// registry's late-outcome guard contain it if it ever wakes).
fn supervisor_loop(
    shared: &Arc<Shared>,
    mut slots: Vec<RunnerSlot>,
    stuck_after: Option<Duration>,
) {
    let mut next_idx = slots.len();
    loop {
        if shared.registry.is_shutdown() {
            for slot in slots {
                slot.flight.retired.store(true, Ordering::Relaxed);
                let _ = slot.handle.join();
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
        for slot in &mut slots {
            let died = slot.handle.is_finished();
            let stuck = !died
                && stuck_after.is_some_and(|limit| {
                    matches!(
                        *slot.flight.busy.lock().unwrap_or_else(|p| p.into_inner()),
                        Some((_, t0)) if t0.elapsed() > limit
                    )
                });
            if !died && !stuck {
                continue;
            }
            if died && shared.registry.is_shutdown() {
                continue; // normal exit, handled by the join above
            }
            let Ok(fresh) = spawn_runner(shared, next_idx) else {
                obs::diagln!("supervisor: cannot respawn runner; retrying");
                continue;
            };
            next_idx += 1;
            let old = std::mem::replace(slot, fresh);
            old.flight.retired.store(true, Ordering::Relaxed);
            let in_flight = old
                .flight
                .busy
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take();
            if died {
                let _ = old.handle.join(); // collect the panic
                if let Some((job, _)) = in_flight {
                    shared.registry.finish_step(
                        job,
                        StepOutcome::Failed {
                            error: "runner thread died mid-step (runner restarted)".into(),
                        },
                    );
                }
                obs::diagln!("supervisor: runner died; pool restored");
            } else {
                // Wedged: the thread cannot be joined — abandon it. Its
                // eventual finish_step is dropped by the late-outcome
                // guard, and the retired flag stops further claims.
                if let Some((job, t0)) = in_flight {
                    shared.registry.finish_step(
                        job,
                        StepOutcome::Failed {
                            error: format!(
                                "stuck: step exceeded the {} ms watchdog (ran {} ms); \
                                 runner restarted",
                                stuck_after.map_or(0, |d| d.as_millis()),
                                t0.elapsed().as_millis()
                            ),
                        },
                    );
                }
                drop(old.handle);
                obs::diagln!("supervisor: runner wedged; abandoned and replaced");
            }
            shared.runner_restarts.fetch_add(1, Ordering::Relaxed);
            restart_metric().incr();
        }
    }
}

/// Runs one claimed scheduler step, converting panics into job failures
/// so a poisoned candidate cannot take the server down.
fn execute_step(shared: &Shared, id: u64) -> StepOutcome {
    let Some((spec, step, ckpt)) = shared.registry.step_inputs(id) else {
        return StepOutcome::Failed {
            error: format!("job {id} vanished from the registry"),
        };
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_step(shared, id, &spec, step, &ckpt)
    })) {
        Ok(outcome) => outcome,
        Err(panic) => StepOutcome::Failed {
            error: format!("step panicked: {}", panic_message(&panic)),
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(fp) = faults::payload_of(panic) {
        return match fp {
            faults::FaultPayload::Injected { point } => format!("injected fault at {point}"),
            faults::FaultPayload::DeadlineExceeded { budget_ms } => {
                format!("deadline exceeded ({budget_ms} ms budget)")
            }
        };
    }
    panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

fn run_step(shared: &Shared, id: u64, spec: &JobSpec, step: u64, ckpt: &Path) -> StepOutcome {
    let ctx = match shared.baselines.get(&spec.design) {
        Ok(ctx) => ctx,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    if step == 0 {
        shared
            .registry
            .emit(id, "baseline", None, ggjson::ToJson::to_json(&ctx.summary));
    }
    match spec.kind {
        JobKind::Analyze => run_analyze(&ctx, shared.baselines.tech()),
        JobKind::Harden => run_harden(&ctx, shared.baselines.tech(), spec),
        JobKind::Explore => run_explore_step(shared, id, &ctx, spec, step, ckpt),
    }
}

fn run_analyze(ctx: &DesignContext, tech: &Technology) -> StepOutcome {
    let battery = secmetrics::attack::battery_success_rate(&ctx.base().security, tech);
    let result = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        ("battery_success".to_owned(), Json::Num(battery)),
    ]);
    StepOutcome::Finished {
        generation: None,
        data: result.clone(),
        result,
    }
}

fn run_harden(ctx: &DesignContext, tech: &Technology, spec: &JobSpec) -> StepOutcome {
    let cfg = match spec.op.as_str() {
        "cs" => FlowConfig::cell_shift_default(),
        "lda" => FlowConfig::lda_default(),
        other => {
            return StepOutcome::Failed {
                error: format!("unknown operator '{other}' (expected cs or lda)"),
            }
        }
    };
    // The oracle path (no engine), seed 1: the exact computation the
    // one-shot `ggd harden` has always run.
    let mut hardened = match FlowRun::new(ctx.base(), tech, &cfg).snapshot() {
        Ok(s) => s,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    let metrics = FlowMetrics::from_snapshot(&hardened, ctx.base());
    let battery = secmetrics::attack::battery_success_rate(&hardened.security, tech);
    let mut wrote = Json::Null;
    if let Some(path) = &spec.out {
        // The snapshot's layout is Arc-shared; un-share before mutating.
        let hl = std::sync::Arc::make_mut(&mut hardened.layout);
        layout::insert_fillers(hl.occupancy_mut(), tech);
        let lib = gdsii::layout_to_gds(&hardened.layout, tech, Some(&hardened.routing));
        if let Err(e) = std::fs::write(path, lib.to_bytes()) {
            return StepOutcome::Failed {
                error: format!("cannot write {path}: {e}"),
            };
        }
        wrote = Json::Str(path.clone());
    }
    let result = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        (
            "hardened".to_owned(),
            ggjson::ToJson::to_json(&BaselineSummary::from_snapshot(&hardened)),
        ),
        ("metrics".to_owned(), ggjson::ToJson::to_json(&metrics)),
        ("battery_success".to_owned(), Json::Num(battery)),
        ("wrote".to_owned(), wrote),
    ]);
    StepOutcome::Finished {
        generation: None,
        data: result.clone(),
        result,
    }
}

fn run_explore_step(
    shared: &Shared,
    id: u64,
    ctx: &DesignContext,
    spec: &JobSpec,
    step: u64,
    ckpt: &Path,
) -> StepOutcome {
    let params = Nsga2Params::builder()
        .population(spec.population)
        .generations(spec.generations)
        .seed(spec.seed)
        .threads(spec.threads)
        .build();
    let opts = ExploreOptions {
        checkpoint: Some(ckpt.to_path_buf()),
        resume: step > 0 || spec.resume,
        halt_after: Some(step as usize),
        // Cooperative per-candidate budget: a wedged evaluation trips
        // its own deadline long before the supervisor's watchdog has to
        // declare the whole runner stuck.
        deadline: crate::sandbox::SandboxPolicy::from_env().deadline,
    };
    let result = match explore_with_engine(&ctx.engine, shared.baselines.tech(), &params, &opts) {
        Ok(r) => r,
        Err(e) => {
            return StepOutcome::Failed {
                error: e.to_string(),
            }
        }
    };
    let data = progress_data(shared, id, &result);
    if step < spec.generations as u64 {
        return StepOutcome::Progress {
            generation: step,
            data,
        };
    }
    // Final generation: assemble the result payload and artifacts.
    let mut wrote = Json::Null;
    if let Some(path) = &spec.out {
        if let Err(e) = std::fs::write(path, ggjson::to_vec_pretty(&result)) {
            return StepOutcome::Failed {
                error: format!("cannot write {path}: {e}"),
            };
        }
        wrote = Json::Str(path.clone());
    }
    let payload = Json::Obj(vec![
        ("baseline".to_owned(), ggjson::ToJson::to_json(&ctx.summary)),
        ("explore".to_owned(), ggjson::ToJson::to_json(&result)),
        ("wrote".to_owned(), wrote),
    ]);
    StepOutcome::Finished {
        generation: Some(step),
        data,
        result: payload,
    }
}

/// Builds one `generation` event payload: evaluated-point count, front
/// size, front-membership deltas against the previous generation, and —
/// when telemetry is on — the cumulative obs snapshot.
fn progress_data(shared: &Shared, id: u64, result: &ExploreResult) -> Json {
    let front = result.pareto_front();
    let keys: Vec<String> = front
        .iter()
        .map(|p| ggjson::to_string_compact(&p.genome))
        .collect();
    let prev = shared.registry.replace_front(id, keys.clone());
    let added: Vec<String> = keys.iter().filter(|k| !prev.contains(k)).cloned().collect();
    let removed: Vec<String> = prev.iter().filter(|k| !keys.contains(k)).cloned().collect();
    let mut members = vec![
        ("points".to_owned(), Json::Num(result.points.len() as f64)),
        ("front_size".to_owned(), Json::Num(front.len() as f64)),
        ("added".to_owned(), ggjson::ToJson::to_json(&added)),
        ("removed".to_owned(), ggjson::ToJson::to_json(&removed)),
    ];
    let snap = obs::snapshot();
    if !snap.is_empty() {
        if let Some(obs_json) = ggjson::from_str::<Json>(&snap.to_json()) {
            members.push(("obs".to_owned(), obs_json));
        }
    }
    Json::Obj(members)
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    // `incoming` never returns `None`; shutdown is signalled by a flag
    // plus a dummy self-connection that unblocks the accept.
    for conn in listener.incoming() {
        if shared.registry.is_shutdown() {
            break;
        }
        match conn {
            Ok(stream) => {
                let sh = Arc::clone(shared);
                std::thread::spawn(move || handle_conn(&sh, stream));
            }
            Err(_) => continue,
        }
    }
}

fn handle_conn(shared: &Shared, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        if handle_line(shared, &line, &mut writer).is_err() {
            return;
        }
    }
}

fn write_line(writer: &mut UnixStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn handle_line(shared: &Shared, line: &str, writer: &mut UnixStream) -> std::io::Result<()> {
    let req = match Request::from_line(line) {
        Ok(req) => req,
        Err(e) => return write_line(writer, &Response::Err(e.to_string())),
    };
    let reply = |r: Result<Json, String>| match r {
        Ok(payload) => Response::Ok(payload),
        Err(why) => Response::Err(why),
    };
    match req {
        Request::Ping => write_line(writer, &Response::Ok(Json::Str("pong".into()))),
        Request::Jobs => write_line(
            writer,
            &Response::Ok(ggjson::ToJson::to_json(&shared.registry.jobs())),
        ),
        Request::Stats => write_line(
            writer,
            &Response::Ok(ggjson::ToJson::to_json(&collect_stats(shared))),
        ),
        Request::Shutdown => {
            shared.registry.shutdown();
            let out = write_line(writer, &Response::Ok(Json::Str("bye".into())));
            if let Some(path) = &shared.socket_path {
                let _ = UnixStream::connect(path);
            }
            out
        }
        Request::Submit(spec) => {
            let resp = match spec.validate() {
                Err(why) => Response::Err(why),
                Ok(()) => match admit(shared, &spec) {
                    Err(why) => Response::Busy(why),
                    Ok(()) => {
                        let checkpoint = match &spec.checkpoint {
                            Some(path) => PathBuf::from(path),
                            None => {
                                let n = shared.ckpt_counter.fetch_add(1, Ordering::Relaxed);
                                shared.data_dir.join(format!("job{n}.ckpt"))
                            }
                        };
                        let id = shared.registry.submit(spec, checkpoint);
                        Response::Ok(Json::Obj(vec![("job".to_owned(), Json::Num(id as f64))]))
                    }
                },
            };
            write_line(writer, &resp)
        }
        Request::Status(id) => write_line(
            writer,
            &reply(
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s)),
            ),
        ),
        Request::Pause(id) => write_line(
            writer,
            &reply(shared.registry.pause(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Resume(id) => write_line(
            writer,
            &reply(shared.registry.resume(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Cancel(id) => write_line(
            writer,
            &reply(shared.registry.cancel(id).and_then(|()| {
                shared
                    .registry
                    .status(id)
                    .map(|s| ggjson::ToJson::to_json(&s))
            })),
        ),
        Request::Result(id) => write_line(writer, &reply(shared.registry.result(id))),
        Request::Watch { job, from } => {
            let mut cursor = from;
            loop {
                let (events, terminal) = match shared.registry.events_since(
                    job,
                    cursor,
                    true,
                    Duration::from_millis(200),
                ) {
                    Ok(pair) => pair,
                    Err(why) => return write_line(writer, &Response::Err(why)),
                };
                cursor += events.len() as u64;
                for e in events {
                    write_line(writer, &Response::Event(e))?;
                }
                if terminal {
                    let resp = reply(
                        shared
                            .registry
                            .status(job)
                            .map(|s| ggjson::ToJson::to_json(&s)),
                    );
                    return write_line(writer, &resp);
                }
                if shared.registry.is_shutdown() {
                    return write_line(writer, &Response::Err("server shutting down".to_owned()));
                }
            }
        }
    }
}
