//! Exploration-as-a-service: the `ggd serve` job daemon.
//!
//! The one-shot CLI builds a design's baseline, runs one command, and
//! throws the baseline away. This module turns the same pipeline into a
//! long-lived **job server**: clients submit explore/harden/analyze jobs
//! over a Unix-domain socket (or in process), a scheduler feeds them to
//! runner threads by priority, and every job over the same design shares
//! one lazily-built [`baseline::BaselineCache`] entry — baseline
//! placement, routing, STA graph, and power model are built once per
//! design per server lifetime, not once per command.
//!
//! The moving parts:
//!
//! - [`job`] — versioned [`JobSpec`]s ([`JOB_SPEC_VERSION`]), the
//!   lifecycle state machine ([`JobState`]), and the per-job event
//!   stream ([`JobEvent`]).
//! - `registry` *(internal)* — queue and state transitions: strict
//!   priority, FIFO within a class, pause/cancel landing at generation
//!   boundaries.
//! - [`baseline`] — the per-design shared [`baseline::DesignContext`]
//!   (spec + evaluation engine + headline summary).
//! - [`server`] — runner threads and the socket front end. Explore jobs
//!   are **generation-stepped**: each scheduler step runs exactly one
//!   NSGA-II generation via [`crate::nsga2::explore_with_engine`] with
//!   `halt_after`, persisting the standard checkpoint envelope, so
//!   pause/resume/cancel reuse [`crate::checkpoint`] verbatim and a
//!   paused-and-resumed job is bit-identical to an uninterrupted one.
//! - [`journal`] — the durable job journal: a checksummed write-ahead
//!   log of lifecycle transitions. On restart the server replays it,
//!   re-queues non-terminal jobs in original order, and resumes explores
//!   from their per-job checkpoints bit-identically (DESIGN.md §2j).
//! - [`proto`] — the newline-delimited `ggjson` wire protocol
//!   ([`proto::PROTO_VERSION`], message table in the module docs).
//! - [`client`] — the typed client the `ggd` subcommands wrap, with
//!   bounded jittered-backoff retries, reconnection, and idempotent
//!   submits via dedup tokens.
//!
//! ```no_run
//! use gdsii_guard::serve::{Client, JobSpec, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     socket: Some("/tmp/ggd.sock".into()),
//!     ..ServerConfig::default()
//! })?;
//! let mut client = Client::connect(std::path::Path::new("/tmp/ggd.sock"))?;
//! let job = client.submit(&JobSpec::explore("TINY"))?;
//! let status = client.watch(job, 0, |e| eprintln!("[{}] {}", e.tick, e.kind))?;
//! println!("{:?}", status.state);
//! server.stop();
//! # Ok::<(), gdsii_guard::Error>(())
//! ```

pub mod baseline;
pub mod client;
pub mod job;
pub mod journal;
pub mod proto;
pub(crate) mod registry;
pub mod server;

pub use baseline::{BaselineCache, DesignContext};
pub use client::{Client, RetryPolicy};
pub use job::{BaselineSummary, JobEvent, JobKind, JobSpec, JobState, JobStatus, JOB_SPEC_VERSION};
pub use journal::{Journal, JournalRecord};
pub use server::{Server, ServerConfig, ServerStats};
