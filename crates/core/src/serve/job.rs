//! The job model of the exploration service: versioned job specs, the
//! lifecycle state machine, and the per-job event stream.

use ggjson::{FromJson, Json, ToJson};

use crate::pipeline::Snapshot;

/// Job-spec format version, accepted by [`crate::serve::Server`] submits.
///
/// Versioned alongside the checkpoint envelope
/// ([`crate::checkpoint::FORMAT_VERSION`]): a job's pause/resume state is
/// persisted as checkpoint envelopes, so a spec-version bump that changes
/// how jobs are stepped must be accompanied by (or at least audited
/// against) the checkpoint format. A submit carrying a different version
/// is refused with a typed error instead of being misinterpreted.
///
/// History: v2 added the `dedup` idempotency token (`ggjson` structs
/// require every key on the wire, so adding a field is a breaking wire
/// change even when semantically optional).
pub const JOB_SPEC_VERSION: u32 = 2;

/// What a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// NSGA-II Pareto exploration, generation-stepped and pausable.
    Explore,
    /// One flow config applied and evaluated (optionally exported as
    /// GDSII server-side).
    Harden,
    /// Baseline implementation and metrics only.
    Analyze,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Explore => "explore",
            JobKind::Harden => "harden",
            JobKind::Analyze => "analyze",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "explore" => Some(JobKind::Explore),
            "harden" => Some(JobKind::Harden),
            "analyze" => Some(JobKind::Analyze),
            _ => None,
        }
    }
}

impl ToJson for JobKind {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for JobKind {
    fn from_json(j: &Json) -> Option<Self> {
        JobKind::from_name(j.as_str()?)
    }
}

/// One queued unit of work, as submitted over the wire.
///
/// Construct with [`JobSpec::explore`] / [`JobSpec::harden`] /
/// [`JobSpec::analyze`] and override fields as needed; the defaults
/// mirror the historical `ggd` one-shot CLI (population 10, 3
/// generations, the NSGA-II builder seed).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Spec format version; must equal [`JOB_SPEC_VERSION`].
    pub version: u32,
    /// What to run.
    pub kind: JobKind,
    /// Benchmark design name (`netlist::bench` spec, or `TINY`).
    pub design: String,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: u8,
    /// NSGA-II population (explore only).
    pub population: usize,
    /// NSGA-II generations after the initial population (explore only).
    pub generations: usize,
    /// Exploration RNG seed (explore only).
    pub seed: u64,
    /// Evaluation worker threads per scheduler step; 0 = auto.
    pub threads: usize,
    /// Harden operator: `cs` or `lda` (harden only; ignored otherwise).
    pub op: String,
    /// Server-side output path: exported GDSII for harden, Pareto-front
    /// JSON for explore.
    pub out: Option<String>,
    /// Explicit checkpoint path; `None` uses a per-job file under the
    /// server's data directory.
    pub checkpoint: Option<String>,
    /// Resume from `checkpoint` if it already holds a compatible run.
    pub resume: bool,
    /// Idempotency token: a resubmit carrying a token the server has
    /// already seen returns the existing job's id instead of queueing a
    /// duplicate, making client-side submit retries safe. Tokens survive
    /// restarts via the job journal. `None` disables deduplication.
    pub dedup: Option<String>,
}

ggjson::json_struct!(JobSpec {
    version,
    kind,
    design,
    priority,
    population,
    generations,
    seed,
    threads,
    op,
    out,
    checkpoint,
    resume,
    dedup
});

impl JobSpec {
    fn base(kind: JobKind, design: &str) -> Self {
        Self {
            version: JOB_SPEC_VERSION,
            kind,
            design: design.to_owned(),
            priority: 0,
            population: 10,
            generations: 3,
            seed: crate::nsga2::Nsga2Params::builder().build().seed,
            threads: 0,
            op: String::new(),
            out: None,
            checkpoint: None,
            resume: false,
            dedup: None,
        }
    }

    /// An exploration job over `design` with the historical CLI defaults.
    pub fn explore(design: &str) -> Self {
        Self::base(JobKind::Explore, design)
    }

    /// A harden job applying operator `op` (`cs` or `lda`) to `design`.
    pub fn harden(design: &str, op: &str) -> Self {
        Self {
            op: op.to_owned(),
            ..Self::base(JobKind::Harden, design)
        }
    }

    /// A baseline-metrics job over `design`.
    pub fn analyze(design: &str) -> Self {
        Self::base(JobKind::Analyze, design)
    }

    /// Structural validation a server performs before queueing: version
    /// match, non-empty design, a known harden operator, and a non-zero
    /// population.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != JOB_SPEC_VERSION {
            return Err(format!(
                "job-spec version {} (this server speaks {JOB_SPEC_VERSION})",
                self.version
            ));
        }
        if self.design.is_empty() {
            return Err("job spec names no design".into());
        }
        if self.kind == JobKind::Harden && !matches!(self.op.as_str(), "cs" | "lda") {
            return Err(format!(
                "unknown harden operator '{}' (expected cs or lda)",
                self.op
            ));
        }
        if self.kind == JobKind::Explore && self.population == 0 {
            return Err("explore population must be at least 1".into());
        }
        Ok(())
    }
}

/// Job lifecycle states.
///
/// ```text
/// queued → running → done | failed
///    ↑        ↓ (generation boundary)
///    └───── paused           any non-terminal → cancelled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a runner slot.
    Queued,
    /// A runner is executing a scheduler step of this job.
    Running,
    /// Parked at a generation boundary; resume re-queues it.
    Paused,
    /// Completed; the result payload is available.
    Done,
    /// A step failed; the diagnostic is recorded.
    Failed,
    /// Cancelled while queued, paused, or at a generation boundary.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state admits no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl ToJson for JobState {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for JobState {
    fn from_json(j: &Json) -> Option<Self> {
        match j.as_str()? {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "paused" => Some(JobState::Paused),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }
}

/// One entry of a job's event stream, as delivered by `watch`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Position in this job's stream (0-based, contiguous).
    pub seq: u64,
    /// Server-global monotone ordering tick across *all* jobs — two
    /// events' ticks order them even across different jobs.
    pub tick: u64,
    /// Event kind: `queued`, `started`, `baseline`, `generation`,
    /// `paused`, `resumed`, `done`, `failed`, `cancelled`.
    pub kind: String,
    /// Completed generation index for `generation` events.
    pub generation: Option<u64>,
    /// Kind-specific payload (progress counters, Pareto-front deltas,
    /// obs snapshots, baseline summaries, diagnostics).
    pub data: Json,
}

ggjson::json_struct!(JobEvent {
    seq,
    tick,
    kind,
    generation,
    data
});

/// A point-in-time view of one job, as returned by `status` and `jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Lifecycle state (wire name).
    pub state: JobState,
    /// Job kind.
    pub kind: JobKind,
    /// Design name.
    pub design: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Completed scheduler steps (for explore: completed generations,
    /// counting the initial population as step 1).
    pub steps_done: u64,
    /// Total scheduler steps the job will run.
    pub steps_total: u64,
    /// Events emitted so far (the `from` cursor for `watch`).
    pub events: u64,
    /// The failure diagnostic, for `failed` jobs.
    pub error: Option<String>,
}

ggjson::json_struct!(JobStatus {
    id,
    state,
    kind,
    design,
    priority,
    steps_done,
    steps_total,
    events,
    error
});

/// The baseline headline metrics of a design, as printed by `ggd` and
/// attached to each job's `baseline` event.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSummary {
    /// Placed cells.
    pub cells: u64,
    /// Free placement sites over exploitable regions.
    pub er_sites: u64,
    /// Exploitable regions.
    pub regions: u64,
    /// Free routing tracks over exploitable regions.
    pub er_tracks: f64,
    /// Total negative slack, ps.
    pub tns_ps: f64,
    /// Worst negative slack, ps.
    pub wns_ps: f64,
    /// Total power, mW.
    pub power_mw: f64,
    /// DRC violations.
    pub drc: u32,
    /// Core utilization in [0, 1].
    pub utilization: f64,
}

ggjson::json_struct!(BaselineSummary {
    cells,
    er_sites,
    regions,
    er_tracks,
    tns_ps,
    wns_ps,
    power_mw,
    drc,
    utilization
});

impl BaselineSummary {
    /// Extracts the summary from an evaluated snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        Self {
            cells: s.layout.design().cells.len() as u64,
            er_sites: s.security.er_sites,
            regions: s.security.regions.len() as u64,
            er_tracks: s.security.er_tracks,
            tns_ps: s.tns_ps(),
            wns_ps: s.timing.wns_ps(),
            power_mw: s.power_mw(),
            drc: s.drc,
            utilization: s.layout.utilization(),
        }
    }

    /// Renders the two-line human summary `ggd` has always printed.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}: {} cells, {} exploitable sites in {} regions, {:.0} free tracks\n  \
             TNS {:.1} ps (WNS {:.1}), power {:.3} mW, {} DRC violations, utilization {:.1} %",
            self.cells,
            self.er_sites,
            self.regions,
            self.er_tracks,
            self.tns_ps,
            self.wns_ps,
            self.power_mw,
            self.drc,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_validates() {
        let mut spec = JobSpec::explore("TINY");
        spec.population = 6;
        spec.generations = 2;
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
        assert_eq!(spec.validate(), Ok(()));

        let mut wrong = spec.clone();
        wrong.version = 99;
        assert!(wrong.validate().is_err());
        let mut bad_op = JobSpec::harden("TINY", "nope");
        assert!(bad_op.validate().is_err());
        bad_op.op = "lda".into();
        assert_eq!(bad_op.validate(), Ok(()));
    }

    #[test]
    fn states_classify_terminals() {
        for s in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert!(s.is_terminal());
            assert_eq!(JobState::from_json(&s.to_json()), Some(s));
        }
        for s in [JobState::Queued, JobState::Running, JobState::Paused] {
            assert!(!s.is_terminal());
            assert_eq!(JobState::from_json(&s.to_json()), Some(s));
        }
    }

    #[test]
    fn event_round_trips() {
        let e = JobEvent {
            seq: 3,
            tick: 17,
            kind: "generation".into(),
            generation: Some(2),
            data: Json::Obj(vec![("points".into(), Json::Num(12.0))]),
        };
        assert_eq!(JobEvent::from_json(&e.to_json()), Some(e));
    }
}
