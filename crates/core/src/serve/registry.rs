//! The job registry: queue, lifecycle state machine, and event streams.
//!
//! One mutex guards all scheduling state; a condvar wakes runner threads
//! when work arrives and `watch` readers when events land. Scheduling
//! order is **priority descending, then submit order ascending** —
//! strict priorities with FIFO inside each class. Runners claim one
//! *scheduler step* at a time (one generation of an explore job, or the
//! whole of an analyze/harden job), so a high-priority submit preempts a
//! long-running low-priority explore at its next generation boundary
//! without killing it.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use ggjson::Json;

use crate::serve::job::{JobEvent, JobKind, JobSpec, JobState, JobStatus};

/// Everything the registry tracks about one job.
pub(crate) struct Job {
    pub spec: JobSpec,
    pub state: JobState,
    /// Submit-order tiebreaker inside a priority class.
    pub seq: u64,
    /// Next scheduler step to run (for explore: the generation index
    /// handed to `halt_after`).
    pub next_step: u64,
    /// Total scheduler steps this job runs.
    pub total_steps: u64,
    pub pause_requested: bool,
    pub cancel_requested: bool,
    /// Set by `resume`; the next claim emits a `resumed` event.
    pub resumed_pending: bool,
    pub events: Vec<JobEvent>,
    pub result: Option<Json>,
    pub error: Option<String>,
    /// Checkpoint envelope backing pause/resume for this job.
    pub checkpoint: PathBuf,
    /// Pareto-front member keys as of the last generation, for computing
    /// streamed front deltas.
    pub front_keys: Vec<String>,
}

/// What a runner's completed step did to its job.
pub(crate) enum StepOutcome {
    /// One generation finished; the job stays alive. The payload becomes
    /// a `generation` event.
    Progress { generation: u64, data: Json },
    /// The job produced its final result. `data` becomes the `done`
    /// event payload (the full result is fetched via `result`).
    Finished {
        generation: Option<u64>,
        data: Json,
        result: Json,
    },
    /// The step failed; the job is dead.
    Failed { error: String },
}

/// What `claim_next` handed out.
pub(crate) enum Claim {
    /// Run one step of this job.
    Step(u64),
    /// Nothing runnable right now.
    Idle,
    /// The registry is shutting down; the runner should exit.
    Shutdown,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    next_seq: u64,
    /// Server-global event tick (total order across all jobs).
    next_tick: u64,
    shutdown: bool,
}

impl Inner {
    fn push_event(&mut self, id: u64, kind: &str, generation: Option<u64>, data: Json) {
        let tick = self.next_tick;
        if let Some(job) = self.jobs.get_mut(&id) {
            self.next_tick += 1;
            job.events.push(JobEvent {
                seq: job.events.len() as u64,
                tick,
                kind: kind.to_owned(),
                generation,
                data,
            });
        }
    }
}

pub(crate) struct Registry {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Registry {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 1,
                next_seq: 0,
                next_tick: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Queues a validated spec; returns the job id.
    pub fn submit(&self, spec: JobSpec, checkpoint: PathBuf) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let total_steps = match spec.kind {
            // Steps 0..=generations: the initial population counts as one.
            JobKind::Explore => spec.generations as u64 + 1,
            _ => 1,
        };
        inner.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                seq,
                next_step: 0,
                total_steps,
                pause_requested: false,
                cancel_requested: false,
                resumed_pending: false,
                events: Vec::new(),
                result: None,
                error: None,
                checkpoint,
                front_keys: Vec::new(),
            },
        );
        inner.push_event(id, "queued", None, Json::Null);
        drop(inner);
        self.cv.notify_all();
        id
    }

    /// Claims the highest-priority queued job and marks it running.
    /// With `block`, waits until a job is runnable or shutdown begins.
    pub fn claim_next(&self, block: bool) -> Claim {
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return Claim::Shutdown;
            }
            let pick = inner
                .jobs
                .iter()
                .filter(|(_, j)| j.state == JobState::Queued)
                .min_by_key(|(_, j)| (std::cmp::Reverse(j.spec.priority), j.seq))
                .map(|(id, _)| *id);
            if let Some(id) = pick {
                let (first_step, resumed) = match inner.jobs.get_mut(&id) {
                    Some(job) => {
                        job.state = JobState::Running;
                        let resumed = std::mem::take(&mut job.resumed_pending);
                        (job.next_step == 0, resumed)
                    }
                    None => continue,
                };
                if resumed {
                    inner.push_event(id, "resumed", None, Json::Null);
                } else if first_step {
                    inner.push_event(id, "started", None, Json::Null);
                }
                drop(inner);
                self.cv.notify_all();
                return Claim::Step(id);
            }
            if !block {
                return Claim::Idle;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Applies a completed step's outcome and the pending pause/cancel
    /// requests, in that order of precedence: cancel > pause > continue.
    pub fn finish_step(&self, id: u64, outcome: StepOutcome) {
        let mut inner = self.lock();
        match outcome {
            StepOutcome::Failed { error } => {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Failed;
                    job.error = Some(error.clone());
                }
                inner.push_event(id, "failed", None, Json::Str(error));
            }
            StepOutcome::Finished {
                generation,
                data,
                result,
            } => {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.next_step += 1;
                    job.result = Some(result);
                    job.state = JobState::Done;
                }
                inner.push_event(id, "done", generation, data);
            }
            StepOutcome::Progress { generation, data } => {
                let follow_up = match inner.jobs.get_mut(&id) {
                    Some(job) => {
                        job.next_step += 1;
                        if job.cancel_requested {
                            job.state = JobState::Cancelled;
                            Some("cancelled")
                        } else if job.pause_requested {
                            job.pause_requested = false;
                            job.state = JobState::Paused;
                            Some("paused")
                        } else {
                            job.state = JobState::Queued;
                            None
                        }
                    }
                    None => None,
                };
                inner.push_event(id, "generation", Some(generation), data);
                if let Some(kind) = follow_up {
                    inner.push_event(id, kind, None, Json::Null);
                }
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Requests a pause: queued jobs park immediately, running jobs park
    /// at their next generation boundary.
    pub fn pause(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let newly_paused = match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Queued => {
                    job.state = JobState::Paused;
                    true
                }
                JobState::Running => {
                    job.pause_requested = true;
                    false
                }
                JobState::Paused => false,
                s => return Err(format!("cannot pause a {} job", s.as_str())),
            },
            None => return Err(format!("no job {id}")),
        };
        if newly_paused {
            inner.push_event(id, "paused", None, Json::Null);
        }
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Re-queues a paused job. It re-enters the back of its priority
    /// class (a fresh submit-order ticket, FIFO fairness preserved).
    pub fn resume(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Paused => {
                    job.state = JobState::Queued;
                    job.seq = seq;
                    job.resumed_pending = true;
                }
                JobState::Queued | JobState::Running => {
                    // Un-park a pause that has not landed yet.
                    job.pause_requested = false;
                }
                s => return Err(format!("cannot resume a {} job", s.as_str())),
            },
            None => return Err(format!("no job {id}")),
        }
        inner.next_seq += 1;
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Requests cancellation: queued/paused jobs die immediately, running
    /// jobs die at their next generation boundary.
    pub fn cancel(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let now_cancelled = match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Queued | JobState::Paused => {
                    job.state = JobState::Cancelled;
                    true
                }
                JobState::Running => {
                    job.cancel_requested = true;
                    false
                }
                _ => false, // already terminal: cancel is idempotent
            },
            None => return Err(format!("no job {id}")),
        };
        if now_cancelled {
            inner.push_event(id, "cancelled", None, Json::Null);
        }
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|j| status_of(id, j))
            .ok_or_else(|| format!("no job {id}"))
    }

    /// Status of every job, in id (submit) order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let inner = self.lock();
        inner.jobs.iter().map(|(id, j)| status_of(*id, j)).collect()
    }

    /// Events of job `id` from stream position `from` on, plus whether
    /// the job is terminal. With `wait`, blocks until there is at least
    /// one new event, the job is terminal, or `timeout` expires.
    pub fn events_since(
        &self,
        id: u64,
        from: u64,
        wait: bool,
        timeout: Duration,
    ) -> Result<(Vec<JobEvent>, bool), String> {
        let mut inner = self.lock();
        loop {
            let Some(job) = inner.jobs.get(&id) else {
                return Err(format!("no job {id}"));
            };
            let fresh: Vec<JobEvent> = job.events.iter().skip(from as usize).cloned().collect();
            let terminal = job.state.is_terminal();
            if !fresh.is_empty() || terminal || !wait || inner.shutdown {
                return Ok((fresh, terminal));
            }
            let (guard, out) = self
                .cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
            if out.timed_out() {
                let Some(job) = inner.jobs.get(&id) else {
                    return Err(format!("no job {id}"));
                };
                return Ok((Vec::new(), job.state.is_terminal()));
            }
        }
    }

    /// Final result payload of a `done` job.
    pub fn result(&self, id: u64) -> Result<Json, String> {
        let inner = self.lock();
        let Some(job) = inner.jobs.get(&id) else {
            return Err(format!("no job {id}"));
        };
        match (&job.state, &job.result) {
            (JobState::Done, Some(r)) => Ok(r.clone()),
            (JobState::Failed, _) => Err(format!(
                "job {id} failed: {}",
                job.error.as_deref().unwrap_or("unknown error")
            )),
            (s, _) => Err(format!("job {id} is {}, not done", s.as_str())),
        }
    }

    /// Reads the fields a runner needs to execute one step.
    pub fn step_inputs(&self, id: u64) -> Option<(JobSpec, u64, PathBuf)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|j| (j.spec.clone(), j.next_step, j.checkpoint.clone()))
    }

    /// Installs the job's current Pareto-front member keys and returns
    /// the previous set, so runners can stream front deltas.
    pub fn replace_front(&self, id: u64, front: Vec<String>) -> Vec<String> {
        let mut inner = self.lock();
        inner
            .jobs
            .get_mut(&id)
            .map(|j| std::mem::replace(&mut j.front_keys, front))
            .unwrap_or_default()
    }

    /// Appends an auxiliary event (e.g. `baseline`) to a job's stream.
    pub fn emit(&self, id: u64, kind: &str, generation: Option<u64>, data: Json) {
        let mut inner = self.lock();
        inner.push_event(id, kind, generation, data);
        drop(inner);
        self.cv.notify_all();
    }

    /// Begins shutdown: wakes every waiter; runners exit at their next
    /// claim, watchers return what they have.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Whether any job is queued or running.
    pub fn has_live_work(&self) -> bool {
        self.lock()
            .jobs
            .values()
            .any(|j| matches!(j.state, JobState::Queued | JobState::Running))
    }
}

fn status_of(id: u64, job: &Job) -> JobStatus {
    JobStatus {
        id,
        state: job.state,
        kind: job.spec.kind,
        design: job.spec.design.clone(),
        priority: job.spec.priority,
        steps_done: job.next_step,
        steps_total: job.total_steps,
        events: job.events.len() as u64,
        error: job.error.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::job::JobSpec;

    fn ckpt(n: u64) -> PathBuf {
        PathBuf::from(format!("/tmp/unused-{n}.ckpt"))
    }

    fn spec(priority: u8) -> JobSpec {
        JobSpec {
            priority,
            ..JobSpec::analyze("TINY")
        }
    }

    fn kinds(reg: &Registry, id: u64) -> Vec<String> {
        let (events, _) = reg
            .events_since(id, 0, false, Duration::from_millis(1))
            .expect("job exists");
        events.into_iter().map(|e| e.kind).collect()
    }

    #[test]
    fn higher_priority_claims_first() {
        let reg = Registry::new();
        let low = reg.submit(spec(0), ckpt(1));
        let high = reg.submit(spec(5), ckpt(2));
        let mid = reg.submit(spec(2), ckpt(3));
        let order: Vec<u64> = (0..3)
            .map(|_| match reg.claim_next(false) {
                Claim::Step(id) => id,
                _ => panic!("expected a runnable job"),
            })
            .collect();
        assert_eq!(order, vec![high, mid, low]);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let reg = Registry::new();
        let ids: Vec<u64> = (0..4).map(|n| reg.submit(spec(3), ckpt(n))).collect();
        for expected in &ids {
            match reg.claim_next(false) {
                Claim::Step(id) => assert_eq!(id, *expected),
                _ => panic!("expected a runnable job"),
            }
        }
        assert!(matches!(reg.claim_next(false), Claim::Idle));
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let reg = Registry::new();
        let a = reg.submit(spec(0), ckpt(1));
        let b = reg.submit(spec(0), ckpt(2));
        reg.cancel(b).expect("queued job cancels");
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == a));
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        assert_eq!(kinds(&reg, b), vec!["queued", "cancelled"]);
        let status = reg.status(b).expect("status");
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.steps_done, 0);
    }

    #[test]
    fn pause_while_running_lands_at_the_generation_boundary() {
        let reg = Registry::new();
        let mut explore = JobSpec::explore("TINY");
        explore.generations = 3;
        let id = reg.submit(explore, ckpt(1));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        // Pause arrives mid-step: the job keeps running...
        reg.pause(id).expect("running job accepts pause");
        assert_eq!(reg.status(id).expect("status").state, JobState::Running);
        // ...and parks only once the in-flight generation completes.
        reg.finish_step(
            id,
            StepOutcome::Progress {
                generation: 0,
                data: Json::Null,
            },
        );
        let status = reg.status(id).expect("status");
        assert_eq!(status.state, JobState::Paused);
        assert_eq!(status.steps_done, 1);
        assert_eq!(
            kinds(&reg, id),
            vec!["queued", "started", "generation", "paused"]
        );
        // Nothing runnable while paused; resume re-queues and re-claims.
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        reg.resume(id).expect("paused job resumes");
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        assert_eq!(
            kinds(&reg, id),
            vec!["queued", "started", "generation", "paused", "resumed"]
        );
    }

    #[test]
    fn cancel_while_running_lands_at_the_generation_boundary() {
        let reg = Registry::new();
        let id = reg.submit(JobSpec::explore("TINY"), ckpt(1));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        reg.cancel(id).expect("running job accepts cancel");
        assert_eq!(reg.status(id).expect("status").state, JobState::Running);
        reg.finish_step(
            id,
            StepOutcome::Progress {
                generation: 0,
                data: Json::Null,
            },
        );
        assert_eq!(reg.status(id).expect("status").state, JobState::Cancelled);
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        assert!(reg.result(id).is_err());
    }

    #[test]
    fn resumed_jobs_requeue_behind_their_class() {
        let reg = Registry::new();
        let a = reg.submit(spec(1), ckpt(1));
        reg.pause(a).expect("queued job pauses");
        let b = reg.submit(spec(1), ckpt(2));
        reg.resume(a).expect("paused job resumes");
        // `a` was submitted first but re-entered the class after `b`.
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == b));
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == a));
    }

    #[test]
    fn ticks_order_events_across_jobs() {
        let reg = Registry::new();
        let a = reg.submit(spec(0), ckpt(1));
        let b = reg.submit(spec(0), ckpt(2));
        let (ea, _) = reg
            .events_since(a, 0, false, Duration::from_millis(1))
            .expect("a exists");
        let (eb, _) = reg
            .events_since(b, 0, false, Duration::from_millis(1))
            .expect("b exists");
        assert!(
            ea[0].tick < eb[0].tick,
            "global ticks order cross-job events"
        );
        assert_eq!(ea[0].seq, 0);
        assert_eq!(eb[0].seq, 0);
    }

    #[test]
    fn terminal_states_refuse_transitions() {
        let reg = Registry::new();
        let id = reg.submit(spec(0), ckpt(1));
        reg.cancel(id).expect("cancel");
        assert!(reg.pause(id).is_err());
        assert!(reg.resume(id).is_err());
        reg.cancel(id).expect("cancel is idempotent");
        assert!(reg.pause(99).is_err());
    }

    #[test]
    fn shutdown_unblocks_claims() {
        let reg = Registry::new();
        reg.shutdown();
        assert!(matches!(reg.claim_next(true), Claim::Shutdown));
        assert!(reg.is_shutdown());
    }
}
