//! The job registry: queue, lifecycle state machine, and event streams.
//!
//! One mutex guards all scheduling state; a condvar wakes runner threads
//! when work arrives and `watch` readers when events land. Scheduling
//! order is **priority descending, then submit order ascending** —
//! strict priorities with FIFO inside each class. Runners claim one
//! *scheduler step* at a time (one generation of an explore job, or the
//! whole of an analyze/harden job), so a high-priority submit preempts a
//! long-running low-priority explore at its next generation boundary
//! without killing it.
//!
//! When constructed [`Registry::with_journal`], every lifecycle
//! transition is appended to the durable [`Journal`] *before* the
//! corresponding event is published — write-ahead ordering, so a watcher
//! can never observe a transition the journal might forget. On restart,
//! [`Registry::recover`] replays the log: non-terminal jobs re-enter the
//! queue with their original submit-order tickets (priority/FIFO order
//! preserved), terminal jobs come back queryable with their results.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use ggjson::Json;

use crate::serve::job::{JobEvent, JobKind, JobSpec, JobState, JobStatus};
use crate::serve::journal::{Journal, JournalRecord};

/// Everything the registry tracks about one job.
pub(crate) struct Job {
    pub spec: JobSpec,
    pub state: JobState,
    /// Submit-order tiebreaker inside a priority class.
    pub seq: u64,
    /// Next scheduler step to run (for explore: the generation index
    /// handed to `halt_after`).
    pub next_step: u64,
    /// Total scheduler steps this job runs.
    pub total_steps: u64,
    pub pause_requested: bool,
    pub cancel_requested: bool,
    /// Set by `resume`; the next claim emits a `resumed` event.
    pub resumed_pending: bool,
    pub events: Vec<JobEvent>,
    pub result: Option<Json>,
    pub error: Option<String>,
    /// Checkpoint envelope backing pause/resume for this job.
    pub checkpoint: PathBuf,
    /// Pareto-front member keys as of the last generation, for computing
    /// streamed front deltas.
    pub front_keys: Vec<String>,
}

/// What a runner's completed step did to its job.
pub(crate) enum StepOutcome {
    /// One generation finished; the job stays alive. The payload becomes
    /// a `generation` event.
    Progress { generation: u64, data: Json },
    /// The job produced its final result. `data` becomes the `done`
    /// event payload (the full result is fetched via `result`).
    Finished {
        generation: Option<u64>,
        data: Json,
        result: Json,
    },
    /// The step failed; the job is dead.
    Failed { error: String },
}

/// What `claim_next` handed out.
pub(crate) enum Claim {
    /// Run one step of this job.
    Step(u64),
    /// Nothing runnable right now.
    Idle,
    /// The registry is shutting down; the runner should exit.
    Shutdown,
}

/// What [`Registry::recover`] found in the journal.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RecoveryStats {
    /// Jobs reconstructed from the journal.
    pub jobs: u64,
    /// Non-terminal jobs re-queued for execution.
    pub requeued: u64,
    /// Terminal jobs restored for `status`/`result` queries.
    pub finished: u64,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    next_seq: u64,
    /// Server-global event tick (total order across all jobs).
    next_tick: u64,
    /// Idempotency tokens already seen, mapped to their job ids
    /// (rebuilt from `submitted` records on recovery).
    dedup: HashMap<String, u64>,
    shutdown: bool,
}

impl Inner {
    fn push_event(&mut self, id: u64, kind: &str, generation: Option<u64>, data: Json) {
        let tick = self.next_tick;
        if let Some(job) = self.jobs.get_mut(&id) {
            self.next_tick += 1;
            job.events.push(JobEvent {
                seq: job.events.len() as u64,
                tick,
                kind: kind.to_owned(),
                generation,
                data,
            });
        }
    }
}

pub(crate) struct Registry {
    inner: Mutex<Inner>,
    cv: Condvar,
    /// Write-ahead journal; `None` runs the registry volatile (tests,
    /// `--no-journal`).
    journal: Option<Arc<Journal>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::with_journal(None)
    }

    /// A registry whose transitions are journaled before publication.
    pub fn with_journal(journal: Option<Arc<Journal>>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 1,
                next_seq: 0,
                next_tick: 0,
                dedup: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            journal,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Journals one transition (no-op without a journal). Called while
    /// holding the registry lock, *before* the matching `push_event` —
    /// the journal has its own mutex and never takes ours, so the
    /// ordering is deadlock-free.
    fn jot(&self, rec: &JournalRecord) {
        if let Some(j) = &self.journal {
            j.append(rec);
        }
    }

    /// Queues a validated spec; returns the job id. A spec carrying an
    /// already-seen `dedup` token returns the existing job instead.
    pub fn submit(&self, spec: JobSpec, checkpoint: PathBuf) -> u64 {
        let mut inner = self.lock();
        if let Some(tok) = &spec.dedup {
            if let Some(&existing) = inner.dedup.get(tok) {
                return existing;
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let total_steps = match spec.kind {
            // Steps 0..=generations: the initial population counts as one.
            JobKind::Explore => spec.generations as u64 + 1,
            _ => 1,
        };
        if let Some(tok) = &spec.dedup {
            inner.dedup.insert(tok.clone(), id);
        }
        self.jot(&JournalRecord::submitted(id, &spec, seq, &checkpoint));
        inner.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                seq,
                next_step: 0,
                total_steps,
                pause_requested: false,
                cancel_requested: false,
                resumed_pending: false,
                events: Vec::new(),
                result: None,
                error: None,
                checkpoint,
                front_keys: Vec::new(),
            },
        );
        inner.push_event(id, "queued", None, Json::Null);
        drop(inner);
        self.cv.notify_all();
        id
    }

    /// The job a dedup token maps to, if any (lets the server bypass
    /// admission control for idempotent resubmits).
    pub fn lookup_dedup(&self, token: &str) -> Option<u64> {
        self.lock().dedup.get(token).copied()
    }

    /// Jobs currently waiting for a runner slot.
    pub fn queued_count(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Claims the highest-priority queued job and marks it running.
    /// With `block`, waits until a job is runnable or shutdown begins.
    pub fn claim_next(&self, block: bool) -> Claim {
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return Claim::Shutdown;
            }
            let pick = inner
                .jobs
                .iter()
                .filter(|(_, j)| j.state == JobState::Queued)
                .min_by_key(|(_, j)| (std::cmp::Reverse(j.spec.priority), j.seq))
                .map(|(id, _)| *id);
            if let Some(id) = pick {
                let (first_step, resumed) = match inner.jobs.get_mut(&id) {
                    Some(job) => {
                        job.state = JobState::Running;
                        let resumed = std::mem::take(&mut job.resumed_pending);
                        (job.next_step == 0, resumed)
                    }
                    None => continue,
                };
                if resumed {
                    inner.push_event(id, "resumed", None, Json::Null);
                } else if first_step {
                    self.jot(&JournalRecord::transition(id, "started"));
                    inner.push_event(id, "started", None, Json::Null);
                }
                drop(inner);
                self.cv.notify_all();
                return Claim::Step(id);
            }
            if !block {
                return Claim::Idle;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Applies a completed step's outcome and the pending pause/cancel
    /// requests, in that order of precedence: cancel > pause > continue.
    ///
    /// Late outcomes are dropped: if the job is no longer `Running` —
    /// the watchdog already failed it as stuck, or it was recovered by a
    /// restart — a wedged runner waking up afterwards must not resurrect
    /// or re-terminate it.
    pub fn finish_step(&self, id: u64, outcome: StepOutcome) {
        let mut inner = self.lock();
        if inner
            .jobs
            .get(&id)
            .is_none_or(|j| j.state != JobState::Running)
        {
            return;
        }
        match outcome {
            StepOutcome::Failed { error } => {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Failed;
                    job.error = Some(error.clone());
                }
                self.jot(&JournalRecord::failed(id, &error));
                inner.push_event(id, "failed", None, Json::Str(error));
            }
            StepOutcome::Finished {
                generation,
                data,
                result,
            } => {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.next_step += 1;
                    job.result = Some(result.clone());
                    job.state = JobState::Done;
                }
                self.jot(&JournalRecord::done(id, result));
                inner.push_event(id, "done", generation, data);
            }
            StepOutcome::Progress { generation, data } => {
                let follow_up = match inner.jobs.get_mut(&id) {
                    Some(job) => {
                        job.next_step += 1;
                        if job.cancel_requested {
                            job.state = JobState::Cancelled;
                            Some("cancelled")
                        } else if job.pause_requested {
                            job.pause_requested = false;
                            job.state = JobState::Paused;
                            Some("paused")
                        } else {
                            job.state = JobState::Queued;
                            None
                        }
                    }
                    None => None,
                };
                // The generation record lands *after* explore_with_engine
                // persisted the step's checkpoint, so the journal never
                // claims progress the checkpoint cannot replay.
                self.jot(&JournalRecord::generation(id, generation));
                inner.push_event(id, "generation", Some(generation), data);
                if let Some(kind) = follow_up {
                    self.jot(&JournalRecord::transition(id, kind));
                    inner.push_event(id, kind, None, Json::Null);
                }
            }
        }
        self.maybe_compact(&inner);
        drop(inner);
        self.cv.notify_all();
    }

    /// Rewrites the journal as a compact snapshot if the active segment
    /// outgrew its threshold. Compaction failure downgrades to a
    /// diagnostic — the old segments keep the log replayable.
    fn maybe_compact(&self, inner: &Inner) {
        let Some(j) = &self.journal else { return };
        if !j.should_rotate() {
            return;
        }
        if let Err(e) = j.rewrite(&snapshot_records(inner)) {
            obs::diagln!("journal: compaction failed ({e}); staying on the old segment");
        }
    }

    /// Immediately compacts the journal to a snapshot of current state
    /// (used once after recovery so replay cost does not accrete across
    /// restarts).
    pub fn compact_now(&self) {
        let inner = self.lock();
        if let Some(j) = &self.journal {
            if let Err(e) = j.rewrite(&snapshot_records(&inner)) {
                obs::diagln!("journal: post-recovery compaction failed ({e})");
            }
        }
    }

    /// Rebuilds registry state from replayed journal records (call once,
    /// before any runner starts claiming).
    ///
    /// Jobs that were `Running` at the crash re-queue with their original
    /// ticket: the in-flight step re-runs, and for explores the
    /// checkpoint envelope makes that re-run bit-identical (an
    /// already-checkpointed generation is returned from the archive, not
    /// recomputed). Each reconstructed job gets a synthesized event
    /// prefix — `queued`, then `recovered` carrying `steps_done`, then
    /// its terminal event if it has one — so `watch` clients see a
    /// coherent stream.
    pub fn recover(&self, records: &[JournalRecord]) -> RecoveryStats {
        let mut inner = self.lock();
        for rec in records {
            let id = rec.job;
            match rec.kind.as_str() {
                "submitted" => {
                    let Some(spec) = rec.spec.clone() else {
                        continue;
                    };
                    let total_steps = match spec.kind {
                        JobKind::Explore => spec.generations as u64 + 1,
                        _ => 1,
                    };
                    if let Some(tok) = &spec.dedup {
                        inner.dedup.insert(tok.clone(), id);
                    }
                    let checkpoint = PathBuf::from(rec.checkpoint.clone().unwrap_or_default());
                    // Insert overwrites: a compaction snapshot may repeat
                    // a job an older segment already introduced.
                    inner.jobs.insert(
                        id,
                        Job {
                            spec,
                            state: JobState::Queued,
                            seq: rec.seq,
                            next_step: 0,
                            total_steps,
                            pause_requested: false,
                            cancel_requested: false,
                            resumed_pending: false,
                            events: Vec::new(),
                            result: None,
                            error: None,
                            checkpoint,
                            front_keys: Vec::new(),
                        },
                    );
                }
                "started" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Running;
                    }
                }
                "generation" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        if let Some(g) = rec.generation {
                            job.next_step = g + 1;
                        }
                    }
                }
                "paused" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Paused;
                    }
                }
                "resumed" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Queued;
                        job.seq = rec.seq;
                    }
                }
                "cancelled" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Cancelled;
                    }
                }
                "done" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Done;
                        job.result = rec.result.clone();
                        job.next_step = job.total_steps;
                    }
                }
                "failed" => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = JobState::Failed;
                        job.error = rec.error.clone();
                    }
                }
                other => {
                    obs::diagln!("journal: ignoring unknown record kind '{other}'");
                }
            }
        }
        let mut stats = RecoveryStats::default();
        let ids: Vec<u64> = inner.jobs.keys().copied().collect();
        for id in ids {
            let (steps_done, terminal, error) = match inner.jobs.get_mut(&id) {
                Some(job) => {
                    // The step in flight at the crash re-runs.
                    if job.state == JobState::Running {
                        job.state = JobState::Queued;
                    }
                    (job.next_step, job.state, job.error.clone())
                }
                None => continue,
            };
            stats.jobs += 1;
            if terminal.is_terminal() {
                stats.finished += 1;
            } else {
                stats.requeued += 1;
            }
            inner.push_event(id, "queued", None, Json::Null);
            inner.push_event(
                id,
                "recovered",
                None,
                Json::Obj(vec![("steps_done".into(), Json::Num(steps_done as f64))]),
            );
            match terminal {
                JobState::Done => inner.push_event(id, "done", None, Json::Null),
                JobState::Cancelled => inner.push_event(id, "cancelled", None, Json::Null),
                JobState::Failed => inner.push_event(
                    id,
                    "failed",
                    None,
                    Json::Str(error.unwrap_or_else(|| "unknown error".into())),
                ),
                JobState::Paused => inner.push_event(id, "paused", None, Json::Null),
                JobState::Queued | JobState::Running => {}
            }
        }
        inner.next_id = inner.jobs.keys().max().map_or(1, |m| m + 1);
        inner.next_seq = inner
            .jobs
            .values()
            .map(|j| j.seq + 1)
            .max()
            .unwrap_or(0)
            .max(inner.next_seq);
        drop(inner);
        self.cv.notify_all();
        stats
    }

    /// Requests a pause: queued jobs park immediately, running jobs park
    /// at their next generation boundary.
    pub fn pause(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let newly_paused = match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Queued => {
                    job.state = JobState::Paused;
                    true
                }
                JobState::Running => {
                    job.pause_requested = true;
                    false
                }
                JobState::Paused => false,
                s => return Err(format!("cannot pause a {} job", s.as_str())),
            },
            None => return Err(format!("no job {id}")),
        };
        if newly_paused {
            self.jot(&JournalRecord::transition(id, "paused"));
            inner.push_event(id, "paused", None, Json::Null);
        }
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Re-queues a paused job. It re-enters the back of its priority
    /// class (a fresh submit-order ticket, FIFO fairness preserved).
    pub fn resume(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        let requeued = match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Paused => {
                    job.state = JobState::Queued;
                    job.seq = seq;
                    job.resumed_pending = true;
                    true
                }
                JobState::Queued | JobState::Running => {
                    // Un-park a pause that has not landed yet.
                    job.pause_requested = false;
                    false
                }
                s => return Err(format!("cannot resume a {} job", s.as_str())),
            },
            None => return Err(format!("no job {id}")),
        };
        if requeued {
            self.jot(&JournalRecord::resumed(id, seq));
        }
        inner.next_seq += 1;
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Requests cancellation: queued/paused jobs die immediately, running
    /// jobs die at their next generation boundary.
    pub fn cancel(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock();
        let now_cancelled = match inner.jobs.get_mut(&id) {
            Some(job) => match job.state {
                JobState::Queued | JobState::Paused => {
                    job.state = JobState::Cancelled;
                    true
                }
                JobState::Running => {
                    job.cancel_requested = true;
                    false
                }
                _ => false, // already terminal: cancel is idempotent
            },
            None => return Err(format!("no job {id}")),
        };
        if now_cancelled {
            self.jot(&JournalRecord::transition(id, "cancelled"));
            inner.push_event(id, "cancelled", None, Json::Null);
        }
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|j| status_of(id, j))
            .ok_or_else(|| format!("no job {id}"))
    }

    /// Status of every job, in id (submit) order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let inner = self.lock();
        inner.jobs.iter().map(|(id, j)| status_of(*id, j)).collect()
    }

    /// Events of job `id` from stream position `from` on, plus whether
    /// the job is terminal. With `wait`, blocks until there is at least
    /// one new event, the job is terminal, or `timeout` expires.
    pub fn events_since(
        &self,
        id: u64,
        from: u64,
        wait: bool,
        timeout: Duration,
    ) -> Result<(Vec<JobEvent>, bool), String> {
        let mut inner = self.lock();
        loop {
            let Some(job) = inner.jobs.get(&id) else {
                return Err(format!("no job {id}"));
            };
            let fresh: Vec<JobEvent> = job.events.iter().skip(from as usize).cloned().collect();
            let terminal = job.state.is_terminal();
            if !fresh.is_empty() || terminal || !wait || inner.shutdown {
                return Ok((fresh, terminal));
            }
            let (guard, out) = self
                .cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
            if out.timed_out() {
                let Some(job) = inner.jobs.get(&id) else {
                    return Err(format!("no job {id}"));
                };
                return Ok((Vec::new(), job.state.is_terminal()));
            }
        }
    }

    /// Final result payload of a `done` job.
    pub fn result(&self, id: u64) -> Result<Json, String> {
        let inner = self.lock();
        let Some(job) = inner.jobs.get(&id) else {
            return Err(format!("no job {id}"));
        };
        match (&job.state, &job.result) {
            (JobState::Done, Some(r)) => Ok(r.clone()),
            (JobState::Failed, _) => Err(format!(
                "job {id} failed: {}",
                job.error.as_deref().unwrap_or("unknown error")
            )),
            (s, _) => Err(format!("job {id} is {}, not done", s.as_str())),
        }
    }

    /// Reads the fields a runner needs to execute one step.
    pub fn step_inputs(&self, id: u64) -> Option<(JobSpec, u64, PathBuf)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|j| (j.spec.clone(), j.next_step, j.checkpoint.clone()))
    }

    /// Installs the job's current Pareto-front member keys and returns
    /// the previous set, so runners can stream front deltas.
    pub fn replace_front(&self, id: u64, front: Vec<String>) -> Vec<String> {
        let mut inner = self.lock();
        inner
            .jobs
            .get_mut(&id)
            .map(|j| std::mem::replace(&mut j.front_keys, front))
            .unwrap_or_default()
    }

    /// Appends an auxiliary event (e.g. `baseline`) to a job's stream.
    pub fn emit(&self, id: u64, kind: &str, generation: Option<u64>, data: Json) {
        let mut inner = self.lock();
        inner.push_event(id, kind, generation, data);
        drop(inner);
        self.cv.notify_all();
    }

    /// Begins shutdown: wakes every waiter; runners exit at their next
    /// claim, watchers return what they have.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Whether any job is queued or running.
    pub fn has_live_work(&self) -> bool {
        self.lock()
            .jobs
            .values()
            .any(|j| matches!(j.state, JobState::Queued | JobState::Running))
    }
}

/// The minimal record sequence reproducing every job's current state,
/// used as the compaction snapshot: `submitted`, a `generation` marking
/// completed progress for live jobs, and the parked/terminal transition.
fn snapshot_records(inner: &Inner) -> Vec<JournalRecord> {
    let mut recs = Vec::new();
    for (&id, job) in &inner.jobs {
        recs.push(JournalRecord::submitted(
            id,
            &job.spec,
            job.seq,
            &job.checkpoint,
        ));
        if job.next_step > 0 && !job.state.is_terminal() {
            recs.push(JournalRecord::generation(id, job.next_step - 1));
        }
        match job.state {
            JobState::Done => {
                recs.push(JournalRecord::done(
                    id,
                    job.result.clone().unwrap_or(Json::Null),
                ));
            }
            JobState::Failed => {
                recs.push(JournalRecord::failed(
                    id,
                    job.error.as_deref().unwrap_or("unknown error"),
                ));
            }
            JobState::Cancelled => recs.push(JournalRecord::transition(id, "cancelled")),
            JobState::Paused => recs.push(JournalRecord::transition(id, "paused")),
            // Queued replays as-is; Running re-queues on recovery anyway.
            JobState::Queued | JobState::Running => {}
        }
    }
    recs
}

fn status_of(id: u64, job: &Job) -> JobStatus {
    JobStatus {
        id,
        state: job.state,
        kind: job.spec.kind,
        design: job.spec.design.clone(),
        priority: job.spec.priority,
        steps_done: job.next_step,
        steps_total: job.total_steps,
        events: job.events.len() as u64,
        error: job.error.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::job::JobSpec;

    fn ckpt(n: u64) -> PathBuf {
        PathBuf::from(format!("/tmp/unused-{n}.ckpt"))
    }

    fn spec(priority: u8) -> JobSpec {
        JobSpec {
            priority,
            ..JobSpec::analyze("TINY")
        }
    }

    fn kinds(reg: &Registry, id: u64) -> Vec<String> {
        let (events, _) = reg
            .events_since(id, 0, false, Duration::from_millis(1))
            .expect("job exists");
        events.into_iter().map(|e| e.kind).collect()
    }

    #[test]
    fn higher_priority_claims_first() {
        let reg = Registry::new();
        let low = reg.submit(spec(0), ckpt(1));
        let high = reg.submit(spec(5), ckpt(2));
        let mid = reg.submit(spec(2), ckpt(3));
        let order: Vec<u64> = (0..3)
            .map(|_| match reg.claim_next(false) {
                Claim::Step(id) => id,
                _ => panic!("expected a runnable job"),
            })
            .collect();
        assert_eq!(order, vec![high, mid, low]);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let reg = Registry::new();
        let ids: Vec<u64> = (0..4).map(|n| reg.submit(spec(3), ckpt(n))).collect();
        for expected in &ids {
            match reg.claim_next(false) {
                Claim::Step(id) => assert_eq!(id, *expected),
                _ => panic!("expected a runnable job"),
            }
        }
        assert!(matches!(reg.claim_next(false), Claim::Idle));
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let reg = Registry::new();
        let a = reg.submit(spec(0), ckpt(1));
        let b = reg.submit(spec(0), ckpt(2));
        reg.cancel(b).expect("queued job cancels");
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == a));
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        assert_eq!(kinds(&reg, b), vec!["queued", "cancelled"]);
        let status = reg.status(b).expect("status");
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.steps_done, 0);
    }

    #[test]
    fn pause_while_running_lands_at_the_generation_boundary() {
        let reg = Registry::new();
        let mut explore = JobSpec::explore("TINY");
        explore.generations = 3;
        let id = reg.submit(explore, ckpt(1));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        // Pause arrives mid-step: the job keeps running...
        reg.pause(id).expect("running job accepts pause");
        assert_eq!(reg.status(id).expect("status").state, JobState::Running);
        // ...and parks only once the in-flight generation completes.
        reg.finish_step(
            id,
            StepOutcome::Progress {
                generation: 0,
                data: Json::Null,
            },
        );
        let status = reg.status(id).expect("status");
        assert_eq!(status.state, JobState::Paused);
        assert_eq!(status.steps_done, 1);
        assert_eq!(
            kinds(&reg, id),
            vec!["queued", "started", "generation", "paused"]
        );
        // Nothing runnable while paused; resume re-queues and re-claims.
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        reg.resume(id).expect("paused job resumes");
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        assert_eq!(
            kinds(&reg, id),
            vec!["queued", "started", "generation", "paused", "resumed"]
        );
    }

    #[test]
    fn cancel_while_running_lands_at_the_generation_boundary() {
        let reg = Registry::new();
        let id = reg.submit(JobSpec::explore("TINY"), ckpt(1));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        reg.cancel(id).expect("running job accepts cancel");
        assert_eq!(reg.status(id).expect("status").state, JobState::Running);
        reg.finish_step(
            id,
            StepOutcome::Progress {
                generation: 0,
                data: Json::Null,
            },
        );
        assert_eq!(reg.status(id).expect("status").state, JobState::Cancelled);
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        assert!(reg.result(id).is_err());
    }

    #[test]
    fn resumed_jobs_requeue_behind_their_class() {
        let reg = Registry::new();
        let a = reg.submit(spec(1), ckpt(1));
        reg.pause(a).expect("queued job pauses");
        let b = reg.submit(spec(1), ckpt(2));
        reg.resume(a).expect("paused job resumes");
        // `a` was submitted first but re-entered the class after `b`.
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == b));
        assert!(matches!(reg.claim_next(false), Claim::Step(id) if id == a));
    }

    #[test]
    fn ticks_order_events_across_jobs() {
        let reg = Registry::new();
        let a = reg.submit(spec(0), ckpt(1));
        let b = reg.submit(spec(0), ckpt(2));
        let (ea, _) = reg
            .events_since(a, 0, false, Duration::from_millis(1))
            .expect("a exists");
        let (eb, _) = reg
            .events_since(b, 0, false, Duration::from_millis(1))
            .expect("b exists");
        assert!(
            ea[0].tick < eb[0].tick,
            "global ticks order cross-job events"
        );
        assert_eq!(ea[0].seq, 0);
        assert_eq!(eb[0].seq, 0);
    }

    #[test]
    fn terminal_states_refuse_transitions() {
        let reg = Registry::new();
        let id = reg.submit(spec(0), ckpt(1));
        reg.cancel(id).expect("cancel");
        assert!(reg.pause(id).is_err());
        assert!(reg.resume(id).is_err());
        reg.cancel(id).expect("cancel is idempotent");
        assert!(reg.pause(99).is_err());
    }

    #[test]
    fn shutdown_unblocks_claims() {
        let reg = Registry::new();
        reg.shutdown();
        assert!(matches!(reg.claim_next(true), Claim::Shutdown));
        assert!(reg.is_shutdown());
    }

    #[test]
    fn late_outcomes_from_retired_runners_are_dropped() {
        let reg = Registry::new();
        let id = reg.submit(spec(0), ckpt(1));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == id));
        // The watchdog declares the job stuck...
        reg.finish_step(
            id,
            StepOutcome::Failed {
                error: "stuck".into(),
            },
        );
        assert_eq!(reg.status(id).expect("status").state, JobState::Failed);
        // ...then the wedged runner wakes up and reports success. Dropped.
        reg.finish_step(
            id,
            StepOutcome::Finished {
                generation: None,
                data: Json::Null,
                result: Json::Num(1.0),
            },
        );
        let status = reg.status(id).expect("status");
        assert_eq!(status.state, JobState::Failed);
        assert_eq!(status.error.as_deref(), Some("stuck"));
        assert!(reg.result(id).is_err());
    }

    fn journal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ggreg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Drives a journaled registry through a mixed workload, "crashes"
    /// (drops it), recovers a fresh registry from the journal, and checks
    /// every job's position and the claim order survived.
    #[test]
    fn recovery_restores_jobs_order_and_results() {
        let dir = journal_dir("recover");
        let (running, paused, queued_hi, queued_lo, finished);
        {
            let journal = Arc::new(Journal::open(&dir).expect("open journal"));
            let reg = Registry::with_journal(Some(journal));
            let mut explore = JobSpec::explore("TINY");
            explore.generations = 4;
            running = reg.submit(explore.clone(), ckpt(1));
            paused = reg.submit(explore.clone(), ckpt(2));
            finished = reg.submit(spec(0), ckpt(3));
            // `running` completes two generations, then goes mid-step 2.
            for g in 0..2 {
                assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == running));
                reg.finish_step(
                    running,
                    StepOutcome::Progress {
                        generation: g,
                        data: Json::Null,
                    },
                );
            }
            assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == running));
            // `paused` parks after one generation.
            assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == paused));
            reg.pause(paused).expect("pause");
            reg.finish_step(
                paused,
                StepOutcome::Progress {
                    generation: 0,
                    data: Json::Null,
                },
            );
            // `finished` runs to completion.
            assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == finished));
            reg.finish_step(
                finished,
                StepOutcome::Finished {
                    generation: None,
                    data: Json::Null,
                    result: Json::Num(42.0),
                },
            );
            queued_hi = reg.submit(spec(9), ckpt(4));
            queued_lo = reg.submit(spec(0), ckpt(5));
            // Crash: drop the registry with `running` mid-step.
        }
        let journal = Arc::new(Journal::open(&dir).expect("reopen journal"));
        let records = Journal::replay(&dir).expect("replay");
        let reg = Registry::with_journal(Some(journal));
        let stats = reg.recover(&records);
        assert_eq!(stats.jobs, 5);
        assert_eq!(
            stats.requeued, 4,
            "running + paused + queued ×2 are non-terminal"
        );
        assert_eq!(stats.finished, 1);

        let st = reg.status(running).expect("status");
        assert_eq!(st.state, JobState::Queued, "in-flight job re-queued");
        assert_eq!(st.steps_done, 2, "completed generations survive");
        assert_eq!(reg.status(paused).expect("status").state, JobState::Paused);
        assert_eq!(
            reg.result(finished).expect("done job keeps its result"),
            Json::Num(42.0)
        );
        // Claim order: priority first, then original submit order.
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == queued_hi));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == running));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == queued_lo));
        assert!(matches!(reg.claim_next(false), Claim::Idle));
        // New submits get fresh ids past the recovered ones.
        let next = reg.submit(spec(0), ckpt(6));
        assert!(next > queued_lo);
        // Synthesized event prefix is coherent.
        assert_eq!(kinds(&reg, paused), vec!["queued", "recovered", "paused"]);
        assert_eq!(kinds(&reg, finished), vec!["queued", "recovered", "done"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dedup_tokens_are_idempotent_and_survive_recovery() {
        let dir = journal_dir("dedup");
        let first;
        {
            let journal = Arc::new(Journal::open(&dir).expect("open journal"));
            let reg = Registry::with_journal(Some(journal));
            let mut s = spec(0);
            s.dedup = Some("tok-1".into());
            first = reg.submit(s.clone(), ckpt(1));
            assert_eq!(reg.submit(s.clone(), ckpt(2)), first, "resubmit dedups");
            assert_eq!(reg.lookup_dedup("tok-1"), Some(first));
            assert_eq!(reg.lookup_dedup("tok-2"), None);
        }
        let records = Journal::replay(&dir).expect("replay");
        let reg = Registry::new();
        reg.recover(&records);
        assert_eq!(
            reg.lookup_dedup("tok-1"),
            Some(first),
            "token survives restart"
        );
        let mut s = spec(0);
        s.dedup = Some("tok-1".into());
        assert_eq!(
            reg.submit(s, ckpt(3)),
            first,
            "post-restart resubmit dedups"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_snapshot_replays_identically() {
        let dir = journal_dir("compact");
        let journal = Arc::new(Journal::open_with(&dir, 64, false).expect("open"));
        let reg = Registry::with_journal(Some(journal));
        let a = reg.submit(spec(2), ckpt(1));
        let b = reg.submit(spec(0), ckpt(2));
        assert!(matches!(reg.claim_next(false), Claim::Step(i) if i == a));
        reg.finish_step(
            a,
            StepOutcome::Finished {
                generation: None,
                data: Json::Null,
                result: Json::Num(7.0),
            },
        );
        let before: Vec<JobStatus> = reg.jobs();
        reg.compact_now();
        let records = Journal::replay(&dir).expect("replay");
        let reg2 = Registry::new();
        reg2.recover(&records);
        let after: Vec<JobStatus> = reg2.jobs();
        assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(&after) {
            assert_eq!((x.id, x.state, x.steps_done), (y.id, y.state, y.steps_done));
        }
        assert_eq!(reg2.result(a).expect("result"), Json::Num(7.0));
        assert_eq!(reg2.status(b).expect("status").state, JobState::Queued);
        std::fs::remove_dir_all(&dir).ok();
    }
}
