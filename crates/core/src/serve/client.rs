//! The typed socket client the `ggd` subcommands are built on.
//!
//! One [`Client`] is one connection; requests are serialized on it in
//! order (the protocol has no interleaving), so a long `watch` occupies
//! the connection until the job ends — open a second client for
//! concurrent control traffic.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use ggjson::{FromJson, Json};

use crate::error::Error;
use crate::serve::job::{JobEvent, JobSpec, JobStatus};
use crate::serve::proto::{Request, Response};
use crate::serve::server::ServerStats;

/// A connection to a running `ggd serve` daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon's Unix-domain socket.
    pub fn connect(socket: &Path) -> Result<Self, Error> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| Error::Serve(format!("cannot connect to {}: {e}", socket.display())))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| Error::Serve(format!("cannot clone socket: {e}")))?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Like [`Client::connect`], but retries for up to `patience` while
    /// the daemon is still binding its socket.
    pub fn connect_with_retry(socket: &Path, patience: Duration) -> Result<Self, Error> {
        let start = std::time::Instant::now();
        loop {
            match Self::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= patience => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), Error> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::Serve(format!("cannot send request: {e}")))
    }

    fn recv(&mut self) -> Result<Response, Error> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| Error::Serve(format!("cannot read response: {e}")))?;
        if n == 0 {
            return Err(Error::Serve("server closed the connection".into()));
        }
        Response::from_line(line.trim_end())
    }

    /// Sends a single-response request and returns the `ok` payload.
    fn round_trip(&mut self, req: &Request) -> Result<Json, Error> {
        self.send(req)?;
        match self.recv()? {
            Response::Ok(payload) => Ok(payload),
            Response::Err(why) => Err(Error::Serve(why)),
            Response::Event(_) => Err(Error::Serve(
                "unexpected event outside a watch stream".into(),
            )),
        }
    }

    fn typed<T: FromJson>(&mut self, req: &Request, what: &str) -> Result<T, Error> {
        let payload = self.round_trip(req)?;
        T::from_json(&payload)
            .ok_or_else(|| Error::Serve(format!("malformed {what} payload from server")))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), Error> {
        self.round_trip(&Request::Ping).map(|_| ())
    }

    /// Queues a job; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, Error> {
        let payload = self.round_trip(&Request::Submit(spec.clone()))?;
        payload
            .get("job")
            .and_then(u64::from_json)
            .ok_or_else(|| Error::Serve("submit reply lacks a job id".into()))
    }

    /// Point-in-time status of one job.
    pub fn status(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Status(id), "status")
    }

    /// Status of every job, in submit order.
    pub fn jobs(&mut self) -> Result<Vec<JobStatus>, Error> {
        self.typed(&Request::Jobs, "jobs")
    }

    /// Parks a job at its next generation boundary; returns its status.
    pub fn pause(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Pause(id), "pause")
    }

    /// Re-queues a paused job; returns its status.
    pub fn resume(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Resume(id), "resume")
    }

    /// Cancels a job; returns its status.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Cancel(id), "cancel")
    }

    /// Final result payload of a done job.
    pub fn result(&mut self, id: u64) -> Result<Json, Error> {
        self.round_trip(&Request::Result(id))
    }

    /// Scheduler and baseline-cache counters.
    pub fn stats(&mut self) -> Result<ServerStats, Error> {
        self.typed(&Request::Stats, "stats")
    }

    /// Asks the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), Error> {
        self.round_trip(&Request::Shutdown).map(|_| ())
    }

    /// Streams a job's events from stream cursor `from` until the job is
    /// terminal, invoking `on_event` per event; returns the final status.
    pub fn watch(
        &mut self,
        id: u64,
        from: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobStatus, Error> {
        self.send(&Request::Watch { job: id, from })?;
        loop {
            match self.recv()? {
                Response::Event(e) => on_event(&e),
                Response::Ok(payload) => {
                    return JobStatus::from_json(&payload)
                        .ok_or_else(|| Error::Serve("malformed final status from watch".into()))
                }
                Response::Err(why) => return Err(Error::Serve(why)),
            }
        }
    }
}
