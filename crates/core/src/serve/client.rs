//! The typed socket client the `ggd` subcommands are built on.
//!
//! One [`Client`] is one logical connection; requests are serialized on
//! it in order (the protocol has no interleaving), so a long `watch`
//! occupies the connection until the job ends — open a second client for
//! concurrent control traffic.
//!
//! The client is **resilient**: transport failures (connect refused,
//! torn response line, server restart mid-request) are retried up to
//! [`RetryPolicy::attempts`] times with jittered exponential backoff,
//! reconnecting between attempts; a [`crate::serve::proto::Response::Busy`]
//! admission refusal is likewise retried without reconnecting. Retrying
//! a submit is safe because every submit carries a `dedup` idempotency
//! token (auto-generated when the spec has none): a resubmit the server
//! already executed returns the existing job id instead of double-
//! queueing. Retries are counted in the `client.retries` obs counter.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ggjson::{FromJson, Json};

use crate::error::Error;
use crate::serve::job::{JobEvent, JobSpec, JobStatus};
use crate::serve::proto::{Request, Response};
use crate::serve::server::ServerStats;

/// Bounded-retry backoff policy for transport failures and `Busy`
/// admission refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, fail fast).
    pub fn none() -> Self {
        Self {
            attempts: 1,
            ..Self::default()
        }
    }

    /// The delay before retry number `retry` (1-based), jittered
    /// deterministically from `salt` into the upper half of the
    /// exponential window — spreads reconnect stampedes without an RNG
    /// dependency.
    pub fn backoff(&self, retry: u32, salt: u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.min(16).saturating_sub(1))
            .min(self.max_delay);
        let h = faults::splitmix64(salt ^ u64::from(retry).rotate_left(32));
        // Jitter factor in [0.5, 1.0).
        let factor = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(factor)
    }
}

struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A connection to a running `ggd serve` daemon.
pub struct Client {
    socket: PathBuf,
    policy: RetryPolicy,
    conn: Option<Conn>,
    /// Jitter/dedup salt, unique per client instance.
    salt: u64,
    token_counter: AtomicU64,
}

fn client_salt() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    faults::splitmix64(nanos ^ (u64::from(std::process::id()) << 32))
}

fn dial(socket: &Path) -> Result<Conn, Error> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| Error::Serve(format!("cannot connect to {}: {e}", socket.display())))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| Error::Serve(format!("cannot clone socket: {e}")))?;
    Ok(Conn {
        reader: BufReader::new(read_half),
        writer: stream,
    })
}

impl Client {
    /// Connects to the daemon's Unix-domain socket with the default
    /// [`RetryPolicy`].
    pub fn connect(socket: &Path) -> Result<Self, Error> {
        Self::with_policy(socket, RetryPolicy::default())
    }

    /// Connects with an explicit retry policy. The initial connect is
    /// itself retried per the policy.
    pub fn with_policy(socket: &Path, policy: RetryPolicy) -> Result<Self, Error> {
        let mut client = Self {
            socket: socket.to_path_buf(),
            policy,
            conn: None,
            salt: client_salt(),
            token_counter: AtomicU64::new(0),
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// Like [`Client::connect`], but keeps retrying for up to `patience`
    /// while the daemon is still binding its socket (jittered backoff
    /// between attempts).
    pub fn connect_with_retry(socket: &Path, patience: Duration) -> Result<Self, Error> {
        let policy = RetryPolicy::default();
        let salt = client_salt();
        let start = std::time::Instant::now();
        let mut retry = 0u32;
        loop {
            match Self::with_policy(socket, policy) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= patience => return Err(e),
                Err(_) => {
                    retry += 1;
                    std::thread::sleep(policy.backoff(retry, salt).min(Duration::from_millis(100)));
                }
            }
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, Error> {
        if self.conn.is_none() {
            self.conn = Some(dial(&self.socket)?);
        }
        match self.conn.as_mut() {
            Some(c) => Ok(c),
            None => Err(Error::Serve("connection unavailable".into())),
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), Error> {
        let mut line = req.to_line();
        line.push('\n');
        let conn = self.ensure_conn()?;
        conn.writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| Error::Serve(format!("cannot send request: {e}")))
    }

    /// Reads one complete response line. A line without its trailing
    /// newline is *torn* (the server died mid-write): it is reported as
    /// a transport error, never parsed — the retry layer reconnects and
    /// reissues rather than acting on a half response.
    fn recv(&mut self) -> Result<Response, Error> {
        let conn = self.ensure_conn()?;
        let mut line = String::new();
        let n = conn
            .reader
            .read_line(&mut line)
            .map_err(|e| Error::Serve(format!("cannot read response: {e}")))?;
        if n == 0 {
            return Err(Error::Serve("server closed the connection".into()));
        }
        if !line.ends_with('\n') {
            return Err(Error::Serve(format!(
                "torn response line ({n} bytes, no newline)"
            )));
        }
        Response::from_line(line.trim_end())
    }

    /// One send+recv on the current connection; any failure is a
    /// transport error from the caller's perspective.
    fn try_once(&mut self, req: &Request) -> Result<Response, Error> {
        self.send(req)?;
        self.recv()
    }

    /// Sends a single-response request and returns the `ok` payload,
    /// retrying transport failures (with reconnect) and `Busy` refusals
    /// (without) per the policy. All requests are idempotent — submits
    /// by virtue of their dedup token.
    fn round_trip(&mut self, req: &Request) -> Result<Json, Error> {
        let mut last = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                metrics().retries.incr();
                std::thread::sleep(self.policy.backoff(attempt, self.salt));
            }
            match self.try_once(req) {
                Ok(Response::Ok(payload)) => return Ok(payload),
                Ok(Response::Err(why)) => return Err(Error::Serve(why)),
                Ok(Response::Event(_)) => {
                    return Err(Error::Serve(
                        "unexpected event outside a watch stream".into(),
                    ))
                }
                Ok(Response::Busy(why)) => {
                    // Admission refusal: the connection is healthy; just
                    // wait for load to drain.
                    last = Some(Error::Busy(why));
                }
                Err(transport) => {
                    self.conn = None;
                    last = Some(transport);
                }
            }
        }
        Err(last.unwrap_or_else(|| Error::Serve("request failed".into())))
    }

    fn typed<T: FromJson>(&mut self, req: &Request, what: &str) -> Result<T, Error> {
        let payload = self.round_trip(req)?;
        T::from_json(&payload)
            .ok_or_else(|| Error::Serve(format!("malformed {what} payload from server")))
    }

    /// A fresh idempotency token, unique across processes and client
    /// instances.
    fn fresh_token(&self) -> String {
        let n = self.token_counter.fetch_add(1, Ordering::Relaxed);
        format!("c{:016x}-{n}", self.salt)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), Error> {
        self.round_trip(&Request::Ping).map(|_| ())
    }

    /// Queues a job; returns its id. A spec without a `dedup` token gets
    /// a fresh one so transport retries cannot double-queue the job.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, Error> {
        let mut spec = spec.clone();
        if spec.dedup.is_none() {
            spec.dedup = Some(self.fresh_token());
        }
        let payload = self.round_trip(&Request::Submit(spec))?;
        payload
            .get("job")
            .and_then(u64::from_json)
            .ok_or_else(|| Error::Serve("submit reply lacks a job id".into()))
    }

    /// Point-in-time status of one job.
    pub fn status(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Status(id), "status")
    }

    /// Status of every job, in submit order.
    pub fn jobs(&mut self) -> Result<Vec<JobStatus>, Error> {
        self.typed(&Request::Jobs, "jobs")
    }

    /// Parks a job at its next generation boundary; returns its status.
    pub fn pause(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Pause(id), "pause")
    }

    /// Re-queues a paused job; returns its status.
    pub fn resume(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Resume(id), "resume")
    }

    /// Cancels a job; returns its status.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatus, Error> {
        self.typed(&Request::Cancel(id), "cancel")
    }

    /// Final result payload of a done job.
    pub fn result(&mut self, id: u64) -> Result<Json, Error> {
        self.round_trip(&Request::Result(id))
    }

    /// Scheduler and baseline-cache counters.
    pub fn stats(&mut self) -> Result<ServerStats, Error> {
        self.typed(&Request::Stats, "stats")
    }

    /// Asks the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), Error> {
        self.round_trip(&Request::Shutdown).map(|_| ())
    }

    /// Streams a job's events from stream cursor `from` until the job is
    /// terminal, invoking `on_event` per event; returns the final status.
    ///
    /// Survives server restarts: on a transport failure the client
    /// reconnects (per policy) and re-subscribes from the cursor after
    /// the last delivered event, so no event is delivered twice and the
    /// retry budget resets whenever the stream makes progress.
    pub fn watch(
        &mut self,
        id: u64,
        from: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobStatus, Error> {
        let mut cursor = from;
        let mut failures = 0u32;
        'resubscribe: loop {
            if let Err(e) = self.send(&Request::Watch {
                job: id,
                from: cursor,
            }) {
                self.conn = None;
                failures += 1;
                if failures >= self.policy.attempts.max(1) {
                    return Err(e);
                }
                metrics().retries.incr();
                std::thread::sleep(self.policy.backoff(failures, self.salt));
                continue 'resubscribe;
            }
            loop {
                match self.recv() {
                    Ok(Response::Event(e)) => {
                        cursor = e.seq + 1;
                        failures = 0;
                        on_event(&e);
                    }
                    Ok(Response::Ok(payload)) => {
                        return JobStatus::from_json(&payload).ok_or_else(|| {
                            Error::Serve("malformed final status from watch".into())
                        })
                    }
                    Ok(Response::Err(why)) => return Err(Error::Serve(why)),
                    Ok(Response::Busy(why)) => return Err(Error::Busy(why)),
                    Err(transport) => {
                        self.conn = None;
                        failures += 1;
                        if failures >= self.policy.attempts.max(1) {
                            return Err(transport);
                        }
                        metrics().retries.incr();
                        std::thread::sleep(self.policy.backoff(failures, self.salt));
                        continue 'resubscribe;
                    }
                }
            }
        }
    }
}

struct ClientMetrics {
    retries: obs::Counter,
}

fn metrics() -> &'static ClientMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        retries: obs::counter("client.retries"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        let d1 = p.backoff(1, 7);
        let d2 = p.backoff(2, 7);
        let d3 = p.backoff(3, 7);
        // Upper-half jitter: each delay sits in [exp/2, exp].
        assert!(d1 >= p.base_delay / 2 && d1 <= p.base_delay);
        assert!(d2 >= p.base_delay && d2 <= p.base_delay * 2);
        assert!(d3 >= p.base_delay * 2 && d3 <= p.base_delay * 4);
        // Deterministic per (retry, salt); different salts spread out.
        assert_eq!(p.backoff(1, 7), d1);
        assert!(
            (1..100u64).any(|s| p.backoff(1, s) != d1),
            "salt varies jitter"
        );
        // The cap holds even for absurd retry counts.
        assert!(p.backoff(40, 7) <= p.max_delay);
    }

    #[test]
    fn torn_lines_are_transport_errors() {
        use std::io::Read;
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir().join(format!("ggc-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let sock = dir.join("t.sock");
        let listener = UnixListener::bind(&sock).expect("bind");
        // A fake server that answers the first request with a *torn*
        // line (no trailing newline) and drops the connection, then
        // answers the retry properly.
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept 1");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"{\"ok\":\"po").expect("torn write");
            drop(s);
            let (mut s, _) = listener.accept().expect("accept 2");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"{\"ok\":\"pong\"}\n").expect("full write");
        });
        let mut client = Client::with_policy(
            &sock,
            RetryPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
            },
        )
        .expect("connect");
        client.ping().expect("retry recovers from the torn line");
        server.join().expect("fake server");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_attaches_a_dedup_token_and_retries_busy() {
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir().join(format!("ggc-busy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let sock = dir.join("b.sock");
        let listener = UnixListener::bind(&sock).expect("bind");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(s.try_clone().expect("clone"));
            let mut first = String::new();
            reader.read_line(&mut first).expect("read 1");
            s.write_all(b"{\"busy\":\"queue full\"}\n").expect("busy");
            let mut second = String::new();
            reader.read_line(&mut second).expect("read 2");
            s.write_all(b"{\"ok\":{\"job\":11}}\n").expect("ok");
            (first, second)
        });
        let mut client = Client::with_policy(
            &sock,
            RetryPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
            },
        )
        .expect("connect");
        let id = client
            .submit(&JobSpec::analyze("TINY"))
            .expect("busy then ok");
        assert_eq!(id, 11);
        let (first, second) = server.join().expect("fake server");
        assert!(first.contains("\"dedup\":\"c"), "token attached: {first}");
        assert_eq!(first, second, "retry reissues the identical request");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_busy_retries_surface_as_error_busy() {
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir().join(format!("ggc-busy2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let sock = dir.join("b2.sock");
        let listener = UnixListener::bind(&sock).expect("bind");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(s.try_clone().expect("clone"));
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read");
                s.write_all(b"{\"busy\":\"still full\"}\n").expect("busy");
            }
        });
        let mut client = Client::with_policy(
            &sock,
            RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
        )
        .expect("connect");
        match client.ping() {
            Err(Error::Busy(why)) => assert!(why.contains("still full")),
            other => panic!("expected Error::Busy, got {other:?}"),
        }
        server.join().expect("fake server");
        std::fs::remove_dir_all(&dir).ok();
    }
}
