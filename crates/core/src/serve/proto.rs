//! The `ggjson`-over-Unix-socket wire protocol.
//!
//! Newline-delimited: every request and every response is one compact
//! JSON object per line (`ggjson::to_string_compact` never emits literal
//! newlines — control characters inside strings are escaped). Requests
//! carry the protocol version; most get exactly one response line, and
//! `watch` streams zero or more `{"event": …}` lines before its final
//! `{"ok": …}` / `{"err": …}`.
//!
//! | request                                        | response lines                       |
//! |------------------------------------------------|--------------------------------------|
//! | `{"v":1,"req":"ping"}`                         | `{"ok":"pong"}`                      |
//! | `{"v":1,"req":"submit","job":{…}}`             | `{"ok":{"job":<id>}}`                |
//! | `{"v":1,"req":"status","job":N}`               | `{"ok":<JobStatus>}`                 |
//! | `{"v":1,"req":"watch","job":N,"from":K}`       | `{"event":<JobEvent>}`* then `{"ok":<JobStatus>}` |
//! | `{"v":1,"req":"pause","job":N}`                | `{"ok":<JobStatus>}`                 |
//! | `{"v":1,"req":"resume","job":N}`               | `{"ok":<JobStatus>}`                 |
//! | `{"v":1,"req":"cancel","job":N}`               | `{"ok":<JobStatus>}`                 |
//! | `{"v":1,"req":"result","job":N}`               | `{"ok":<result payload>}`            |
//! | `{"v":1,"req":"jobs"}`                         | `{"ok":[<JobStatus>…]}`              |
//! | `{"v":1,"req":"stats"}`                        | `{"ok":<ServerStats>}`               |
//! | `{"v":1,"req":"shutdown"}`                     | `{"ok":"bye"}`                       |
//!
//! Any failure is a single `{"err":"diagnostic"}` line; the connection
//! stays usable for further requests either way. A submit refused by
//! admission control (queue depth or memory budget, see
//! [`crate::serve::ServerConfig`]) gets `{"busy":"why"}` instead — a
//! *retryable* refusal the client retries with jittered backoff, unlike
//! the terminal `{"err":…}`.

use ggjson::{FromJson, Json, ToJson};

use crate::error::Error;
use crate::serve::job::{JobEvent, JobSpec};

/// Wire protocol version spoken by [`crate::serve::Server`] and
/// [`crate::serve::Client`].
pub const PROTO_VERSION: u32 = 1;

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Queue a job.
    Submit(JobSpec),
    /// One job's status.
    Status(u64),
    /// Stream a job's events from stream position `from` until terminal.
    Watch {
        /// Job id.
        job: u64,
        /// Event stream cursor (0 = from the beginning).
        from: u64,
    },
    /// Park a job at its next generation boundary.
    Pause(u64),
    /// Re-queue a paused job.
    Resume(u64),
    /// Cancel a job.
    Cancel(u64),
    /// Final result payload of a done job.
    Result(u64),
    /// Status of all jobs.
    Jobs,
    /// Scheduler and baseline-cache counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Encodes as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut members = vec![
            ("v".to_owned(), Json::Num(f64::from(PROTO_VERSION))),
            ("req".to_owned(), Json::Str(self.name().to_owned())),
        ];
        match self {
            Request::Ping | Request::Jobs | Request::Stats | Request::Shutdown => {}
            Request::Submit(spec) => members.push(("job".to_owned(), spec.to_json())),
            Request::Status(id)
            | Request::Pause(id)
            | Request::Resume(id)
            | Request::Cancel(id)
            | Request::Result(id) => {
                members.push(("job".to_owned(), Json::Num(*id as f64)));
            }
            Request::Watch { job, from } => {
                members.push(("job".to_owned(), Json::Num(*job as f64)));
                members.push(("from".to_owned(), Json::Num(*from as f64)));
            }
        }
        ggjson::to_string_compact(&Json::Obj(members))
    }

    /// Decodes one request line.
    pub fn from_line(line: &str) -> Result<Self, Error> {
        let j: Json = ggjson::from_str(line)
            .ok_or_else(|| Error::Serve(format!("malformed request line: {line}")))?;
        let v = j.get("v").and_then(Json::as_num);
        if v != Some(f64::from(PROTO_VERSION)) {
            return Err(Error::Serve(format!(
                "unsupported protocol version {:?} (this server speaks {PROTO_VERSION})",
                v
            )));
        }
        let req = j
            .get("req")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Serve("request lacks a 'req' field".into()))?;
        let job_id = || {
            j.get("job")
                .and_then(u64::from_json)
                .ok_or_else(|| Error::Serve(format!("'{req}' needs a numeric 'job' field")))
        };
        match req {
            "ping" => Ok(Request::Ping),
            "jobs" => Ok(Request::Jobs),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "status" => Ok(Request::Status(job_id()?)),
            "pause" => Ok(Request::Pause(job_id()?)),
            "resume" => Ok(Request::Resume(job_id()?)),
            "cancel" => Ok(Request::Cancel(job_id()?)),
            "result" => Ok(Request::Result(job_id()?)),
            "watch" => Ok(Request::Watch {
                job: job_id()?,
                from: j.get("from").and_then(u64::from_json).unwrap_or(0),
            }),
            "submit" => {
                let spec = j
                    .get("job")
                    .and_then(JobSpec::from_json)
                    .ok_or_else(|| Error::Serve("'submit' needs a 'job' spec object".into()))?;
                Ok(Request::Submit(spec))
            }
            other => Err(Error::Serve(format!("unknown request '{other}'"))),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Submit(_) => "submit",
            Request::Status(_) => "status",
            Request::Watch { .. } => "watch",
            Request::Pause(_) => "pause",
            Request::Resume(_) => "resume",
            Request::Cancel(_) => "cancel",
            Request::Result(_) => "result",
            Request::Jobs => "jobs",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Request succeeded; the payload shape depends on the request.
    Ok(Json),
    /// Request failed; the payload is the diagnostic.
    Err(String),
    /// Request refused by admission control; retry after backoff. Maps
    /// to [`Error::Busy`] on the client side.
    Busy(String),
    /// One streamed job event (`watch` only, before the final `Ok`).
    Event(JobEvent),
}

impl Response {
    /// Encodes as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Response::Ok(payload) => Json::Obj(vec![("ok".to_owned(), payload.clone())]),
            Response::Err(why) => Json::Obj(vec![("err".to_owned(), Json::Str(why.clone()))]),
            Response::Busy(why) => Json::Obj(vec![("busy".to_owned(), Json::Str(why.clone()))]),
            Response::Event(e) => Json::Obj(vec![("event".to_owned(), e.to_json())]),
        };
        ggjson::to_string_compact(&obj)
    }

    /// Decodes one response line.
    pub fn from_line(line: &str) -> Result<Self, Error> {
        let j: Json = ggjson::from_str(line)
            .ok_or_else(|| Error::Serve(format!("malformed response line: {line}")))?;
        if let Some(payload) = j.get("ok") {
            return Ok(Response::Ok(payload.clone()));
        }
        if let Some(why) = j.get("err").and_then(Json::as_str) {
            return Ok(Response::Err(why.to_owned()));
        }
        if let Some(why) = j.get("busy").and_then(Json::as_str) {
            return Ok(Response::Busy(why.to_owned()));
        }
        if let Some(e) = j.get("event") {
            let event = JobEvent::from_json(e)
                .ok_or_else(|| Error::Serve("malformed event payload".into()))?;
            return Ok(Response::Event(event));
        }
        Err(Error::Serve(format!(
            "response is neither ok, err, busy, nor event: {line}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Jobs,
            Request::Stats,
            Request::Shutdown,
            Request::Status(3),
            Request::Pause(4),
            Request::Resume(5),
            Request::Cancel(6),
            Request::Result(7),
            Request::Watch { job: 8, from: 12 },
            Request::Submit(JobSpec::explore("TINY")),
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::from_line(&line).expect("round trip"), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Ok(Json::Str("pong".into())),
            Response::Err("no job 9".into()),
            Response::Busy("7 jobs queued (limit 4)".into()),
            Response::Event(JobEvent {
                seq: 0,
                tick: 4,
                kind: "queued".into(),
                generation: None,
                data: Json::Null,
            }),
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).expect("round trip"), r);
        }
    }

    #[test]
    fn version_mismatch_is_refused() {
        assert!(Request::from_line("{\"v\":2,\"req\":\"ping\"}").is_err());
        assert!(Request::from_line("{\"req\":\"ping\"}").is_err());
    }
}
