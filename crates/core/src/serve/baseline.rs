//! The per-design shared baseline cache.
//!
//! Building a baseline (placement, routing, STA, power model) is the
//! expensive part of every job; a server builds it **once per design**,
//! lazily, and every job over that design shares the result. The cached
//! unit is a whole [`EvalEngine`], not just the snapshot, so concurrent
//! jobs also share the engine's operator-edit and metrics memos —
//! which is bit-safe, because a memo hit returns exactly what a fresh
//! recompute would (pinned by the incremental-equivalence suite).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use netlist::bench::DesignSpec;
use tech::Technology;

use crate::error::Error;
use crate::pipeline::{implement_baseline, EvalEngine, MemoryFootprint, Snapshot};
use crate::serve::job::BaselineSummary;

/// An implemented design shared by every job targeting it: the spec it
/// was built from, a ready evaluation engine (which owns the baseline
/// snapshot), and the pre-rendered headline summary.
pub struct DesignContext {
    /// The benchmark spec the baseline was implemented from.
    pub spec: DesignSpec,
    /// Engine over the implemented baseline; [`EvalEngine::base`] is the
    /// baseline snapshot.
    pub engine: EvalEngine,
    /// Headline metrics of the baseline, attached to `baseline` events.
    pub summary: BaselineSummary,
}

impl DesignContext {
    /// The implemented baseline snapshot.
    pub fn base(&self) -> &Snapshot {
        self.engine.base()
    }
}

type Slot = Arc<OnceLock<Result<Arc<DesignContext>, Error>>>;

/// Lazily-built, design-keyed cache of [`DesignContext`]s.
///
/// Each design gets one `OnceLock` slot: the first job to ask performs
/// the build while later askers block on the same slot instead of
/// duplicating the work, and every subsequent hit is a pointer clone.
pub struct BaselineCache {
    tech: Technology,
    slots: Mutex<HashMap<String, Slot>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl BaselineCache {
    /// An empty cache implementing baselines against `tech`.
    pub fn new(tech: Technology) -> Self {
        Self {
            tech,
            slots: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The technology baselines are implemented against.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Returns the shared context for `design`, building it on first use.
    ///
    /// Unknown designs and baselines that fail consistency checks are
    /// typed errors; a failed build is cached too, so a bad design fails
    /// fast for every job that names it.
    pub fn get(&self, design: &str) -> Result<Arc<DesignContext>, Error> {
        let slot: Slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(slots.entry(design.to_owned()).or_default())
        };
        let mut built_here = false;
        let outcome = slot.get_or_init(|| {
            built_here = true;
            self.build(design)
        });
        if built_here {
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// Summed [`MemoryFootprint`] of every successfully built context —
    /// what the cache currently pins in memory across all designs.
    /// Slots still building are skipped (a non-blocking peek).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let slots: Vec<Slot> = {
            let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            slots.values().map(Arc::clone).collect()
        };
        let mut total = MemoryFootprint::default();
        for slot in slots {
            if let Some(Ok(ctx)) = slot.get() {
                let m = ctx.engine.memory_footprint();
                total.occupancy_bytes += m.occupancy_bytes;
                total.route_planes_bytes += m.route_planes_bytes;
                total.cache_bytes += m.cache_bytes;
            }
        }
        total
    }

    /// `(builds, hits)` counters: how many contexts were constructed vs
    /// served from cache. `builds` counts failed builds too.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.builds.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    fn build(&self, design: &str) -> Result<Arc<DesignContext>, Error> {
        let spec = resolve_spec(design)
            .ok_or_else(|| Error::Serve(format!("unknown design '{design}'")))?;
        let base = implement_baseline(&spec, &self.tech)?;
        let summary = BaselineSummary::from_snapshot(&base);
        let engine = EvalEngine::new(&base, &self.tech);
        Ok(Arc::new(DesignContext {
            spec,
            engine,
            summary,
        }))
    }
}

/// Resolves a design name to its benchmark spec.
///
/// Accepts the twelve `netlist::bench` specs (optionally with a
/// `@x{factor}` scale suffix, e.g. `AES_2@x7`) plus `TINY`, the
/// miniature smoke-test design the CI drills run (it is not part of the
/// published benchmark table, so `parse_spec` does not know it).
pub fn resolve_spec(design: &str) -> Option<DesignSpec> {
    if design == "TINY" {
        return Some(netlist::bench::tiny_spec());
    }
    netlist::bench::parse_spec(design)
}

/// One-line roster of every name [`resolve_spec`] accepts, for fail-fast
/// CLI diagnostics.
pub fn known_designs() -> String {
    let mut names = vec!["TINY"];
    names.extend(netlist::bench::known_names());
    format!(
        "{} (append @x<N> to scale, e.g. AES_2@x7)",
        names.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_knows_tiny_and_benchmarks() {
        assert_eq!(resolve_spec("TINY").map(|s| s.name), Some("TINY"));
        assert!(resolve_spec("AES_1").is_some());
        assert!(resolve_spec("NOPE").is_none());
    }

    #[test]
    fn resolver_accepts_scale_suffix_and_roster_lists_everything() {
        let big = resolve_spec("AES_2@x7").expect("scaled spec resolves");
        assert_eq!(big.target_cells, 7 * 16_000);
        assert!(resolve_spec("NOPE@x2").is_none());
        assert!(resolve_spec("TINY@x2").is_none(), "TINY does not scale");
        let roster = known_designs();
        assert!(roster.starts_with("TINY, AES_1"));
        assert!(roster.contains("TDEA"));
        assert!(roster.contains("@x<N>"));
    }

    #[test]
    fn cache_builds_once_and_counts_hits() {
        let cache = BaselineCache::new(Technology::nangate45_like());
        let a = cache.get("TINY").expect("tiny builds");
        let b = cache.get("TINY").expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn unknown_design_is_a_cached_typed_error() {
        let cache = BaselineCache::new(Technology::nangate45_like());
        for _ in 0..2 {
            match cache.get("NOPE") {
                Err(Error::Serve(why)) => assert!(why.contains("NOPE")),
                Err(other) => panic!("expected Serve error, got {other:?}"),
                Ok(_) => panic!("expected Serve error, got a context"),
            }
        }
        assert_eq!(cache.stats(), (1, 1));
    }
}
