//! The durable job journal: a write-ahead log of job-lifecycle
//! transitions that makes `ggd serve` crash-safe.
//!
//! Every registry transition (`submitted`, `started`, `generation`,
//! `paused`, `resumed`, `cancelled`, `done`, `failed`) is appended as one
//! checksummed newline-delimited `ggjson` record **before** the
//! transition is published to watchers, so a `kill -9` at any instant
//! loses at most the in-flight step — which the per-job checkpoint
//! envelope re-runs bit-identically on recovery (`halt_after` forces a
//! checkpoint at every scheduler step, and re-running an
//! already-checkpointed step returns the archived result instead of
//! recomputing).
//!
//! # Format
//!
//! A journal is a directory of segment files `seg-NNNNNN.ggjsonl`. Each
//! line is an envelope `{"v":1,"checksum":"<fnv1a hex64>","record":{…}}`
//! where the checksum covers the record's compact serialization — the
//! same re-render-the-parsed-payload verification the checkpoint
//! envelope uses (§2e), scaled down to one line. Replay reads segments
//! in index order and **skips** undecodable lines (torn tails from a
//! mid-write crash, bit rot) with a `journal.skipped_records` counter
//! instead of refusing the whole log: a lost transition only means a
//! job resumes from an earlier, still-consistent position.
//!
//! # Rotation and compaction
//!
//! When the active segment passes its byte threshold, the registry
//! rewrites the journal: a fresh segment receives a *snapshot* — the
//! minimal record sequence reproducing every job's current state (two
//! lines for a terminal job, at most three for a live one) — via the
//! tmp + sync + rename idiom, and older segments are deleted. Replay is
//! insensitive to a crash between those two steps because a re-replayed
//! `submitted` record overwrites the job it re-introduces.
//!
//! # Failure containment
//!
//! An append that fails (disk full, injected `journal.write` fault)
//! degrades to a warning plus a `journal.write_errors` counter — the
//! server keeps serving; durability is reduced, never availability. A
//! torn half-line left by the failure is isolated by prefixing the next
//! append with a newline, so at most one record is lost per I/O error.
//!
//! # Durability policy
//!
//! Appends are written and flushed on every record but `fsync`ed only
//! for `submitted` records. A SIGKILL loses no flushed data (the page
//! cache outlives the process); `fsync` matters only for power loss,
//! where every record except `submitted` is recomputable from the
//! checkpoint — so the journal pays one disk sync per job instead of
//! one per generation, keeping its overhead under the 2 % explore-wall
//! budget `bench_explore --smoke` enforces.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ggjson::{FromJson, Json, ToJson};

use crate::checkpoint::{fnv1a, hex64};
use crate::error::Error;
use crate::serve::job::JobSpec;

/// Journal line-envelope format version; replay skips lines carrying a
/// different version (forward-compatible: an old daemon never
/// mis-parses a newer log).
pub const JOURNAL_VERSION: u32 = 1;

/// Default rotation threshold for the active segment.
const SEGMENT_BYTES_DEFAULT: u64 = 1 << 20;

/// One journaled job-lifecycle transition.
///
/// `kind` selects which optional fields are meaningful: `submitted`
/// carries the full spec, checkpoint path, and submit-order ticket;
/// `generation` the completed step index; `resumed` the fresh ticket;
/// `done` the result payload; `failed` the diagnostic. Unused fields
/// are `None`/0 on the wire (`ggjson` requires every key present).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Job id the transition belongs to.
    pub job: u64,
    /// Transition kind: `submitted`, `started`, `generation`, `paused`,
    /// `resumed`, `cancelled`, `done`, or `failed`.
    pub kind: String,
    /// Submit-order ticket (`submitted` and `resumed` records).
    pub seq: u64,
    /// Completed scheduler step (`generation` records).
    pub generation: Option<u64>,
    /// The validated spec (`submitted` records only).
    pub spec: Option<JobSpec>,
    /// Checkpoint envelope path backing the job (`submitted` only).
    pub checkpoint: Option<String>,
    /// Final result payload (`done` records only).
    pub result: Option<Json>,
    /// Failure diagnostic (`failed` records only).
    pub error: Option<String>,
}

ggjson::json_struct!(JournalRecord {
    job,
    kind,
    seq,
    generation,
    spec,
    checkpoint,
    result,
    error
});

impl JournalRecord {
    fn bare(job: u64, kind: &str) -> Self {
        Self {
            job,
            kind: kind.to_owned(),
            seq: 0,
            generation: None,
            spec: None,
            checkpoint: None,
            result: None,
            error: None,
        }
    }

    /// A `submitted` record carrying everything needed to re-create the
    /// job on replay.
    pub fn submitted(job: u64, spec: &JobSpec, seq: u64, checkpoint: &Path) -> Self {
        Self {
            seq,
            spec: Some(spec.clone()),
            checkpoint: Some(checkpoint.display().to_string()),
            ..Self::bare(job, "submitted")
        }
    }

    /// A bare lifecycle transition (`started`, `paused`, `cancelled`).
    pub fn transition(job: u64, kind: &str) -> Self {
        Self::bare(job, kind)
    }

    /// A completed scheduler step.
    pub fn generation(job: u64, generation: u64) -> Self {
        Self {
            generation: Some(generation),
            ..Self::bare(job, "generation")
        }
    }

    /// A resume, carrying the job's fresh submit-order ticket.
    pub fn resumed(job: u64, seq: u64) -> Self {
        Self {
            seq,
            ..Self::bare(job, "resumed")
        }
    }

    /// Terminal success, carrying the result payload.
    pub fn done(job: u64, result: Json) -> Self {
        Self {
            result: Some(result),
            ..Self::bare(job, "done")
        }
    }

    /// Terminal failure, carrying the diagnostic.
    pub fn failed(job: u64, error: &str) -> Self {
        Self {
            error: Some(error.to_owned()),
            ..Self::bare(job, "failed")
        }
    }
}

/// Encodes one record as its checksummed line envelope (no newline).
fn encode_line(rec: &JournalRecord) -> String {
    // Rendered once; the envelope splices the rendered text. Decode
    // re-renders the *parsed* record for verification, which reproduces
    // this exact text (the compact renderer is deterministic and
    // preserves object member order).
    let text = ggjson::to_string_compact(&rec.to_json());
    let sum = hex64(fnv1a(text.as_bytes()));
    format!("{{\"v\":{JOURNAL_VERSION},\"checksum\":\"{sum}\",\"record\":{text}}}")
}

/// Decodes and verifies one line envelope; `None` for anything torn,
/// corrupt, or from a different format version.
fn decode_line(line: &str) -> Option<JournalRecord> {
    let j: Json = ggjson::from_str(line)?;
    if j.get("v").and_then(Json::as_num) != Some(f64::from(JOURNAL_VERSION)) {
        return None;
    }
    let record = j.get("record")?;
    let expect = j.get("checksum").and_then(Json::as_str)?;
    let actual = hex64(fnv1a(ggjson::to_string_compact(record).as_bytes()));
    if expect != actual {
        return None;
    }
    JournalRecord::from_json(record)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.ggjsonl"))
}

/// Parses a segment file name back to its index.
fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".ggjsonl")?
        .parse()
        .ok()
}

/// Sorted indices of every segment currently in `dir`.
fn segment_indices(dir: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| segment_index(&e.file_name().to_string_lossy()))
        .collect();
    found.sort_unstable();
    found
}

struct WriterState {
    file: Option<File>,
    /// Active segment index.
    seg: u64,
    /// Bytes appended to the active segment so far.
    bytes: u64,
    /// The previous append failed mid-line; isolate the torn tail by
    /// starting the next line on a fresh newline.
    dirty: bool,
}

/// An open, appendable job journal (see module docs).
pub struct Journal {
    dir: PathBuf,
    state: Mutex<WriterState>,
    rotate_bytes: u64,
    /// `fsync` appends of `submitted` records (the only record whose
    /// loss under power failure cannot be recomputed). On by default;
    /// tests of rotation mechanics may turn it off for speed.
    sync: bool,
    write_counter: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal under `dir` for append,
    /// continuing the highest existing segment.
    pub fn open(dir: &Path) -> Result<Self, Error> {
        Self::open_with(dir, SEGMENT_BYTES_DEFAULT, true)
    }

    /// [`Journal::open`] with an explicit rotation threshold and sync
    /// policy, for tests.
    pub fn open_with(dir: &Path, rotate_bytes: u64, sync: bool) -> Result<Self, Error> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("cannot create {}: {e}", dir.display())))?;
        let seg = segment_indices(dir).last().copied().unwrap_or(1);
        let path = segment_path(dir, seg);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("cannot open {}: {e}", path.display())))?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(WriterState {
                file: Some(file),
                seg,
                bytes,
                dirty: false,
            }),
            rotate_bytes,
            sync,
            write_counter: AtomicU64::new(0),
        })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record: encode, write, flush — and `fsync` only for
    /// `submitted` records. A SIGKILL'd process loses nothing it has
    /// written (the page cache survives the process); `fsync` guards
    /// against *power loss*, where losing any other record merely
    /// downgrades recovery to re-running from the checkpoint, while a
    /// lost `submitted` record loses the job itself. Syncing just the
    /// one record per job keeps journal overhead far under the 2 %
    /// explore-wall budget `bench_explore --smoke` enforces. Returns
    /// whether the record was recorded. Failure (including an armed
    /// `journal.write` fault) degrades to a warning plus the
    /// `journal.write_errors` counter — the caller keeps serving.
    pub fn append(&self, rec: &JournalRecord) -> bool {
        static JOURNAL_WRITE: faults::Point = faults::Point::new("journal.write");
        let t0 = Instant::now();
        let key = self.write_counter.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut line = String::new();
        if std::mem::take(&mut state.dirty) {
            line.push('\n');
        }
        line.push_str(&encode_line(rec));
        line.push('\n');
        let outcome = if JOURNAL_WRITE.fires_external(key) {
            Err(std::io::Error::other("injected fault at journal.write"))
        } else {
            match state.file.as_mut() {
                Some(f) => f
                    .write_all(line.as_bytes())
                    .and_then(|()| f.flush())
                    .and_then(|()| {
                        if self.sync && rec.kind == "submitted" {
                            f.sync_data()
                        } else {
                            Ok(())
                        }
                    }),
                None => Err(std::io::Error::other("journal segment is not open")),
            }
        };
        match outcome {
            Ok(()) => {
                state.bytes += line.len() as u64;
                drop(state);
                let m = metrics();
                m.writes.incr();
                record_write_secs(t0.elapsed().as_secs_f64());
                true
            }
            Err(e) => {
                // The write may have landed partially; fence the next
                // line off from the torn tail.
                state.dirty = true;
                drop(state);
                metrics().write_errors.incr();
                obs::diagln!("journal: append failed ({e}); continuing without durability");
                false
            }
        }
    }

    /// Whether the active segment has outgrown its threshold and the
    /// owner should [`Journal::rewrite`] a compacted snapshot.
    pub fn should_rotate(&self) -> bool {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).bytes >= self.rotate_bytes
    }

    /// Compaction: writes `snapshot` to a fresh segment (tmp + sync +
    /// rename), switches appends to it, and deletes every older segment.
    /// A crash between install and deletion is benign — replay applies
    /// old records first and the snapshot's `submitted` records
    /// overwrite them.
    pub fn rewrite(&self, snapshot: &[JournalRecord]) -> Result<(), Error> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let next = state.seg + 1;
        let path = segment_path(&self.dir, next);
        let io = |e: std::io::Error| Error::Io(format!("{}: {e}", path.display()));
        let mut text = String::new();
        for rec in snapshot {
            text.push_str(&encode_line(rec));
            text.push('\n');
        }
        let tmp = PathBuf::from({
            let mut t = path.as_os_str().to_owned();
            t.push(".tmp");
            t
        });
        {
            let mut f = File::create(&tmp).map_err(io)?;
            f.write_all(text.as_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, &path).map_err(io)?;
        let file = OpenOptions::new().append(true).open(&path).map_err(io)?;
        let old = state.seg;
        state.file = Some(file);
        state.seg = next;
        state.bytes = text.len() as u64;
        state.dirty = false;
        drop(state);
        for idx in segment_indices(&self.dir) {
            if idx <= old {
                let _ = std::fs::remove_file(segment_path(&self.dir, idx));
            }
        }
        metrics().rotations.incr();
        Ok(())
    }

    /// Replays every decodable record under `dir`, in segment then line
    /// order. A missing directory is an empty journal; undecodable lines
    /// are skipped (counted in `journal.skipped_records`).
    pub fn replay(dir: &Path) -> Result<Vec<JournalRecord>, Error> {
        let mut out = Vec::new();
        if !dir.exists() {
            return Ok(out);
        }
        let mut skipped = 0u64;
        for idx in segment_indices(dir) {
            let path = segment_path(dir, idx);
            // `read` + lossy decode: a torn tail may not be valid UTF-8,
            // and must cost one line, not the segment.
            let bytes =
                std::fs::read(&path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
            for line in String::from_utf8_lossy(&bytes).lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_line(line) {
                    Some(rec) => out.push(rec),
                    None => skipped += 1,
                }
            }
        }
        if skipped > 0 {
            metrics().skipped.add(skipped);
            obs::diagln!(
                "journal: skipped {skipped} undecodable record(s) in {} (torn tail or corruption)",
                dir.display()
            );
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Cumulative nanoseconds spent appending, mirrored into the
/// `journal.write_secs` gauge (same idiom as `checkpoint.write_secs`).
static WRITE_NANOS: AtomicU64 = AtomicU64::new(0);

struct JournalMetrics {
    writes: obs::Counter,
    write_errors: obs::Counter,
    rotations: obs::Counter,
    skipped: obs::Counter,
    write_secs: obs::Gauge,
}

fn metrics() -> &'static JournalMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<JournalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| JournalMetrics {
        writes: obs::counter("journal.writes"),
        write_errors: obs::counter("journal.write_errors"),
        rotations: obs::counter("journal.rotations"),
        skipped: obs::counter("journal.skipped_records"),
        write_secs: obs::gauge("journal.write_secs"),
    })
}

fn record_write_secs(secs: f64) {
    let total = WRITE_NANOS.fetch_add((secs * 1e9) as u64, Ordering::Relaxed) as f64 / 1e9 + secs;
    metrics().write_secs.set(total);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ggj-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        let spec = JobSpec::explore("TINY");
        vec![
            JournalRecord::submitted(1, &spec, 0, Path::new("/tmp/job0.ckpt")),
            JournalRecord::transition(1, "started"),
            JournalRecord::generation(1, 0),
            JournalRecord::generation(1, 1),
            JournalRecord::transition(1, "paused"),
            JournalRecord::resumed(1, 7),
            JournalRecord::done(1, Json::Obj(vec![("x".into(), Json::Num(1.0))])),
            JournalRecord::failed(2, "step panicked: boom"),
        ]
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let recs = sample_records();
        {
            let j = Journal::open(&dir).expect("open");
            for r in &recs {
                assert!(j.append(r), "append succeeds");
            }
        }
        // A reopened journal appends to the same segment.
        let j = Journal::open(&dir).expect("reopen");
        assert!(j.append(&JournalRecord::transition(3, "cancelled")));
        let mut expect = recs;
        expect.push(JournalRecord::transition(3, "cancelled"));
        assert_eq!(Journal::replay(&dir).expect("replay"), expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_skips_torn_and_corrupt_lines() {
        let dir = tmp_dir("torn");
        let recs = sample_records();
        {
            let j = Journal::open(&dir).expect("open");
            for r in &recs {
                j.append(r);
            }
        }
        let seg = segment_path(&dir, 1);
        let mut text = std::fs::read_to_string(&seg).expect("read");
        // Corrupt one mid-file line (flip a byte inside record text) and
        // tear the tail (simulate a crash mid-append).
        let at = text.find("generation").expect("record text present");
        text.replace_range(at..at + 1, "G");
        text.push_str("{\"v\":1,\"checksum\":\"00");
        std::fs::write(&seg, &text).expect("write");
        let back = Journal::replay(&dir).expect("replay");
        assert_eq!(back.len(), recs.len() - 1, "one corrupt line dropped");
        assert!(back.iter().all(|r| recs.contains(r)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_compacts_and_drops_old_segments() {
        let dir = tmp_dir("rotate");
        let j = Journal::open_with(&dir, 256, false).expect("open");
        for r in &sample_records() {
            j.append(r);
        }
        assert!(j.should_rotate(), "tiny threshold passed");
        let snapshot = vec![
            JournalRecord::submitted(1, &JobSpec::explore("TINY"), 0, Path::new("/x.ckpt")),
            JournalRecord::generation(1, 1),
        ];
        j.rewrite(&snapshot).expect("rewrite");
        assert_eq!(segment_indices(&dir), vec![2], "old segment deleted");
        assert_eq!(Journal::replay(&dir).expect("replay"), snapshot);
        // Appends continue on the new segment.
        assert!(j.append(&JournalRecord::transition(1, "cancelled")));
        assert_eq!(Journal::replay(&dir).expect("replay").len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_faults_degrade_without_losing_later_records() {
        let dir = tmp_dir("faults");
        faults::arm_spec("journal.write:always").expect("arm");
        let j = Journal::open(&dir).expect("open");
        assert!(
            !j.append(&JournalRecord::transition(1, "started")),
            "fault drops the append"
        );
        faults::clear();
        assert!(j.append(&JournalRecord::transition(1, "paused")));
        let back = Journal::replay(&dir).expect("replay");
        assert_eq!(back, vec![JournalRecord::transition(1, "paused")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_empty_journal() {
        let dir = tmp_dir("missing");
        assert!(Journal::replay(&dir).expect("replay").is_empty());
    }
}
