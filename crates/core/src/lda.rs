//! **Dynamic Local Density Adjustment (LDA)** — anti-Trojan ECO placement
//! operator, Algorithm 2.
//!
//! For timing-tight or low-utilization designs, aggressive cell shifting
//! would wreck the fragile timing. LDA instead partitions the core into an
//! `N × N` grid, counts the security-critical assets per tile, converts the
//! normalized counts through a sigmoid into per-tile *density upper bounds*
//! (partial placement blockages), and runs wirelength-driven ECO placement.
//! Tiles rich in critical cells receive high density bounds (cells crowd in,
//! squeezing out free sites near the assets); asset-free tiles receive low
//! bounds (the whitespace migrates there, beyond exploitable distance).

use layout::{Blockage, Layout};
use place::EcoPlaceStats;
use tech::Technology;

/// Lower bound on any tile's density budget. See the floor pass in
/// [`local_density_adjustment`]: without it, hard-squeezed low-asset
/// tiles end phase 1 with zero headroom and the displaced cells have no
/// in-bounds destination at all.
const LDA_DENSITY_FLOOR: f64 = 0.50;

/// The logistic function used to smooth normalized asset counts into valid
/// density bounds.
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Parameters of one LDA run (Table I candidates: `N ∈ {2,4,8,16,32}`,
/// `n_iter ∈ {1,2,3}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdaParams {
    /// Grid tiles per row/column.
    pub n: u32,
    /// Density adjustment iterations.
    pub n_iter: u32,
}

impl LdaParams {
    /// Candidate `N` values from Table I.
    pub const N_CANDIDATES: [u32; 5] = [2, 4, 8, 16, 32];
    /// Candidate iteration counts from Table I.
    pub const ITER_CANDIDATES: [u32; 3] = [1, 2, 3];
}

impl Default for LdaParams {
    fn default() -> Self {
        Self { n: 8, n_iter: 1 }
    }
}

/// Splits `total` into `n` contiguous chunks, returning chunk boundaries
/// (length `n + 1`). Degenerate chunks are skipped by the caller.
fn chunk_bounds(total: u32, n: u32) -> Vec<u32> {
    (0..=n)
        .map(|i| (total as u64 * i as u64 / n as u64) as u32)
        .collect()
}

/// Runs the LDA operator. Returns the accumulated ECO placement statistics.
///
/// # Panics
///
/// Panics if `params.n == 0` or `params.n_iter == 0`.
pub fn local_density_adjustment(
    layout: &mut Layout,
    tech: &Technology,
    params: LdaParams,
    seed: u64,
) -> EcoPlaceStats {
    assert!(
        params.n > 0 && params.n_iter > 0,
        "degenerate LDA parameters"
    );
    layout.occupancy_mut().clear_fillers();
    let fp = *layout.floorplan();
    // Clamp the tiling so a tile is never smaller than the cells it must
    // budget: a 1-row × 3-site tile cannot meaningfully bound density when
    // the library's widest cell is 9 sites — every placement spanning such
    // tiles needs aligned headroom in each of them, and the site budgets
    // round to nothing, so fine tilings used to send most re-placements to
    // the anything-goes fallback. A tile at least two max-widths wide and
    // two rows tall keeps the bound meaningful at every `N` candidate.
    let w_max = tech
        .library
        .iter()
        .map(|(_, k)| k.width_sites)
        .max()
        .unwrap_or(1);
    let n_r = params.n.min(fp.rows() / 2).max(1);
    let n_c = params.n.min(fp.cols() / (2 * w_max).max(1)).max(1);
    let row_b = chunk_bounds(fp.rows(), n_r);
    let col_b = chunk_bounds(fp.cols(), n_c);
    let mut total = EcoPlaceStats::default();

    for iter in 0..params.n_iter {
        // Delete all existing placement blockages (Algorithm 2, line 3).
        layout.clear_blockages();

        // Count the critical assets per tile by their placement origin.
        let mut n_assets = vec![vec![0u32; n_c as usize]; n_r as usize];
        let critical = layout.design().critical_cells.clone();
        for &c in &critical {
            if let Some(pos) = layout.cell_pos(c) {
                let ti = row_b.partition_point(|&b| b <= pos.row).saturating_sub(1);
                let tj = col_b.partition_point(|&b| b <= pos.col).saturating_sub(1);
                n_assets[ti.min(n_r as usize - 1)][tj.min(n_c as usize - 1)] += 1;
            }
        }
        // Spatially smooth the counts over the exploitable neighborhood:
        // free sites in an asset-free tile *next to* the key bank are just
        // as exploitable as those inside it, so the density pressure must
        // extend over the tiles a Trojan could reach (~ an eighth of the
        // core, roughly the exploitable reach), not only the asset tiles.
        let radius = (n_r.max(n_c) as usize / 4).max(1);
        let raw = n_assets.clone();
        #[allow(clippy::needless_range_loop)] // windowed 2-D stencil; indices are the clearer form
        for i in 0..n_r as usize {
            for j in 0..n_c as usize {
                let mut acc = 0u32;
                for di in i.saturating_sub(radius)..(i + radius + 1).min(n_r as usize) {
                    for dj in j.saturating_sub(radius)..(j + radius + 1).min(n_c as usize) {
                        acc += raw[di][dj];
                    }
                }
                n_assets[i][j] = acc;
            }
        }
        let flat: Vec<f64> = n_assets
            .iter()
            .flat_map(|r| r.iter().map(|&v| v as f64))
            .collect();
        let mu = flat.iter().sum::<f64>() / flat.len() as f64;
        let var = flat.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / flat.len() as f64;
        let sigma = var.sqrt().max(1e-9);

        // One partial blockage per tile with the sigmoid density bound
        // (Algorithm 2, lines 7–11). The raw sigmoid bounds may sum to
        // less capacity than the design needs — an infeasible blockage set
        // that would send the ECO placer thrashing — so they are rescaled
        // (preserving their ratios) until the total budget clears the cell
        // count with 8 % headroom.
        let mut dens_cache = vec![vec![0.0f64; n_c as usize]; n_r as usize];
        let mut budget = 0.0f64;
        for i in 0..n_r as usize {
            for j in 0..n_c as usize {
                let dens = sigmoid((n_assets[i][j] as f64 - mu) / sigma);
                dens_cache[i][j] = dens;
                let tile_sites =
                    (row_b[i + 1] - row_b[i]) as f64 * (col_b[j + 1] - col_b[j]) as f64;
                budget += dens * tile_sites;
            }
        }
        let need = layout.occupancy().occupied_sites() as f64 * 1.08;
        if budget < need {
            let k = need / budget.max(1e-9);
            for row in dens_cache.iter_mut() {
                for d in row.iter_mut() {
                    *d = (*d * k).min(0.98);
                }
            }
        }
        // Floor the bounds: the sigmoid squeezes low-asset tiles hard, and
        // after phase-1 eviction every squeezed tile sits exactly at its
        // bound with zero headroom — evicted cells then have no legal
        // destination outside the (full, locked-cell-ridden) asset tiles
        // and fall through to the ECO placer's anything-goes fallback,
        // thrashing against the same bounds next iteration. A floor keeps
        // the density *gradient* toward the asset tiles (their bounds sit
        // at/near 0.98) while leaving moderately sparse tiles able to
        // absorb the displaced cells in bounds.
        for row in dens_cache.iter_mut() {
            for d in row.iter_mut() {
                *d = d.max(LDA_DENSITY_FLOOR);
            }
        }
        let mut blockages = Vec::with_capacity((n_r * n_c) as usize);
        for i in 0..n_r as usize {
            for j in 0..n_c as usize {
                let (r0, r1) = (row_b[i], row_b[i + 1]);
                let (c0, c1) = (col_b[j], col_b[j + 1]);
                if r0 >= r1 || c0 >= c1 {
                    continue; // tile degenerated away (N > rows)
                }
                blockages.push(Blockage::new(r0, r1, c0, c1, dens_cache[i][j]));
            }
        }
        layout.set_blockages(blockages);

        // Run ECO placement (Algorithm 2, line 13): evict cells from tiles
        // over their bound…
        let stats = obs::span("lda.eco_place", |sp| {
            let stats = place::eco_place(layout, tech, seed.wrapping_add(iter as u64));
            obs::trace(obs::Topic::Lda, || {
                format!(
                    "lda: eco_place {:.2}s ({} evicted)",
                    sp.elapsed().as_secs_f64(),
                    stats.evicted
                )
            });
            stats
        });
        total.evicted += stats.evicted;
        total.replaced_in_bounds += stats.replaced_in_bounds;
        total.replaced_fallback += stats.replaced_fallback;
        // …and pull cells *into* asset tiles up to their (high) bound,
        // squeezing out the free sites next to the critical assets.
        obs::span("lda.densify", |sp| {
            densify_asset_tiles(layout, tech, &row_b, &col_b, &n_assets, &dens_cache);
            obs::trace(obs::Topic::Lda, || {
                format!("lda: densify {:.2}s", sp.elapsed().as_secs_f64())
            });
        });
    }
    // The blockages did their job; drop them so later flow stages (and
    // metric extraction) see a plain layout. A wirelength refinement pass
    // then recovers most of the displacement cost (the ECO placement of
    // the paper is wirelength/timing-driven end to end).
    layout.clear_blockages();
    obs::span("lda.refine", |sp| {
        place::refine_wirelength(layout, tech, 1, seed ^ 0x1DA);
        obs::trace(obs::Topic::Lda, || {
            format!("lda: refine {:.2}s", sp.elapsed().as_secs_f64())
        });
    });
    debug_assert!(layout.check_consistency(tech).is_ok());
    total
}

/// Fills the free runs of asset-bearing tiles by relocating the nearest
/// movable cells from asset-free tiles, until each tile reaches its target
/// density. Nearest-first relocation keeps the displacement (and therefore
/// the timing impact) minimal.
fn densify_asset_tiles(
    layout: &mut Layout,
    _tech: &Technology,
    row_b: &[u32],
    col_b: &[u32],
    n_assets: &[Vec<u32>],
    dens: &[Vec<f64>],
) {
    use geom::SitePos;
    use layout::SiteState;
    let n_r = n_assets.len();
    let n_c = n_assets.first().map_or(0, |r| r.len());
    let tile_of = |row: u32, col: u32| -> (usize, usize) {
        let ti = row_b.partition_point(|&b| b <= row).saturating_sub(1);
        let tj = col_b.partition_point(|&b| b <= col).saturating_sub(1);
        (ti.min(n_r - 1), tj.min(n_c - 1))
    };
    let fp = *layout.floorplan();
    for i in 0..n_r {
        for j in 0..n_c {
            if n_assets[i][j] == 0 {
                continue;
            }
            let (r0, r1) = (row_b[i], row_b[i + 1]);
            let (c0, c1) = (col_b[j], col_b[j + 1]);
            if r0 >= r1 || c0 >= c1 {
                continue;
            }
            let target = dens[i][j].min(0.96);
            let mut guard = 0;
            while layout.occupancy().density_in(r0, r1, c0, c1) < target && guard < 64 {
                guard += 1;
                // Longest free run inside the tile.
                let mut best_run: Option<(u32, geom::Interval)> = None;
                for row in r0..r1 {
                    for run in layout.occupancy().empty_runs(row) {
                        let Some(clip) = run.intersection(&geom::Interval::new(c0, c1)) else {
                            continue;
                        };
                        if best_run.is_none_or(|(_, b)| clip.len() > b.len()) {
                            best_run = Some((row, clip));
                        }
                    }
                }
                let Some((gap_row, gap)) = best_run else {
                    break;
                };
                if gap.len() < 2 {
                    break; // only slivers left; nothing functional fits
                }
                // Fill the whole run with donors found in one ring scan
                // outward from the gap (nearest rows first), pulling
                // movable cells from asset-free tiles.
                let mut cursor = gap.lo;
                let mut moved_any = false;
                let mut row_order: Vec<u32> = (0..fp.rows()).collect();
                row_order.sort_by_key(|r| r.abs_diff(gap_row));
                'scan: for &row in &row_order {
                    let mut col = 0;
                    while col < fp.cols() {
                        let left = gap.hi - cursor;
                        if left < 2 {
                            break 'scan;
                        }
                        match layout.occupancy().state(SitePos::new(row, col)) {
                            SiteState::Cell(c) => {
                                let pos = layout.occupancy().cell_pos(c).expect("placed");
                                let w = layout.occupancy().cell_width(c).expect("placed");
                                col = pos.col + w;
                                if layout.occupancy().is_locked(c) || w > left {
                                    continue;
                                }
                                let (ti, tj) = tile_of(pos.row, pos.col);
                                if n_assets[ti][tj] > 0 {
                                    continue; // never steal from an asset tile
                                }
                                if layout
                                    .occupancy_mut()
                                    .move_cell(c, SitePos::new(gap_row, cursor))
                                    .is_ok()
                                {
                                    cursor += w;
                                    moved_any = true;
                                }
                            }
                            _ => col += 1,
                        }
                    }
                }
                if !moved_any {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn placed(util: f64) -> (Technology, Layout) {
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.95; // LDA targets timing-tight designs
        let design = bench::generate(&spec, &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, util);
        place::global_place(&mut layout, &tech, 51);
        place::refine_wirelength(&mut layout, &tech, 2, 51);
        crate::preprocess::lock_critical_cells(&mut layout);
        (tech, layout)
    }

    /// Mean free-site fraction of the tiles holding critical cells.
    fn free_fraction_near_assets(layout: &Layout, n: u32) -> f64 {
        let fp = *layout.floorplan();
        let row_b = chunk_bounds(fp.rows(), n);
        let col_b = chunk_bounds(fp.cols(), n);
        let mut tiles: std::collections::HashSet<(usize, usize)> = Default::default();
        for &c in &layout.design().critical_cells {
            if let Some(pos) = layout.cell_pos(c) {
                let ti = row_b.partition_point(|&b| b <= pos.row).saturating_sub(1);
                let tj = col_b.partition_point(|&b| b <= pos.col).saturating_sub(1);
                tiles.insert((ti.min(n as usize - 1), tj.min(n as usize - 1)));
            }
        }
        let mut acc = 0.0;
        for &(i, j) in &tiles {
            let d = layout
                .occupancy()
                .density_in(row_b[i], row_b[i + 1], col_b[j], col_b[j + 1]);
            acc += 1.0 - d;
        }
        acc / tiles.len() as f64
    }

    #[test]
    fn lda_densifies_asset_tiles() {
        let (tech, mut layout) = placed(0.6);
        let n = 4;
        let before = free_fraction_near_assets(&layout, n);
        let stats = local_density_adjustment(&mut layout, &tech, LdaParams { n, n_iter: 2 }, 1);
        let after = free_fraction_near_assets(&layout, n);
        assert!(stats.evicted > 0, "LDA must move cells");
        assert!(
            after < before,
            "free space near assets should shrink: {before:.3} -> {after:.3}"
        );
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn critical_cells_never_move() {
        let (tech, mut layout) = placed(0.6);
        let before: Vec<_> = layout
            .design()
            .critical_cells
            .iter()
            .map(|&c| layout.cell_pos(c))
            .collect();
        local_density_adjustment(&mut layout, &tech, LdaParams::default(), 3);
        let after: Vec<_> = layout
            .design()
            .critical_cells
            .iter()
            .map(|&c| layout.cell_pos(c))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn blockages_are_cleared_after_the_run() {
        let (tech, mut layout) = placed(0.6);
        local_density_adjustment(&mut layout, &tech, LdaParams::default(), 5);
        assert!(layout.blockages().is_empty());
    }

    #[test]
    fn oversized_grid_degrades_gracefully() {
        let (tech, mut layout) = placed(0.6);
        // N = 32 on a tiny core: many tiles are degenerate but the run
        // must still succeed.
        local_density_adjustment(&mut layout, &tech, LdaParams { n: 32, n_iter: 1 }, 7);
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        let b = chunk_bounds(10, 4);
        assert_eq!(b, vec![0, 2, 5, 7, 10]);
        let b = chunk_bounds(3, 8);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&3));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
    }
}
