//! **Cell Shift (CS)** — anti-Trojan ECO placement operator, Algorithm 1.
//!
//! Erases exploitable regions globally by row-wise shifting of cells: the
//! empty sites of each row form graph vertices, vertically touching
//! vertices of adjacent rows form connected components, and any component
//! reaching `Thresh_ER` sites is an exploitable region. Rows are processed
//! bottom-up; within a row, each vertex in an exploitable component pulls
//! its neighboring cell into it until the component drops below the
//! threshold or the vertex is consumed — moving cells as little as
//! possible to minimize timing impact. A mirrored second pass sweeps the
//! remaining space off the other edge of the core.

use geom::{Interval, SitePos};
use layout::{Layout, SiteState};
use tech::Technology;

/// Outcome of a [`cell_shift`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellShiftStats {
    /// Total site-steps of cell movement.
    pub shifted_sites: u64,
    /// Individual cell moves.
    pub moves: u64,
    /// Vertices skipped because the adjacent cell was locked or absent.
    pub skipped: u64,
}

/// Scan/shift direction of one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    /// Visit vertices left-to-right, pulling cells leftward (Algorithm 1).
    Forward,
    /// Mirrored pass: right-to-left, pulling cells rightward.
    Backward,
}

/// Empty-run vertices of rows `0..=row_limit` with their component weights.
/// Returns `(vertices, weight_of_component_containing_vertex)`.
/// Reference implementation used by the tests to validate the incremental
/// bookkeeping of [`run_pass`].
#[cfg(test)]
fn components_up_to(layout: &Layout, row_limit: u32) -> (Vec<(u32, Interval)>, Vec<u64>) {
    let occ = layout.occupancy();
    let mut verts: Vec<(u32, Interval)> = Vec::new();
    let mut row_start: Vec<usize> = Vec::with_capacity(row_limit as usize + 2);
    for row in 0..=row_limit {
        row_start.push(verts.len());
        for run in occ.empty_runs(row) {
            verts.push((row, run));
        }
    }
    row_start.push(verts.len());

    // Union-find over vertices.
    let mut parent: Vec<u32> = (0..verts.len() as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let n = parent[c as usize];
            parent[c as usize] = r;
            c = n;
        }
        r
    }
    for row in 1..=row_limit {
        let (a0, a1) = (row_start[row as usize - 1], row_start[row as usize]);
        let (b0, b1) = (row_start[row as usize], row_start[row as usize + 1]);
        let (mut i, mut j) = (a0, b0);
        while i < a1 && j < b1 {
            let ia = verts[i].1;
            let ib = verts[j].1;
            if ia.overlaps(&ib) {
                let (ra, rb) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                if ra != rb {
                    parent[rb as usize] = ra;
                }
            }
            if ia.hi <= ib.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    let mut weight_of_root = vec![0u64; verts.len()];
    for (i, v) in verts.iter().enumerate() {
        let r = find(&mut parent, i as u32);
        weight_of_root[r as usize] += v.1.len() as u64;
    }
    let weights = (0..verts.len())
        .map(|i| weight_of_root[find(&mut parent, i as u32) as usize])
        .collect();
    (verts, weights)
}

/// Static context for one row being processed: the connected components of
/// the *already-final* rows below, exposed through the runs of the row
/// immediately underneath (the only row the current one can touch).
struct BelowContext {
    /// Empty runs of row `i - 1` (empty when processing row 0).
    prev_runs: Vec<Interval>,
    /// Component root of each prev run (roots are arbitrary but stable ids).
    prev_root: Vec<u32>,
    /// Total weight of each root's component across all below rows.
    root_weight: std::collections::HashMap<u32, u64>,
}

impl BelowContext {
    /// Builds the context from the accumulated below-row vertices.
    fn build(below: &[(u32, Interval)], below_row_start: &[usize], row: u32) -> Self {
        let n = below.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let nx = parent[c as usize];
                parent[c as usize] = r;
                c = nx;
            }
            r
        }
        let n_rows_below = below_row_start.len().saturating_sub(1);
        for r in 1..n_rows_below {
            let (a0, a1) = (below_row_start[r - 1], below_row_start[r]);
            let (b0, b1) = (below_row_start[r], below_row_start[r + 1]);
            let (mut i, mut j) = (a0, b0);
            while i < a1 && j < b1 {
                let ia = below[i].1;
                let ib = below[j].1;
                if ia.overlaps(&ib) {
                    let (ra, rb) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                    if ra != rb {
                        parent[rb as usize] = ra;
                    }
                }
                if ia.hi <= ib.hi {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
        let mut root_weight: std::collections::HashMap<u32, u64> = Default::default();
        for (i, b) in below.iter().enumerate().take(n) {
            let r = find(&mut parent, i as u32);
            *root_weight.entry(r).or_insert(0) += b.1.len() as u64;
        }
        let (prev_runs, prev_root) = if row == 0 || n_rows_below < row as usize {
            (Vec::new(), Vec::new())
        } else {
            let (a0, a1) = (
                below_row_start[row as usize - 1],
                below_row_start[row as usize],
            );
            let runs: Vec<Interval> = below[a0..a1].iter().map(|&(_, iv)| iv).collect();
            let roots: Vec<u32> = (a0..a1).map(|i| find(&mut parent, i as u32)).collect();
            (runs, roots)
        };
        Self {
            prev_runs,
            prev_root,
            root_weight,
        }
    }

    /// Weight of the component containing current-row vertex `vi`, over the
    /// graph of rows `0..=i`: a breadth-first walk of the bipartite graph
    /// between current-row runs and below-component roots.
    fn component_weight(&self, cur: &[Interval], vi: usize) -> u64 {
        let mut vert_seen = vec![false; cur.len()];
        let mut root_seen: std::collections::HashSet<u32> = Default::default();
        let mut stack = vec![vi];
        vert_seen[vi] = true;
        let mut weight = 0u64;
        while let Some(v) = stack.pop() {
            weight += cur[v].len() as u64;
            for (j, r) in self.prev_runs.iter().enumerate() {
                if r.overlaps(&cur[v]) {
                    let root = self.prev_root[j];
                    if root_seen.insert(root) {
                        weight += self.root_weight[&root];
                        // Any other current-row vertex touching a run of
                        // this same component joins too.
                        for (u, cu) in cur.iter().enumerate() {
                            if !vert_seen[u]
                                && self
                                    .prev_runs
                                    .iter()
                                    .zip(&self.prev_root)
                                    .any(|(rr, rt)| *rt == root && rr.overlaps(cu))
                            {
                                vert_seen[u] = true;
                                stack.push(u);
                            }
                        }
                    }
                }
            }
        }
        weight
    }
}

/// One directional pass over all rows, shifting one site at a time exactly
/// as Algorithm 1 prescribes (the component weight is re-queried after
/// every single-site shift, so component splits are detected immediately).
fn run_pass(layout: &mut Layout, thresh: u32, pass: Pass, stats: &mut CellShiftStats) {
    let rows = layout.floorplan().rows();
    let cols = layout.floorplan().cols();
    let mut below: Vec<(u32, Interval)> = Vec::new();
    let mut below_row_start: Vec<usize> = vec![0];
    for row in 0..rows {
        let ctx = BelowContext::build(&below, &below_row_start, row);
        // The current row's runs, maintained incrementally across shifts.
        let mut cur: Vec<Interval> = layout.occupancy().empty_runs(row);
        // Index of the vertex being processed, in scan order.
        let mut idx: isize = match pass {
            Pass::Forward => 0,
            Pass::Backward => cur.len() as isize - 1,
        };
        while idx >= 0 && (idx as usize) < cur.len() {
            let vi = idx as usize;
            let v = cur[vi];
            let resolved_step: isize = match pass {
                Pass::Forward => 1,
                Pass::Backward => -1,
            };
            // Neighbor cell to pull into the vertex.
            let neighbor_col = match pass {
                Pass::Forward if v.hi >= cols => None,
                Pass::Forward => Some(v.hi),
                Pass::Backward if v.lo == 0 => None,
                Pass::Backward => Some(v.lo - 1),
            };
            let Some(ncol) = neighbor_col else {
                stats.skipped += 1;
                idx += resolved_step;
                continue;
            };
            let cell = match layout.occupancy().state(SitePos::new(row, ncol)) {
                SiteState::Cell(c) => c,
                SiteState::Empty | SiteState::Filler => {
                    stats.skipped += 1;
                    idx += resolved_step;
                    continue;
                }
            };
            if layout.occupancy().is_locked(cell) {
                stats.skipped += 1;
                idx += resolved_step;
                continue;
            }
            if ctx.component_weight(&cur, vi) < thresh as u64 {
                idx += resolved_step;
                continue;
            }
            // Inner loop of Algorithm 1: shift one site at a time while the
            // vertex survives and its component stays exploitable. `vcur`
            // tracks the working vertex across run-list insertions.
            let mut vcur = vi;
            let mut removed = false;
            loop {
                let origin = layout
                    .occupancy()
                    .cell_pos(cell)
                    .expect("grid cell is placed");
                let w_c = layout.occupancy().cell_width(cell).expect("placed");
                let target = match pass {
                    Pass::Forward => SitePos::new(row, origin.col - 1),
                    Pass::Backward => SitePos::new(row, origin.col + 1),
                };
                if layout.occupancy_mut().move_cell(cell, target).is_err() {
                    stats.skipped += 1;
                    break;
                }
                stats.shifted_sites += 1;
                // Update the run list: the vertex shrinks by one site and
                // the freed site appears on the far side of the cell.
                match pass {
                    Pass::Forward => {
                        cur[vcur].hi -= 1;
                        let freed = origin.col + w_c - 1;
                        if vcur + 1 < cur.len() && cur[vcur + 1].lo == freed + 1 {
                            cur[vcur + 1].lo = freed;
                        } else {
                            cur.insert(vcur + 1, Interval::new(freed, freed + 1));
                        }
                    }
                    Pass::Backward => {
                        cur[vcur].lo += 1;
                        let freed = origin.col;
                        if vcur > 0 && cur[vcur - 1].hi == freed {
                            cur[vcur - 1].hi = freed + 1;
                        } else {
                            cur.insert(vcur, Interval::new(freed, freed + 1));
                            vcur += 1; // the working vertex moved one slot
                        }
                    }
                }
                if cur[vcur].is_empty() {
                    cur.remove(vcur);
                    removed = true;
                    break;
                }
                if ctx.component_weight(&cur, vcur) < thresh as u64 {
                    break;
                }
            }
            stats.moves += 1;
            match pass {
                // Forward: after a removal the slot at `vcur` already holds
                // the next vertex; otherwise step right past the resolved
                // vertex.
                Pass::Forward => {
                    idx = if removed {
                        vcur as isize
                    } else {
                        vcur as isize + 1
                    }
                }
                // Backward: step left of the resolved/removed position.
                Pass::Backward => idx = vcur as isize - 1,
            }
        }
        // Row resolved: its final runs become part of the static substrate
        // for the rows above.
        let final_runs = layout.occupancy().empty_runs(row);
        below.extend(final_runs.iter().map(|&iv| (row, iv)));
        below_row_start.push(below.len());
    }
}

/// Runs the Cell Shift operator on a layout whose fillers have been
/// stripped. Both the forward (leftward) and the mirrored (rightward)
/// passes of §III-B are executed.
///
/// Locked cells are never moved; vertices whose only neighbor is locked are
/// skipped, exactly like the paper's preprocessing demands.
pub fn cell_shift(layout: &mut Layout, tech: &Technology, thresh: u32) -> CellShiftStats {
    layout.occupancy_mut().clear_fillers();
    let mut stats = CellShiftStats::default();
    run_pass(layout, thresh, Pass::Forward, &mut stats);
    run_pass(layout, thresh, Pass::Backward, &mut stats);
    // Note: exploitable components hugging *locked* cells (the critical
    // bank) can survive both passes — the greedy cannot pull space through
    // a wall it may not move. The flow optimizer compensates by pairing CS
    // with routing width scaling or by choosing LDA; see EXPERIMENTS.md.
    debug_assert!(layout.check_consistency(tech).is_ok());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use secmetrics::THRESH_ER;

    fn placed(seed: u64) -> (Technology, Layout) {
        // CS targets adequately dense designs (the paper pairs low-density
        // or timing-tight designs with LDA instead).
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.70);
        place::global_place(&mut layout, &tech, seed);
        place::refine_wirelength(&mut layout, &tech, 2, seed);
        (tech, layout)
    }

    /// Sum of component weights ≥ thresh over the full core (a layout-wide
    /// upper bound on ERsites, independent of timing).
    fn exploitable_free_sites(layout: &Layout, thresh: u32) -> u64 {
        let rows = layout.floorplan().rows();
        let (verts, weights) = components_up_to(layout, rows - 1);
        let mut total = 0;
        for i in 0..verts.len() {
            if weights[i] >= thresh as u64 {
                // Accumulating per-vertex widths counts each component
                // exactly once in aggregate.
                total += verts[i].1.len() as u64;
            }
        }
        total
    }

    #[test]
    fn shift_eliminates_most_exploitable_space() {
        let (tech, mut layout) = placed(23);
        let before = exploitable_free_sites(&layout, THRESH_ER);
        assert!(before > 0);
        let stats = cell_shift(&mut layout, &tech, THRESH_ER);
        let after = exploitable_free_sites(&layout, THRESH_ER);
        assert!(stats.moves > 0);
        assert!(
            (after as f64) < before as f64 * 0.25,
            "cell shift left {after} of {before} exploitable sites"
        );
        layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn locked_cells_stay_put() {
        let (tech, mut layout) = placed(29);
        crate::preprocess::lock_critical_cells(&mut layout);
        let before: Vec<_> = layout
            .design()
            .critical_cells
            .iter()
            .map(|&c| layout.cell_pos(c))
            .collect();
        cell_shift(&mut layout, &tech, THRESH_ER);
        let after: Vec<_> = layout
            .design()
            .critical_cells
            .iter()
            .map(|&c| layout.cell_pos(c))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn shift_preserves_cell_count_and_rows() {
        let (tech, mut layout) = placed(31);
        let rows_before: Vec<_> = layout
            .design()
            .cells_iter()
            .map(|(id, _)| layout.cell_pos(id).unwrap().row)
            .collect();
        cell_shift(&mut layout, &tech, THRESH_ER);
        for (i, (id, _)) in layout.design().cells_iter().enumerate() {
            let pos = layout.cell_pos(id).expect("still placed");
            assert_eq!(pos.row, rows_before[i], "row-wise shift only");
        }
    }

    #[test]
    fn idempotent_second_run_moves_little() {
        let (tech, mut layout) = placed(37);
        cell_shift(&mut layout, &tech, THRESH_ER);
        let second = cell_shift(&mut layout, &tech, THRESH_ER);
        assert!(
            second.shifted_sites <= 4,
            "second run should be a near-noop, shifted {}",
            second.shifted_sites
        );
    }

    #[test]
    fn components_weights_are_consistent() {
        let (_, layout) = placed(41);
        let (verts, weights) = components_up_to(&layout, layout.floorplan().rows() - 1);
        let total_sites: u64 = verts.iter().map(|(_, iv)| iv.len() as u64).sum();
        // Every vertex weight is at least its own size and at most the
        // total free space.
        for (i, (_, iv)) in verts.iter().enumerate() {
            assert!(weights[i] >= iv.len() as u64);
            assert!(weights[i] <= total_sites);
        }
    }
}
